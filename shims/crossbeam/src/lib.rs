//! Offline stand-in for the `crossbeam` crate.
//!
//! The build container has no access to a crates.io mirror, so the workspace
//! vendors the part it uses: `crossbeam::channel` with MPMC `unbounded` and
//! `bounded` channels, cloneable senders *and* receivers, and the same
//! disconnect semantics (send fails once every receiver is gone; recv drains
//! the queue and then fails once every sender is gone).
//!
//! Because every channel in the workspace flows through this shim, it doubles
//! as the message half of **ShimSan** (`harbor_common::shimsan`): each queued
//! element carries a vector-clock [`MsgClock`](harbor_common::shimsan::MsgClock)
//! stamped by the sender and joined into the receiving thread on delivery, so
//! a receiver is ordered after exactly the sender that produced its message.
//! In release builds `MsgClock` is zero-sized and the queue layout is
//! identical to the uninstrumented shim.

pub mod channel {
    use harbor_common::shimsan::MsgClock;
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<(T, MsgClock)>>,
        cap: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<(T, MsgClock)>> {
            self.queue.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cap,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        // crossbeam's cap-0 rendezvous channel is not reproduced; treat it
        // as a capacity-1 channel, which preserves the backpressure intent.
        with_cap(Some(cap.max(1)))
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let shared = &*self.shared;
            let mut q = shared.lock();
            loop {
                if shared.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(value));
                }
                match shared.cap {
                    Some(cap) if q.len() >= cap => {
                        q = shared
                            .not_full
                            .wait_timeout(q, Duration::from_millis(50))
                            .unwrap_or_else(PoisonError::into_inner)
                            .0;
                    }
                    _ => break,
                }
            }
            q.push_back((value, MsgClock::stamp()));
            drop(q);
            shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let shared = &*self.shared;
            let mut q = shared.lock();
            loop {
                if let Some((v, mc)) = q.pop_front() {
                    shared.not_full.notify_one();
                    mc.join_into_current();
                    return Ok(v);
                }
                if shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = shared
                    .not_empty
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let shared = &*self.shared;
            let mut q = shared.lock();
            if let Some((v, mc)) = q.pop_front() {
                shared.not_full.notify_one();
                mc.join_into_current();
                return Ok(v);
            }
            if shared.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let shared = &*self.shared;
            let mut q = shared.lock();
            loop {
                if let Some((v, mc)) = q.pop_front() {
                    shared.not_full.notify_one();
                    mc.join_into_current();
                    return Ok(v);
                }
                if shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                q = shared
                    .not_empty
                    .wait_timeout(q, (deadline - now).min(Duration::from_millis(50)))
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        }

        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }

        pub fn len(&self) -> usize {
            self.shared.lock().len()
        }

        pub fn is_empty(&self) -> bool {
            self.shared.lock().is_empty()
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_round_trip_and_disconnect() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
        }

        #[test]
        fn bounded_applies_backpressure() {
            let (tx, rx) = bounded(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let t = std::thread::spawn(move || tx.send(3).unwrap());
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            t.join().unwrap();
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
        }

        #[test]
        fn send_fails_when_all_receivers_gone() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }

        /// The message half of ShimSan: a send/recv pair is a happens-before
        /// edge, so the receiver's witness write is ordered after the
        /// sender's (debug builds panic on a real race).
        #[test]
        fn shimsan_message_edge_orders_witness_accesses() {
            use harbor_common::shimsan::RaceWitness;
            use std::sync::Arc;
            let w = Arc::new(RaceWitness::new());
            let (tx, rx) = unbounded::<u32>();
            let w2 = w.clone();
            let t = std::thread::spawn(move || {
                w2.check_write("handed-off cell");
                tx.send(11).unwrap();
            });
            assert_eq!(rx.recv(), Ok(11));
            w.check_write("handed-off cell");
            t.join().unwrap();
        }

        #[test]
        fn mpmc_clones_both_ways() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            let rx2 = rx.clone();
            tx2.send(7).unwrap();
            drop(tx);
            drop(tx2);
            let got = rx2.recv().unwrap();
            assert_eq!(got, 7);
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
