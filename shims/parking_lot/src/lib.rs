//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build container has no access to a crates.io mirror, so the workspace
//! vendors the small API surface it actually uses: [`Mutex`], [`RwLock`] and
//! [`Condvar`] with `parking_lot`'s non-poisoning, guard-returning signatures.
//! Poisoned std locks are recovered transparently (parking_lot has no
//! poisoning), and `Condvar` takes `&mut MutexGuard` like the real crate by
//! temporarily moving the std guard out of an `Option`.
//!
//! Because every lock in the workspace flows through this shim, it doubles as
//! the lock half of **ShimSan** (`harbor_common::shimsan`): each lock carries
//! a vector-clock [`SyncClock`] that is joined into the acquiring thread on
//! `lock`/`read`/`write` and published back on guard drop, so debug builds
//! track real happens-before edges for the race witnesses. `Condvar` waits
//! release the clock before parking and re-acquire it on wake, mirroring what
//! the underlying lock does. In release builds `SyncClock` is zero-sized and
//! every call compiles to nothing; the `#[cfg(debug_assertions)]` guard
//! fields keep release guard layouts identical to the uninstrumented shim.
//! (Imprecision note: read-guard drops also publish, so ShimSan treats
//! concurrent readers as ordered — it under-reports read/read ordering,
//! never write races.)

use harbor_common::shimsan::SyncClock;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::{Duration, Instant};

pub struct Mutex<T: ?Sized> {
    san: SyncClock,
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the std guard out and back.
    inner: Option<std::sync::MutexGuard<'a, T>>,
    #[cfg(debug_assertions)]
    san: &'a SyncClock,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            san: SyncClock::new(),
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    fn guard<'a>(&'a self, g: std::sync::MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.san.acquire();
        MutexGuard {
            inner: Some(g),
            #[cfg(debug_assertions)]
            san: &self.san,
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.guard(self.inner.lock().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(self.guard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(self.guard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard active")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard active")
    }
}

#[cfg(debug_assertions)]
impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // `inner` is only `None` mid-`Condvar::wait`, which already published
        // the clock before parking.
        if self.inner.is_some() {
            self.san.release();
        }
    }
}

pub struct RwLock<T: ?Sized> {
    san: SyncClock,
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
    #[cfg(debug_assertions)]
    san: &'a SyncClock,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
    #[cfg(debug_assertions)]
    san: &'a SyncClock,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            san: SyncClock::new(),
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    fn read_guard<'a>(&'a self, g: std::sync::RwLockReadGuard<'a, T>) -> RwLockReadGuard<'a, T> {
        self.san.acquire();
        RwLockReadGuard {
            inner: g,
            #[cfg(debug_assertions)]
            san: &self.san,
        }
    }

    fn write_guard<'a>(&'a self, g: std::sync::RwLockWriteGuard<'a, T>) -> RwLockWriteGuard<'a, T> {
        self.san.acquire();
        RwLockWriteGuard {
            inner: g,
            #[cfg(debug_assertions)]
            san: &self.san,
        }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.read_guard(self.inner.read().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.write_guard(self.inner.write().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(self.read_guard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(self.read_guard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(self.write_guard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(self.write_guard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

#[cfg(debug_assertions)]
impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.san.release();
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(debug_assertions)]
impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.san.release();
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard active");
        #[cfg(debug_assertions)]
        guard.san.release();
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        #[cfg(debug_assertions)]
        guard.san.acquire();
        guard.inner = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard active");
        #[cfg(debug_assertions)]
        guard.san.release();
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => p.into_inner(),
        };
        #[cfg(debug_assertions)]
        guard.san.acquire();
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if now >= deadline {
            return WaitTimeoutResult { timed_out: true };
        }
        self.wait_for(guard, deadline - now)
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a, *b);
        }
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn condvar_wakes_and_times_out() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut done = m.lock();
            *done = true;
            c.notify_all();
            drop(done);
        });
        let (m, c) = &*pair;
        let mut done = m.lock();
        while !*done {
            c.wait(&mut done);
        }
        drop(done);
        t.join().unwrap();

        let mut g = m.lock();
        let res = c.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(res.timed_out());
    }

    /// The lock half of ShimSan: a mutex hand-off is a happens-before edge,
    /// so two threads that only ever touch the witness under this shim's
    /// lock never race (debug builds panic on a real race).
    #[test]
    fn shimsan_mutex_edge_orders_witness_accesses() {
        use harbor_common::shimsan::RaceWitness;
        let shared = Arc::new((Mutex::new(0u64), RaceWitness::new()));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let sh = shared.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let mut g = sh.0.lock();
                    sh.1.check_write("parking_lot-guarded counter");
                    *g += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*shared.0.lock(), 400);
    }
}
