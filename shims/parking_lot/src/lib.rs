//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build container has no access to a crates.io mirror, so the workspace
//! vendors the small API surface it actually uses: [`Mutex`], [`RwLock`] and
//! [`Condvar`] with `parking_lot`'s non-poisoning, guard-returning signatures.
//! Poisoned std locks are recovered transparently (parking_lot has no
//! poisoning), and `Condvar` takes `&mut MutexGuard` like the real crate by
//! temporarily moving the std guard out of an `Option`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::{Duration, Instant};

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the std guard out and back.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard active")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard active")
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard active");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard active");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if now >= deadline {
            return WaitTimeoutResult { timed_out: true };
        }
        self.wait_for(guard, deadline - now)
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a, *b);
        }
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn condvar_wakes_and_times_out() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut done = m.lock();
            *done = true;
            c.notify_all();
            drop(done);
        });
        let (m, c) = &*pair;
        let mut done = m.lock();
        while !*done {
            c.wait(&mut done);
        }
        drop(done);
        t.join().unwrap();

        let mut g = m.lock();
        let res = c.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(res.timed_out());
    }
}
