//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no access to a crates.io mirror, so the workspace
//! vendors the benchmarking surface it uses: `Criterion` with groups and
//! `bench_function`, `Bencher::iter` / `iter_batched`, and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark runs a short
//! warm-up, then times iterations for the configured measurement window and
//! prints mean wall-clock time per iteration. No statistics, plots or
//! baseline comparisons.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Clone, Debug)]
pub struct Criterion {
    measurement: Duration,
    warm_up: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement: Duration::from_secs(2),
            warm_up: Duration::from_millis(300),
            sample_size: 50,
        }
    }
}

impl Criterion {
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, name, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_one(self.criterion, &full, f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(c: &Criterion, name: &str, mut f: F) {
    let mut b = Bencher {
        warm_up: c.warm_up,
        measurement: c.measurement,
        elapsed: Duration::ZERO,
        iterations: 0,
    };
    f(&mut b);
    let per_iter = if b.iterations > 0 {
        b.elapsed.as_nanos() as f64 / b.iterations as f64
    } else {
        f64::NAN
    };
    if per_iter >= 1e6 {
        println!(
            "{name:<44} {:>12.3} ms/iter  ({} iters)",
            per_iter / 1e6,
            b.iterations
        );
    } else if per_iter >= 1e3 {
        println!(
            "{name:<44} {:>12.3} µs/iter  ({} iters)",
            per_iter / 1e3,
            b.iterations
        );
    } else {
        println!(
            "{name:<44} {:>12.1} ns/iter  ({} iters)",
            per_iter, b.iterations
        );
    }
}

pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.measurement {
            black_box(f());
            iters += 1;
        }
        self.elapsed = start.elapsed();
        self.iterations = iters;
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            let input = setup();
            black_box(routine(input));
        }
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < self.measurement {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            total += t.elapsed();
            iters += 1;
        }
        self.elapsed = total;
        self.iterations = iters;
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_and_iter_batched_record_something() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1));
        let mut g = c.benchmark_group("shim");
        g.bench_function("iter", |b| b.iter(|| 1 + 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
