//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to a crates.io mirror, so the workspace
//! vendors the surface it uses: `rngs::SmallRng`, `SeedableRng::seed_from_u64`
//! and `Rng::gen_range` over half-open integer ranges. The generator is
//! xorshift64* seeded through splitmix64 — statistically fine for buffer-pool
//! eviction picks and workload shuffling, which is all this is used for.

use std::ops::Range;

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types `gen_range` can sample from (half-open integer ranges).
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub trait Rng: RngCore {
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        let mut draw = || self.next_u64();
        range.sample(&mut draw)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xorshift64* with a splitmix64-scrambled seed.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // splitmix64 so nearby seeds diverge immediately.
            let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            SmallRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let s = rng.gen_range(-5i64..6);
            assert!((-5..6).contains(&s));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1_000_000)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }
}
