//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no access to a crates.io mirror, so the workspace
//! vendors the subset of proptest it uses: the [`strategy::Strategy`] trait
//! with `prop_map` / `prop_flat_map` / `boxed` / `prop_recursive`, strategies
//! for integer ranges, tuples, `Vec<S>`, `Just`, `any::<T>()`, unions
//! (`prop_oneof!`), `collection::vec`, `option::of`, a tiny `[a-z]{m,n}`
//! regex-string strategy, and the `proptest!` / `prop_assert*` macros.
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed (reproducible across runs) and failing cases are
//! reported but **not shrunk** — `max_shrink_iters` is accepted and ignored.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// Value-generation strategy. Unlike real proptest there is no value
    /// tree: a strategy simply produces a value per case (no shrinking).
    pub trait Strategy {
        type Value;

        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }

        /// Recursive strategies: builds a tower of `depth` applications of
        /// `recurse` over the leaf, then each case picks a random level.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut levels: Vec<BoxedStrategy<Self::Value>> = vec![self.boxed()];
            for _ in 0..depth {
                let prev = levels.last().expect("leaf level").clone();
                levels.push(recurse(prev).boxed());
            }
            Union::new(levels).boxed()
        }
    }

    /// Object-safe bridge so strategies of one value type can be boxed.
    trait DynStrategy<V> {
        fn gen_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.gen_value(rng)
        }
    }

    pub struct BoxedStrategy<V>(Arc<dyn DynStrategy<V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut TestRng) -> V {
            self.0.gen_dyn(rng)
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.gen_value(rng)).gen_value(rng)
        }
    }

    /// Constant strategy (clones its value for every case).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives — backs `prop_oneof!`.
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].gen_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy over empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "strategy over empty range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (start as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.gen_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// A `Vec` of strategies yields a `Vec` of values, element-wise.
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            self.iter().map(|s| s.gen_value(rng)).collect()
        }
    }

    /// String strategy from a tiny regex subset: `[c1-c2...]{m,n}` (plus a
    /// bare `[class]`, meaning one char). Anything else is treated as a
    /// literal string.
    impl Strategy for &'static str {
        type Value = String;
        fn gen_value(&self, rng: &mut TestRng) -> String {
            match parse_class_repeat(self) {
                Some((chars, min, max)) => {
                    let n = min + rng.below((max - min + 1) as u64) as usize;
                    (0..n)
                        .map(|_| chars[rng.below(chars.len() as u64) as usize])
                        .collect()
                }
                None => (*self).to_string(),
            }
        }
    }

    fn parse_class_repeat(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let mut chars = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
                for c in lo..=hi {
                    chars.push(char::from_u32(c)?);
                }
                i += 3;
            } else {
                chars.push(class[i]);
                i += 1;
            }
        }
        if chars.is_empty() {
            return None;
        }
        let tail = &rest[close + 1..];
        if tail.is_empty() {
            return Some((chars, 1, 1));
        }
        let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
        let (m, n) = match counts.split_once(',') {
            Some((m, n)) => (m.trim().parse().ok()?, n.trim().parse().ok()?),
            None => {
                let k = counts.trim().parse().ok()?;
                (k, k)
            }
        };
        Some((chars, m, n))
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    pub struct Any<T>(PhantomData<T>);

    /// `any::<T>()` — full-range values with edge cases mixed in.
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }

    pub trait ArbitraryValue {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // 1-in-8 cases draw from the edge set; the rest uniform.
                    if rng.below(8) == 0 {
                        match rng.below(4) {
                            0 => <$t>::MIN,
                            1 => <$t>::MAX,
                            2 => 0 as $t,
                            _ => 1 as $t,
                        }
                    } else {
                        rng.next_u64() as $t
                    }
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let n = self.size.min + rng.below(span) as usize;
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `option::of(s)` — `None` for roughly a quarter of cases.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.gen_value(rng))
            }
        }
    }
}

pub mod test_runner {
    use crate::strategy::Strategy;

    /// xorshift64* — deterministic per (fixed seed, case index), so failures
    /// reproduce across runs. There is no shrinking.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            TestRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            self.next_u64() % n
        }
    }

    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_shrink_iters: u32,
        /// Extra seed folded into every case (0 = default stream).
        pub seed: u64,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 1024,
                seed: 0,
            }
        }
    }

    /// Drives one `proptest!` test: `cases` generated inputs through `body`.
    /// Panics (failing the enclosing `#[test]`) on the first `Err`.
    pub fn run_cases<S, F>(config: &ProptestConfig, strategy: &S, mut body: F)
    where
        S: Strategy,
        F: FnMut(S::Value) -> Result<(), String>,
    {
        for case in 0..config.cases {
            let seed = 0x4841_5242_4f52_0000u64 ^ config.seed ^ (case as u64);
            let mut rng = TestRng::from_seed(seed);
            let value = strategy.gen_value(&mut rng);
            if let Err(msg) = body(value) {
                panic!("proptest case {case} (seed {seed:#x}) failed: {msg}");
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{:?}` != `{:?}`", a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "{}: `{:?}` != `{:?}`", format!($($fmt)+), a, b
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: `{:?}` == `{:?}`", a, b);
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let __strategy = ( $($strat,)+ );
                $crate::test_runner::run_cases(&__config, &__strategy, |__vals| {
                    let ( $($pat,)+ ) = __vals;
                    $body
                    Ok(())
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<u8>> {
        crate::collection::vec(any::<u8>(), 0..8)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in -4i64..=9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=9).contains(&y));
        }

        #[test]
        fn vec_sizes_respected(v in small_vec()) {
            prop_assert!(v.len() < 8);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            (0u8..10).prop_map(|x| x as u16),
            500u16..600,
        ]) {
            prop_assert!(v < 10 || (500..600).contains(&v));
        }

        #[test]
        fn regex_class(s in "[a-c]{2,5}") {
            prop_assert!((2..=5).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn options_mix(o in crate::option::of(1u8..4)) {
            if let Some(x) = o {
                prop_assert!((1..4).contains(&x));
            }
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_case_info() {
        crate::test_runner::run_cases(&ProptestConfig::with_cases(4), &(0u8..10,), |(_x,)| {
            Err("boom".to_string())
        });
    }
}
