//! Umbrella crate for the HARBOR reproduction workspace.
//!
//! Hosts the runnable examples in `examples/` and the cross-crate
//! integration tests in `tests/`. The re-exports below give examples a
//! single import surface.

pub use harbor;
pub use harbor_common as common;
pub use harbor_dist as dist;
pub use harbor_engine as engine;
pub use harbor_exec as exec;
pub use harbor_net as net;
pub use harbor_storage as storage;
pub use harbor_wal as wal;
pub use harbor_workload as workload;
