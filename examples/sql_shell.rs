//! A scripted SQL session against a single HARBOR site, exercising the SQL
//! frontend extension (the thesis had no parser — plans were hand-built;
//! see `harbor_exec::sql`). Demonstrates inserts, predicates, aggregation,
//! updates-as-versions, and `AS OF` time travel.
//!
//! Run with: `cargo run --release --example sql_shell`
//! Pass `-i` to drop into an interactive prompt afterwards.

use harbor_common::{FieldType, SiteId, StorageConfig, Timestamp, TransactionId};
use harbor_engine::{Engine, EngineOptions, StepLogging};
use harbor_exec::sql::{execute, query};
use std::io::{BufRead, Write};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("harbor-sql-shell-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let engine = Engine::open(
        &dir,
        EngineOptions::harbor(SiteId(1), StorageConfig::default()),
    )?;
    engine.create_table(
        "inventory",
        vec![
            ("id".into(), FieldType::Int64),
            ("store".into(), FieldType::Int32),
            ("stock".into(), FieldType::Int32),
        ],
    )?;

    // A tiny local commit driver: each statement batch runs as one txn.
    let seq = std::cell::Cell::new(1u64);
    let clock = std::cell::Cell::new(1u64);
    let run = |sql: &str| -> Result<(), Box<dyn std::error::Error>> {
        let s = sql.trim();
        if s.is_empty() {
            return Ok(());
        }
        if s.to_ascii_lowercase().starts_with("select") {
            let rows = query(&engine, s)?;
            println!("-- {s}");
            for r in &rows {
                println!("   {r}");
            }
            println!("   ({} rows)", rows.len());
        } else {
            let tid = TransactionId::from_parts(SiteId(1), seq.replace(seq.get() + 1));
            engine.begin(tid)?;
            match execute(&engine, tid, s) {
                Ok(n) => {
                    let t = Timestamp(clock.replace(clock.get() + 1));
                    engine.commit(tid, t, StepLogging::OFF)?;
                    println!("-- {s}\n   ok, {n} row(s) at t{}", t.0);
                }
                Err(e) => {
                    engine.abort(tid, StepLogging::OFF)?;
                    println!("-- {s}\n   error: {e} (rolled back)");
                }
            }
        }
        Ok(())
    };

    // The scripted session.
    let script = [
        "INSERT INTO inventory VALUES (1, 1, 50), (2, 1, 0), (3, 2, 75), (4, 2, 12)",
        "SELECT * FROM inventory",
        "SELECT store, SUM(stock), COUNT(*) FROM inventory GROUP BY store",
        "UPDATE inventory SET stock = 40 WHERE id = 2",
        "DELETE FROM inventory WHERE stock < 20",
        "SELECT id, stock FROM inventory",
        // Time travel: the state as of the first commit.
        "SELECT id, stock FROM inventory AS OF 1",
        "SELECT COUNT(*) FROM inventory WHERE deletion_time <> 0 AS OF 1",
    ];
    for sql in script {
        run(sql)?;
    }

    if std::env::args().any(|a| a == "-i") {
        println!("\ninteractive mode — end with an empty line");
        let stdin = std::io::stdin();
        loop {
            print!("sql> ");
            std::io::stdout().flush()?;
            let mut line = String::new();
            if stdin.lock().read_line(&mut line)? == 0 || line.trim().is_empty() {
                break;
            }
            if let Err(e) = run(&line) {
                println!("   error: {e}");
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
