//! The clickthrough-warehouse scenario of §4.2: "massive clickthrough
//! warehouses ... only designed to store the most recent N days worth of
//! data". The time-partitioned segment architecture gives bulk load (append
//! a segment atomically) and bulk drop (retire the oldest segment) almost
//! for free.
//!
//! This example drives a single engine directly (the features are storage-
//! level): it loads "days" of click data as bulk segments, runs a rolling
//! report, and rotates old days out.
//!
//! Run with: `cargo run --release --example clickstream_rotation`

use harbor_common::{FieldType, SiteId, StorageConfig, Timestamp, Tuple, Value};
use harbor_engine::{Engine, EngineOptions};
use harbor_exec::{collect, AggFunc, AggSpec, Expr, HashAggregate, ReadMode, SeqScan};

const CLICKS_PER_DAY: i64 = 3_000;
const RETENTION_DAYS: usize = 3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("harbor-clicks-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let storage = StorageConfig {
        segment_pages: 64, // one bulk-loaded day spans a few segments
        ..StorageConfig::default()
    };
    let engine = Engine::open(&dir, EngineOptions::harbor(SiteId(1), storage))?;
    let def = engine.create_table(
        "clicks",
        vec![
            ("id".into(), FieldType::Int64),
            ("page".into(), FieldType::Int32),
            ("dwell_ms".into(), FieldType::Int32),
        ],
    )?;
    let table = engine.pool().table(def.id)?;

    let mut next_id: i64 = 0;
    for day in 1..=6u64 {
        // ---- bulk load: one fresh segment per day, appended atomically.
        let seg = table.begin_bulk_segment()?;
        let day_ts = Timestamp(day);
        for _ in 0..CLICKS_PER_DAY {
            let tup = Tuple::versioned(
                day_ts,
                Timestamp::ZERO,
                vec![
                    Value::Int64(next_id),
                    Value::Int32((next_id % 40) as i32),
                    Value::Int32((100 + next_id % 5_000) as i32),
                ],
            );
            engine.insert_recovered(def.id, &tup)?;
            next_id += 1;
        }
        engine.advance_applied_clock(day_ts);
        engine.checkpoint()?; // make the day durable
        println!(
            "day {day}: loaded {CLICKS_PER_DAY} clicks into {seg} \
             ({} segments, {} data pages)",
            table.num_segments(),
            table.num_data_pages()
        );

        // ---- rolling report over the retained window.
        let scan = SeqScan::new(engine.pool().clone(), def.id, ReadMode::Historical(day_ts))?;
        let mut agg = HashAggregate::new(
            Box::new(scan),
            vec![],
            vec![
                AggSpec::new(AggFunc::Count, Expr::col(2), "clicks"),
                AggSpec::new(AggFunc::Avg, Expr::col(4), "avg_dwell"),
            ],
        );
        let row = collect(&mut agg)?.remove(0);
        println!(
            "  retained clicks: {}, average dwell: {} ms",
            row.get(0),
            row.get(1)
        );

        // ---- bulk drop: rotate out days beyond the retention window.
        while table.num_segments() as usize > RETENTION_DAYS {
            let dropped = table
                .drop_oldest_segment()?
                .expect("more than one segment retained");
            println!(
                "  rotated out segment [{} .. {}] ({} pages)",
                dropped.tmin_insert.0, dropped.tmax_insert.0, dropped.page_count
            );
        }
    }

    // After six days with a three-day retention, only the last three days
    // of clicks remain reachable.
    let mut scan = SeqScan::new(
        engine.pool().clone(),
        def.id,
        ReadMode::Historical(Timestamp(6)),
    )?;
    let remaining = collect(&mut scan)?;
    println!(
        "\nfinal reachable clicks: {} (= {} days x {CLICKS_PER_DAY})",
        remaining.len(),
        RETENTION_DAYS,
    );
    assert_eq!(
        remaining.len() as i64,
        RETENTION_DAYS as i64 * CLICKS_PER_DAY
    );
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
