//! Quickstart: build a 1-coordinator / 2-worker HARBOR cluster, run
//! replicated transactions under the logless optimized-3PC protocol, crash
//! a worker, and bring it back online by querying its replica — no
//! recovery log anywhere.
//!
//! Run with: `cargo run --release --example quickstart`

use harbor::{Cluster, ClusterConfig, TableSpec, TransportKind};
use harbor_common::{StorageConfig, Value};
use harbor_dist::{ProtocolKind, UpdateRequest};
use harbor_exec::Expr;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("harbor-quickstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // A cluster running the paper's headline configuration: optimized 3PC,
    // so neither workers nor coordinator keep any log.
    let mut cfg = ClusterConfig::new(ProtocolKind::Opt3pc, 2);
    cfg.storage = StorageConfig::default();
    cfg.transport = TransportKind::InMem {
        latency: None,
        bandwidth: None,
    };
    cfg.tables = vec![TableSpec {
        name: "sales".into(),
        user_fields: vec![
            ("id".into(), harbor_common::FieldType::Int64),
            ("store".into(), harbor_common::FieldType::Int32),
            ("amount".into(), harbor_common::FieldType::Int32),
        ],
    }];
    let cluster = Cluster::build(&dir, cfg)?;
    println!(
        "cluster up: coordinator + workers {:?}",
        cluster.worker_sites()
    );

    // Insert some sales; each transaction is replicated to both workers.
    for id in 0..100i64 {
        cluster.insert_one(
            "sales",
            vec![
                Value::Int64(id),
                Value::Int32((id % 7) as i32),
                Value::Int32((id * 3 % 50) as i32),
            ],
        )?;
    }
    let t_before_fix = cluster.coordinator().authority().now().prev();

    // A correction: store 3's amounts were keyed in wrong (the warehouse
    // "occasional update to historical data").
    cluster.run_txn(vec![UpdateRequest::UpdateWhere {
        table: "sales".into(),
        pred: Expr::col(3).eq(Expr::lit(3)), // stored col 3 = store
        set: vec![(2, Value::Int32(0))],
    }])?;

    // Time travel: the report before and after the correction (§3.3).
    let before = cluster.read_historical("sales", t_before_fix)?;
    let after = cluster.read_latest("sales")?;
    let total = |rows: &[harbor_common::Tuple]| -> i64 {
        rows.iter().map(|t| t.get(4).as_i64().unwrap()).sum()
    };
    println!("revenue before correction: {}", total(&before));
    println!("revenue after  correction: {}", total(&after));

    // Crash one worker. The cluster keeps serving.
    let victim = cluster.worker_sites()[0];
    println!("\ncrashing {victim} ...");
    cluster.crash_worker(victim)?;
    for id in 100..120i64 {
        cluster.insert_one(
            "sales",
            vec![Value::Int64(id), Value::Int32(1), Value::Int32(5)],
        )?;
    }
    println!("cluster committed 20 more transactions while {victim} was down");

    // Recover by querying the surviving replica — HARBOR's three phases.
    let report = cluster.recover_worker_harbor(victim)?;
    println!("\n{victim} recovered in {:?}:", report.total);
    for o in &report.objects {
        println!(
            "  {}: phase1 {:?}, phase2 {:?}+{:?}, phase3 {:?}, {} tuples copied",
            o.table, o.phase1, o.phase2_deletes, o.phase2_inserts, o.phase3, o.tuples_copied
        );
    }

    // Verify the recovered replica serves the same answer.
    let rows = cluster.read_latest("sales")?;
    println!("\nfinal row count: {} (expected 120)", rows.len());
    assert_eq!(rows.len(), 120);
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
