//! Front-door daemon: put the `harbor-front` serving layer in front of a
//! cluster on a real loopback TCP socket, drive it with the closed-loop
//! multi-client workload driver (seeded retry/backoff on typed sheds),
//! crash and recover a worker mid-run, and print the client-observed
//! latency percentiles plus the serving metrics.
//!
//! Run with: `cargo run --release --example front_daemon`

use harbor::{Cluster, ClusterConfig, TableSpec};
use harbor_common::{Metrics, SiteId, StorageConfig};
use harbor_dist::ProtocolKind;
use harbor_front::{FrontConfig, FrontServer};
use harbor_net::{TcpTransport, Transport};
use harbor_workload::{insert_request, run_front_clients, DriverConfig};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("harbor-front-daemon-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Three replicated workers: commits keep flowing while one is down.
    let clients = 4usize;
    let mut cfg = ClusterConfig::new(ProtocolKind::Opt3pc, 3);
    cfg.storage = StorageConfig::for_tests();
    for c in 0..clients {
        cfg.tables.push(TableSpec::paper_table(&format!("t{c}")));
    }
    let cluster = Cluster::build(&dir, cfg)?;

    // The front door: a bounded serving pipeline (acceptor shards → session
    // readers → admission gate → worker pool) on an OS-assigned TCP port.
    // The cluster's coordinator is the handler; per-request deadlines are
    // checked before every begin/update/commit step.
    let front_metrics = Metrics::new();
    let transport = TcpTransport::new(Metrics::new());
    let listener = transport.listen("127.0.0.1:0")?;
    let server = FrontServer::start(
        FrontConfig::default(),
        listener,
        Box::new(cluster.coordinator().clone()),
        front_metrics.clone(),
    )?;
    let addr = server.local_addr();
    println!("harbor-front listening on {addr}");

    // Closed-loop clients over real sockets. The driver retries only typed
    // `Overloaded` sheds (the request never executed, so a resubmit can
    // never double-commit), honoring the server's retry_after hint.
    let driver_cfg = DriverConfig {
        clients,
        txns_per_client: 200,
        deadline: Duration::from_secs(5),
        ..DriverConfig::default()
    };
    let report = std::thread::scope(|scope| {
        let driver = scope.spawn(|| {
            run_front_clients(&transport, &addr, &driver_cfg, |c, n| {
                let id = (c as i64) << 32 | n as i64;
                (id, vec![insert_request(&format!("t{c}"), id)])
            })
        });
        // Meanwhile: fail-stop a worker and bring it back with HARBOR's
        // three recovery phases, all while the clients keep committing.
        std::thread::sleep(Duration::from_millis(100));
        cluster.crash_worker(SiteId(2)).expect("crash");
        println!("site-2 crashed (fail-stop); serving continues on 2 replicas");
        std::thread::sleep(Duration::from_millis(200));
        let rec = cluster.recover_worker_harbor(SiteId(2)).expect("recover");
        println!(
            "site-2 recovered: {} objects in {:?} (phase1 {:?}, phase3 {:?})",
            rec.objects.len(),
            rec.total,
            rec.phase1(),
            rec.phase3()
        );
        driver.join().expect("driver thread")
    })?;

    let s = &report.sample;
    println!(
        "\n{} committed, {} failed, {} sheds ({} retries)",
        s.committed, report.failed, report.sheds_observed, report.retries
    );
    println!(
        "client-observed latency: p50 {:?}  p99 {:?}  p999 {:?}",
        s.p50_latency, s.p99_latency, s.p999_latency
    );

    // Graceful drain: stop accepting, finish everything admitted, close.
    let drain = server.shutdown();
    println!("drained in {drain:?}");
    println!("serving {}", front_metrics.snapshot().serve_summary());

    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
