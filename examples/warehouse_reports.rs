//! An updatable-warehouse scenario (thesis Ch. 1): continuous fine-grained
//! loads, analytical reporting over consistent snapshots, and time travel
//! to audit corrections — the Wells-Fargo-style "compare the report before
//! and after a set of changes".
//!
//! Demonstrates: historical queries never block the load stream (they take
//! no locks), snapshot-consistent aggregation via the local operator
//! pipeline, and the versioned delete/update representation.
//!
//! Run with: `cargo run --release --example warehouse_reports`

use harbor::{Cluster, ClusterConfig, TableSpec, TransportKind};
use harbor_common::{FieldType, StorageConfig, Timestamp, Value};
use harbor_dist::{ProtocolKind, UpdateRequest};
use harbor_exec::{collect, AggFunc, AggSpec, Expr, Filter, HashAggregate, ReadMode, SeqScan};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("harbor-warehouse-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = ClusterConfig::new(ProtocolKind::Opt3pc, 2);
    cfg.storage = StorageConfig::default();
    cfg.transport = TransportKind::InMem {
        latency: None,
        bandwidth: None,
    };
    cfg.tables = vec![TableSpec {
        name: "orders".into(),
        user_fields: vec![
            ("id".into(), FieldType::Int64),
            ("region".into(), FieldType::Int32),
            ("units".into(), FieldType::Int32),
            ("unit_price".into(), FieldType::Int32),
        ],
    }];
    let cluster = Cluster::build(&dir, cfg)?;

    // Nightly ETL: load a day of orders.
    println!("loading day 1 ...");
    for id in 0..2_000i64 {
        cluster.insert_one(
            "orders",
            vec![
                Value::Int64(id),
                Value::Int32((id % 4) as i32),
                Value::Int32((1 + id % 9) as i32),
                Value::Int32((10 + id % 25) as i32),
            ],
        )?;
    }
    let day1_close = cluster.coordinator().authority().now().prev();

    // The morning report: revenue per region as of last night's close,
    // computed with the operator pipeline on one replica (reads go to a
    // single site, §3.1).
    let report =
        |as_of: Timestamp, label: &str| -> Result<Vec<(i64, i64)>, harbor_common::DbError> {
            let site = cluster.worker_sites()[0];
            let engine = cluster.engine(site)?;
            let def = engine.table_def("orders").unwrap();
            // SELECT region, SUM(units * unit_price) FROM orders
            //   [AS OF as_of] GROUP BY region   (stored cols: 2=id, 3=region,
            //   4=units, 5=unit_price)
            let scan = SeqScan::new(engine.pool().clone(), def.id, ReadMode::Historical(as_of))?;
            let revenue = Expr::col(4).mul(Expr::col(5));
            let mut agg = HashAggregate::new(
                Box::new(scan),
                vec![Expr::col(3)],
                vec![
                    AggSpec::new(AggFunc::Sum, revenue, "revenue"),
                    AggSpec::new(AggFunc::Count, Expr::col(2), "orders"),
                ],
            );
            let mut rows: Vec<(i64, i64)> = collect(&mut agg)?
                .into_iter()
                .map(|t| (t.get(0).as_i64().unwrap(), t.get(1).as_i64().unwrap()))
                .collect();
            rows.sort();
            println!("{label}");
            for (region, revenue) in &rows {
                println!("  region {region}: revenue {revenue}");
            }
            Ok(rows)
        };
    let before = report(day1_close, "report as of day-1 close:")?;

    // Intraday corrections: region 2's unit prices were overstated; a few
    // cancelled orders are deleted. These run as ordinary transactions
    // while reporting continues.
    println!("\napplying corrections ...");
    cluster.run_txn(vec![UpdateRequest::UpdateWhere {
        table: "orders".into(),
        pred: Expr::col(3).eq(Expr::lit(2)),
        set: vec![(3, Value::Int32(10))],
    }])?;
    cluster.run_txn(vec![UpdateRequest::DeleteWhere {
        table: "orders".into(),
        pred: Expr::col(2).lt(Expr::lit(50i64)),
    }])?;

    // Audit: the same report before and after the corrections. The "before"
    // numbers are still reproducible — time travel (§3.3).
    let before_again = report(
        day1_close,
        "\nreport as of day-1 close (re-run after corrections):",
    )?;
    assert_eq!(before, before_again, "historical reports must be stable");
    let now = cluster.coordinator().authority().now().prev();
    let after = report(now, "\nreport as of now (corrections applied):")?;
    assert_ne!(before, after);

    // A filtered drill-down: region 0 orders of at least 8 units.
    let site = cluster.worker_sites()[1];
    let engine = cluster.engine(site)?;
    let def = engine.table_def("orders").unwrap();
    let scan = SeqScan::new(engine.pool().clone(), def.id, ReadMode::Historical(now))?;
    let mut filter = Filter::new(
        Box::new(scan),
        Expr::col(3)
            .eq(Expr::lit(0))
            .and(Expr::col(4).ge(Expr::lit(8))),
    );
    let big_orders = collect(&mut filter)?;
    println!("\nregion 0 orders with >= 8 units: {}", big_orders.len());

    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
