//! Storage-fault-plane measurements (DESIGN.md extension 12): scrub
//! throughput over a clean table, targeted buddy-query page repair at
//! 1/10/100 corrupted pages, and the full-object recovery baseline the
//! repair path is supposed to beat at small corruption counts.
//!
//! Run with: `cargo run --release --example scrub_bench`

use harbor::{Cluster, ClusterConfig};
use harbor_common::config::PAGE_SIZE;
use harbor_common::{SiteId, Value};
use harbor_dist::{ProtocolKind, UpdateRequest};
use std::io::{Read, Seek, SeekFrom, Write};
use std::time::Instant;

const ROWS: i64 = 30_000;

fn row(id: i64, v: i32) -> Vec<Value> {
    vec![Value::Int64(id), Value::Int32(v)]
}

fn load(cluster: &Cluster, n: i64) {
    for chunk in (0..n).collect::<Vec<_>>().chunks(500) {
        let ops = chunk
            .iter()
            .map(|i| UpdateRequest::Insert {
                table: "sales".into(),
                values: row(*i, *i as i32),
            })
            .collect();
        cluster.run_txn(ops).unwrap();
    }
}

/// Drops every resident frame of the table, as if the cache went cold.
fn evict_all(cluster: &Cluster, site: SiteId) {
    let e = cluster.engine(site).unwrap();
    let def = e.table_def("sales").unwrap();
    e.pool().flush_all().unwrap();
    let heap = e.pool().table(def.id).unwrap();
    e.pool().deregister_table(def.id);
    e.pool().register_table(heap);
}

/// Data pages of the table that currently hold tuples on disk.
fn occupied_pages(cluster: &Cluster, site: SiteId) -> Vec<u32> {
    let e = cluster.engine(site).unwrap();
    let def = e.table_def("sales").unwrap();
    let heap = e.pool().table(def.id).unwrap();
    heap.all_page_ids()
        .iter()
        .filter(|pid| {
            heap.read_page(pid.page_no)
                .map(|p| p.occupied_slots().next().is_some())
                .unwrap_or(false)
        })
        .map(|pid| pid.page_no)
        .collect()
}

/// Flips one payload bit of each listed page, behind the pool's back.
fn corrupt_pages(dir: &std::path::Path, cluster: &Cluster, site: SiteId, pages: &[u32]) {
    let def = cluster.engine(site).unwrap().table_def("sales").unwrap();
    let path = dir
        .join(format!("site-{}", site.0))
        .join(format!("t{}.tbl", def.id.0));
    let mut f = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(&path)
        .unwrap();
    for page in pages {
        let off = *page as u64 * PAGE_SIZE as u64 + 64;
        f.seek(SeekFrom::Start(off)).unwrap();
        let mut b = [0u8; 1];
        f.read_exact(&mut b).unwrap();
        b[0] ^= 0x01;
        f.seek(SeekFrom::Start(off)).unwrap();
        f.write_all(&b).unwrap();
    }
    f.sync_all().unwrap();
}

fn main() {
    let dir = std::env::temp_dir()
        .join("harbor-scrub-bench")
        .join(format!("{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cluster = Cluster::build(&dir, ClusterConfig::for_tests(ProtocolKind::Opt3pc)).unwrap();
    load(&cluster, ROWS);
    let site = SiteId(1);
    evict_all(&cluster, site);
    let pages = occupied_pages(&cluster, site);
    println!(
        "table: {} rows over {} occupied data pages ({} KiB)",
        ROWS,
        pages.len(),
        pages.len() * PAGE_SIZE / 1024
    );

    // Scrub throughput over a clean table, cache cold.
    evict_all(&cluster, site);
    let t = Instant::now();
    let clean = cluster.scrub_worker(site).unwrap();
    let secs = t.elapsed().as_secs_f64();
    println!(
        "scrub clean: {} pages in {:.1} ms ({:.0} pages/s, {:.1} MiB/s), {} corrupt",
        clean.pages_scanned,
        secs * 1e3,
        clean.pages_scanned as f64 / secs,
        clean.pages_scanned as f64 * PAGE_SIZE as f64 / (1024.0 * 1024.0) / secs,
        clean.corrupt_pages
    );

    // Targeted repair at increasing corruption counts. Each round corrupts
    // n cold pages and times the scrub that detects and repairs them.
    for n in [1usize, 10, 100] {
        assert!(pages.len() >= n, "load must span at least {n} pages");
        corrupt_pages(&dir, &cluster, site, &pages[..n]);
        let t = Instant::now();
        let rep = cluster.scrub_worker(site).unwrap();
        let ms = t.elapsed().as_secs_f64() * 1e3;
        println!(
            "repair n={n}: {:.1} ms, {} corrupt / {} refetched, {} ranges, \
             {} tuples reinserted, {} KiB shipped",
            ms,
            rep.corrupt_pages,
            rep.pages_refetched,
            rep.ranges_fetched,
            rep.tuples_reinserted,
            rep.bytes_shipped / 1024
        );
        evict_all(&cluster, site);
    }

    // Full-object recovery baseline: with no checkpoint taken, Phase 1
    // clears the local state and Phase 2 re-fetches the whole object from
    // the buddies — the recover_object path targeted repair must beat at
    // small corruption counts.
    cluster.crash_worker(site).unwrap();
    let t = Instant::now();
    let report = cluster.recover_worker_harbor(site).unwrap();
    let ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "full recover_object: {:.1} ms, {} tuples copied, {} ranges fetched",
        ms,
        report.tuples_copied(),
        report.ranges_fetched()
    );
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
}
