//! Recovery under a lossy LAN (fig 6-6 style, chaos edition): the same
//! crash-and-catch-up experiment as `benches/fig6_6.rs`, but the recovery
//! traffic crosses a `ChaosTransport` in the `lossy_lan` profile — seeded
//! frame drops (each severing its link), delivery delays, and abrupt
//! disconnects. Phase 2 must detect every severed stream, fail the range
//! over to the surviving buddy, and still converge; the printed chaos and
//! RPC counters show how much abuse the run absorbed.
//!
//! Run with: `cargo run --release --example lossy_recovery [seed]`

use harbor::{Cluster, ClusterConfig, RecoveryConfig, TableSpec};
use harbor_common::{SiteId, StorageConfig, Value};
use harbor_dist::ProtocolKind;
use harbor_net::ChaosConfig;
use std::time::Duration;

const ROWS_BEFORE: i64 = 400;
const ROWS_MISSED: i64 = 2_000;

fn build(dir: &std::path::Path, chaos: Option<ChaosConfig>) -> Cluster {
    let mut cfg = ClusterConfig::new(ProtocolKind::Opt3pc, 3);
    cfg.storage = StorageConfig::for_tests();
    cfg.storage.segment_pages = 2; // several segments => several Phase-2 ranges
    cfg.tables = vec![TableSpec::small("sales")];
    cfg.chaos = chaos;
    cfg.rpc_deadline = Duration::from_secs(2);
    cfg.recovery.net_deadline = Duration::from_secs(2);
    Cluster::build(dir, cfg).unwrap()
}

/// One crash-and-recover cycle; chaos (if any) is enabled only for the
/// recovery itself, so both runs catch up the identical missed window.
fn run(label: &str, chaos: Option<ChaosConfig>) {
    let dir = std::env::temp_dir().join(format!(
        "harbor-lossy-recovery-{label}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let cluster = build(&dir, chaos);

    for id in 0..ROWS_BEFORE {
        cluster
            .insert_one("sales", vec![Value::Int64(id), Value::Int32(id as i32)])
            .unwrap();
    }
    for site in cluster.worker_sites() {
        cluster.engine(site).unwrap().checkpoint().unwrap();
    }
    let victim = SiteId(1);
    cluster.crash_worker(victim).unwrap();
    for id in ROWS_BEFORE..(ROWS_BEFORE + ROWS_MISSED) {
        cluster
            .insert_one("sales", vec![Value::Int64(id), Value::Int32(id as i32)])
            .unwrap();
    }

    if let Some(chaos) = cluster.chaos() {
        chaos.set_enabled(true);
    }
    // Fine-grained ranges: more Phase-2 streams for the chaos layer to cut.
    let report = cluster
        .recover_worker_harbor_with(
            victim,
            RecoveryConfig {
                min_range_pages: 1,
                ..RecoveryConfig::default()
            },
        )
        .unwrap();
    if let Some(chaos) = cluster.chaos() {
        chaos.set_enabled(false);
    }

    let m = cluster.net_metrics().snapshot();
    println!(
        "{label:>9}: recovered {} tuples in {:?} \
         (phase2 {:?}, ranges {} fetched / {} reassigned)",
        report.tuples_copied(),
        report.total,
        report.phase2_deletes() + report.phase2_inserts(),
        report.ranges_fetched(),
        report.ranges_reassigned(),
    );
    println!(
        "{:>9}  chaos: {} drops, {} dups, {} delays, {} disconnects, \
         {} partition drops; rpc: {} timeouts, {} retries",
        "",
        m.chaos_drops,
        m.chaos_dups,
        m.chaos_delays,
        m.chaos_disconnects,
        m.chaos_partition_drops,
        m.rpc_timeouts,
        m.rpc_retries,
    );
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x6006);
    run("clean", None);
    run("lossy-lan", Some(ChaosConfig::lossy_lan(seed)));
    // A much nastier link than the stock profile: 2.5% of frames lost (each
    // loss severing its stream) and 1% abrupt resets — recovery only
    // converges by failing ranges over to the surviving buddy.
    run(
        "flaky-lan",
        Some(ChaosConfig {
            drop_per_mille: 25,
            disconnect_per_mille: 10,
            ..ChaosConfig::lossy_lan(seed)
        }),
    );
}
