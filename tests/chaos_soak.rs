//! Chaos soak: N pinned seeds of mixed insert/update/read traffic under a
//! lossy, partitioning, crashing network *and* seeded disk faults (read I/O
//! errors, torn writes, bit flips) — after quiesce and a checksum scrub,
//! every acknowledged commit must be on every live replica, all replicas
//! version-history equal, no transaction half-committed, and K-safety loss
//! explicitly reported. One seed is run twice to assert the combined
//! network + disk fault trace replays byte-identically.
//!
//! On a violation the failing seed, its event schedule, and the canonical
//! fault trace are printed — re-running that seed reproduces the run.

use harbor::{ChaosRunConfig, Cluster, ClusterConfig, TableSpec};
use harbor_common::StorageConfig;
use harbor_dist::ProtocolKind;
use harbor_net::ChaosConfig;
use harbor_storage::DiskFaultConfig;
use std::path::PathBuf;
use std::time::Duration;

/// The CI seed set. Adding a seed here adds a soak run.
const SEEDS: [u64; 3] = [0xA11CE, 0xB0B0, 0x5EED_0003];

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("harbor-chaos-soak")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Three workers over an in-memory transport wrapped in the lossy-LAN chaos
/// profile. Deadlines are far above the engine's 200 ms lock timeout (slow
/// replies from lock waits are normal, not liveness failures) but small
/// enough that a blackholed link resolves in bounded wall-clock. Recovery is
/// serial: deterministic buddy choice keeps the fault trace replayable.
fn chaos_cluster(dir: &PathBuf, seed: u64) -> Cluster {
    let mut cfg = ClusterConfig::new(ProtocolKind::Opt3pc, 3);
    cfg.storage = StorageConfig::for_tests();
    cfg.tables = vec![TableSpec::small("sales")];
    cfg.chaos = Some(ChaosConfig::lossy_lan(seed));
    cfg.disk_faults = Some(DiskFaultConfig::soak(seed));
    cfg.rpc_deadline = Duration::from_secs(2);
    cfg.recovery.parallel_objects = false;
    cfg.recovery.parallel_segments = false;
    cfg.recovery.net_deadline = Duration::from_secs(2);
    Cluster::build(dir, cfg).unwrap()
}

fn run_seed(seed: u64) -> harbor::ChaosRunReport {
    let dir = temp_dir(&format!("seed-{seed:x}"));
    let cluster = chaos_cluster(&dir, seed);
    let report = cluster.run_chaos(&ChaosRunConfig::soak(seed)).unwrap();
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
    report
}

/// All pinned seeds run in one test, serially: chaos runs are wall-clock
/// heavy and share machine resources badly, and a failure must print which
/// seed broke plus everything needed to replay it.
#[test]
fn pinned_seeds_hold_invariants() {
    // Debug test builds run with the lock-rank witness armed, so the soak
    // doubles as its steady-state regression: any cross-function rank
    // inversion on the catalog/lock-manager/pool paths panics the run.
    assert_eq!(
        harbor_common::lockrank::is_armed(),
        cfg!(debug_assertions),
        "lockrank witness arming must track debug_assertions"
    );
    // Same for ShimSan: debug soaks run with vector-clock happens-before
    // tracking inside the shim locks and channels, so an access to an
    // instrumented witness with no ordering edge panics the failing seed.
    assert_eq!(
        harbor_common::shimsan::is_armed(),
        cfg!(debug_assertions),
        "ShimSan arming must track debug_assertions"
    );
    for seed in SEEDS {
        let report = run_seed(seed);
        assert!(
            report.committed > 0,
            "seed {seed:#x}: workload made no progress\nschedule:\n  {}",
            report.schedule.join("\n  ")
        );
        assert!(
            report.violations.is_empty(),
            "seed {seed:#x} violated invariants: {:?}\nschedule:\n  {}\nfault trace:\n{}",
            report.violations,
            report.schedule.join("\n  "),
            report.fault_trace
        );
        println!(
            "seed {seed:#x}: {} committed, {} aborted, {} reads ({} errors), \
             {} crashes, {} partitions, {} recoveries ({} failed), min live {}, \
             {} disk faults, scrub {} pages / {} corrupt / {} bytes shipped",
            report.committed,
            report.aborted,
            report.reads,
            report.read_errors,
            report.crashes,
            report.partitions,
            report.recoveries,
            report.failed_recoveries,
            report.min_live_seen,
            report.disk_faults_injected,
            report.scrub_pages_scanned,
            report.scrub_corrupt_pages,
            report.scrub_bytes_shipped
        );
        for line in &report.read_path {
            println!("  read path {line}");
        }
        println!("  commit path {}", report.commit_path);
    }
    // In debug builds the whole battery just ran under ShimSan: the shim
    // locks and channels must actually have published happens-before edges
    // (a zero here would mean the sanitizer was silently disconnected and
    // the race coverage above was vacuous).
    if cfg!(debug_assertions) {
        assert!(
            harbor_common::shimsan::sync_edges() > 0,
            "soak ran without recording a single ShimSan sync edge"
        );
    }
}

/// Pulls one `key=value` counter out of a metrics summary line.
fn summary_field(summary: &str, key: &str) -> u64 {
    summary
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(key))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Batched-commit soak: a 2PC cluster with epoch group commit enabled runs
/// the same fault battery, but write slots are 4-wide client bursts so real
/// multi-transaction epochs form at the coordinator. The invariant battery
/// is unchanged — in particular, a worker lost mid-epoch must abort only its
/// own transactions, and quiesce's per-transaction §4.3.3 consensus pass
/// must leave zero in-doubt transactions (`resolve_pending_txns` adds a
/// violation otherwise). This seed is deliberately *not* in the fault-trace
/// replay test: concurrent lanes make frame interleaving, and hence the
/// lossy-link trace, timing-dependent; the event schedule itself stays
/// seed-deterministic because all draws happen before lanes spawn.
#[test]
fn batched_commit_seed_holds_invariants() {
    let seed: u64 = 0xEB0C_0001;
    let dir = temp_dir(&format!("batched-{seed:x}"));
    let mut cfg = ClusterConfig::new(ProtocolKind::Opt2pc, 3);
    cfg.storage = StorageConfig::for_tests();
    // One table per burst lane: lanes never contend on page locks, so the
    // four commits of a burst genuinely overlap and batch into epochs.
    cfg.tables = (0..4)
        .map(|i| TableSpec::small(&format!("sales{i}")))
        .collect();
    cfg.chaos = Some(ChaosConfig::lossy_lan(seed));
    cfg.disk_faults = Some(DiskFaultConfig::soak(seed));
    cfg.rpc_deadline = Duration::from_secs(2);
    cfg.recovery.parallel_objects = false;
    cfg.recovery.parallel_segments = false;
    cfg.recovery.net_deadline = Duration::from_secs(2);
    cfg.epoch_commit = Some(harbor_dist::EpochCommitConfig {
        max_txns: 8,
        // Generous accumulation window: the soak asserts correctness, not
        // throughput, and on a loaded CI machine burst lanes can be
        // scheduling-delayed past a tight window, leaving every epoch at
        // size 1 (which would trip the batching assertion below).
        max_wait: Duration::from_millis(25),
        pipeline_depth: 2,
    });
    let cluster = Cluster::build(&dir, cfg).unwrap();
    let report = cluster
        .run_chaos(&ChaosRunConfig::soak_batched(seed))
        .unwrap();
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);

    assert!(
        report.committed > 0,
        "seed {seed:#x}: workload made no progress\nschedule:\n  {}",
        report.schedule.join("\n  ")
    );
    assert!(
        report.violations.is_empty(),
        "seed {seed:#x} violated invariants: {:?}\nschedule:\n  {}\nfault trace:\n{}",
        report.violations,
        report.schedule.join("\n  "),
        report.fault_trace
    );
    // The epoch path must actually have carried the commits: every acked
    // transaction went through an epoch, and with 4-wide bursts at least one
    // epoch must have batched more than one transaction.
    let epochs = summary_field(&report.commit_path, "epochs=");
    let epoch_txns = summary_field(&report.commit_path, "epoch_txns=");
    assert!(
        epochs >= 1,
        "no epochs formed; commit path: {}",
        report.commit_path
    );
    assert!(
        epoch_txns >= report.committed as u64,
        "committed txns bypassed the epoch path: {} epoch txns < {} commits; {}",
        epoch_txns,
        report.committed,
        report.commit_path
    );
    assert!(
        epoch_txns > epochs,
        "bursts never shared an epoch; commit path: {}",
        report.commit_path
    );
    println!(
        "seed {seed:#x}: {} committed, {} aborted over {} epochs",
        report.committed, report.aborted, epochs
    );
    println!("  commit path {}", report.commit_path);
}

/// Membership soak: the classic fault battery plus grow/shrink churn —
/// brand-new sites join mid-run, live sites gracefully decommission — with
/// the replication supervisor ticked synchronously after every operation,
/// healing kill-below-K deficits without the harness's own recovery
/// events. The invariant battery gains membership convergence: at quiesce
/// no copy may still be join-pending, and the roster checked for
/// version-history equality is the catalog's *current* membership (joined
/// sites included, decommissioned sites gone).
#[test]
fn membership_seed_holds_invariants() {
    let seed: u64 = 0x5EED_0005;
    let run = |seed| {
        let dir = temp_dir(&format!("membership-{seed:x}"));
        let cluster = chaos_cluster(&dir, seed);
        let report = cluster
            .run_chaos(&ChaosRunConfig::soak_membership(seed))
            .unwrap();
        drop(cluster);
        let _ = std::fs::remove_dir_all(&dir);
        report
    };
    let report = run(seed);
    assert!(
        report.committed > 0,
        "seed {seed:#x}: workload made no progress\nschedule:\n  {}",
        report.schedule.join("\n  ")
    );
    assert!(
        report.violations.is_empty(),
        "seed {seed:#x} violated invariants: {:?}\nschedule:\n  {}\nfault trace:\n{}",
        report.violations,
        report.schedule.join("\n  "),
        report.fault_trace
    );
    // The seed is pinned because it actually exercises the churn: at least
    // one site joined under load and one was gracefully decommissioned.
    assert!(
        report.joins >= 1,
        "seed {seed:#x} never joined a site\nschedule:\n  {}",
        report.schedule.join("\n  ")
    );
    assert!(
        report.decommissions >= 1,
        "seed {seed:#x} never decommissioned a site\nschedule:\n  {}",
        report.schedule.join("\n  ")
    );
    assert!(report.supervisor_ticks > 0, "supervisor never ticked");
    println!(
        "seed {seed:#x}: {} committed, {} aborted, {} crashes, \
         {} joins ({} failed), {} decommissions ({} refused), \
         {} auto-repairs over {} supervisor ticks ({} throttled)",
        report.committed,
        report.aborted,
        report.crashes,
        report.joins,
        report.failed_joins,
        report.decommissions,
        report.failed_decommissions,
        report.auto_repairs,
        report.supervisor_ticks,
        report.supervisor_throttled,
    );
    println!("  membership {}", report.membership);
    // Grow/shrink events replay deterministically like every other fault:
    // a second run of the seed produces the byte-identical schedule.
    let again = run(seed);
    assert_eq!(
        report.schedule, again.schedule,
        "membership event schedule diverged across identical-seed runs"
    );
    assert_eq!(
        report.fault_trace, again.fault_trace,
        "fault trace diverged across identical-seed runs"
    );
}

/// Front-door soak: the classic serial fault battery, but every write
/// transaction enters the system the way a real client's would — encoded
/// onto a loopback TCP socket, through the `harbor-front` admission
/// pipeline, and into the coordinator via the serving layer's deadline-
/// checked handler. Routing is installed with [`Cluster::set_txn_router`],
/// which draws no randomness, so the seed's schedule and fault trace must
/// replay byte-identically (asserted below by running it twice). The soak
/// is serial, so the front door must admit everything: zero sheds, zero
/// deadline rejects, and a clean drain at shutdown.
#[test]
fn front_door_seed_holds_invariants() {
    use harbor_front::{FrontClient, FrontConfig, FrontServer};
    use harbor_net::Transport;

    let seed: u64 = 0xF00D_0006;
    let run = |seed: u64| {
        let dir = temp_dir(&format!("front-{seed:x}"));
        let cluster = chaos_cluster(&dir, seed);
        // The client↔front link is plain TCP, outside the chaos layer:
        // faults belong on the inter-site links, where the seeds put them.
        let transport = harbor_net::TcpTransport::new(harbor_common::Metrics::new());
        let listener = transport.listen("127.0.0.1:0").unwrap();
        let front_metrics = harbor_common::Metrics::new();
        let server = FrontServer::start(
            FrontConfig::default(),
            listener,
            Box::new(cluster.coordinator().clone()),
            front_metrics.clone(),
        )
        .unwrap();
        let client = std::sync::Mutex::new(
            FrontClient::connect(&transport, &server.local_addr(), 0).unwrap(),
        );
        // Generous client deadline: chaos stalls are bounded by the 2 s RPC
        // deadlines, and the soak asserts admission behavior, not SLOs.
        cluster.set_txn_router(Some(std::sync::Arc::new(move |ops| {
            client.lock().unwrap().txn(&ops, Duration::from_secs(30))
        })));
        let report = cluster.run_chaos(&ChaosRunConfig::soak(seed)).unwrap();
        cluster.set_txn_router(None);
        server.shutdown();
        drop(cluster);
        let _ = std::fs::remove_dir_all(&dir);
        (report, front_metrics)
    };
    let (report, front) = run(seed);
    assert!(
        report.committed > 0,
        "seed {seed:#x}: workload made no progress\nschedule:\n  {}",
        report.schedule.join("\n  ")
    );
    assert!(
        report.violations.is_empty(),
        "seed {seed:#x} violated invariants: {:?}\nschedule:\n  {}\nfault trace:\n{}",
        report.violations,
        report.schedule.join("\n  "),
        report.fault_trace
    );
    // Every write really crossed the front door, and the serial profile
    // never tripped admission control.
    assert!(
        front.requests_admitted() >= report.committed as u64,
        "commits bypassed the front door: {} admitted < {} committed",
        front.requests_admitted(),
        report.committed
    );
    assert_eq!(front.requests_shed(), 0, "serial soak must never shed");
    assert_eq!(front.deadline_rejects(), 0);
    assert_eq!(front.sessions_accepted(), 1);
    assert!(front.drain_micros() > 0, "shutdown never drained");
    // Debug runs route every write across the front work queue, whose
    // ShimSan witness records each locked enqueue/dequeue — the soak is
    // the witness's steady-state (no-false-positive) regression.
    if cfg!(debug_assertions) {
        assert!(
            harbor_common::shimsan::witness_checks() > 0,
            "front-door soak never exercised the work-queue ShimSan witness"
        );
    }
    println!(
        "seed {seed:#x}: {} committed, {} aborted through the front door \
         ({} admitted, queue peak {})",
        report.committed,
        report.aborted,
        front.requests_admitted(),
        front.queue_peak_depth()
    );
    println!("  serving {}", front.snapshot().serve_summary());
    // Routed runs replay like direct ones: byte-identical schedule and
    // fault trace for the same seed.
    let (again, _) = run(seed);
    assert_eq!(
        report.schedule, again.schedule,
        "front-door event schedule diverged across identical-seed runs"
    );
    assert_eq!(
        report.fault_trace, again.fault_trace,
        "fault trace diverged across identical-seed runs"
    );
}

/// Determinism: the same seed must replay the byte-identical event schedule
/// and canonical fault trace — the property that makes a failing seed above
/// a reproducer instead of an anecdote.
#[test]
fn same_seed_replays_identical_fault_trace() {
    let seed = SEEDS[0];
    let a = run_seed(seed);
    let b = run_seed(seed);
    assert_eq!(
        a.schedule, b.schedule,
        "event schedule diverged across identical-seed runs"
    );
    assert_eq!(
        a.fault_trace, b.fault_trace,
        "fault trace diverged across identical-seed runs"
    );
}
