//! Cluster-wide crash schedules (the generalized fail-point machinery):
//!
//! * a coordinator fail point armed for a transaction is consumed exactly
//!   once and cleared on *both* finish paths — commit and abort — so a
//!   leftover armed point can never kill an unrelated later transaction;
//! * the backup coordinator itself crashing mid-resolution hands the role
//!   to the next-ranked live participant, and the Table 4.1 outcome is
//!   unchanged (the cascading-backup case of §4.3.3);
//! * a buddy crashing *while serving* a Phase-2 recovery scan (§5.5) has
//!   its unfinished ranges reassigned to the surviving alternate.

use harbor::{Cluster, ClusterConfig, RecoveryConfig, TableSpec};
use harbor_common::{SiteId, StorageConfig, Timestamp, Value};
use harbor_dist::{CrashPoint, FailPoint, ProtocolKind, UpdateRequest};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("harbor-crash-schedule")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(workers: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(ProtocolKind::Opt3pc, workers);
    cfg.storage = StorageConfig::for_tests();
    cfg.tables = vec![TableSpec::small("t")];
    cfg
}

fn count_at(cluster: &Cluster, site: SiteId) -> usize {
    let e = cluster.engine(site).unwrap();
    let def = e.table_def("t").unwrap();
    let mut scan = harbor_exec::SeqScan::new(
        e.pool().clone(),
        def.id,
        harbor_exec::ReadMode::Historical(Timestamp(1_000_000)),
    )
    .unwrap();
    harbor_exec::collect(&mut scan).unwrap().len()
}

fn insert(id: i64) -> UpdateRequest {
    UpdateRequest::Insert {
        table: "t".into(),
        values: vec![Value::Int64(id), Value::Int32(id as i32)],
    }
}

/// Wait until every listed replica holds `expect` rows with no locks held.
fn await_counts(cluster: &Cluster, sites: &[SiteId], expect: usize, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let counts: Vec<usize> = sites.iter().map(|s| count_at(cluster, *s)).collect();
        let locks_free = sites
            .iter()
            .all(|s| cluster.engine(*s).unwrap().locks().held_count() == 0);
        if counts.iter().all(|&c| c == expect) && locks_free {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{what}: replicas did not converge; counts={counts:?} locks_free={locks_free}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// An armed coordinator fail point whose predicate never matches must be
/// cleared when the transaction commits — not left armed to assassinate
/// the next transaction that happens to send enough PTCs.
#[test]
fn armed_fail_point_cleared_on_commit() {
    let dir = temp_dir("clear-on-commit");
    let cluster = Cluster::build(&dir, config(2)).unwrap();
    let coordinator = cluster.coordinator();

    let tid = coordinator.begin().unwrap();
    coordinator.update(tid, insert(1)).unwrap();
    // With 2 workers the counter never reaches 99: the point stays armed
    // through the whole protocol and must be disarmed by finish().
    coordinator.set_fail_point(FailPoint::AfterPtcSentTo(99));
    coordinator.commit(tid).unwrap();
    assert!(
        cluster.crash_schedule().is_empty(),
        "fail point survived a committed transaction: {:?}",
        cluster.crash_schedule().armed()
    );

    // The next transaction runs with no schedule interference.
    let tid = coordinator.begin().unwrap();
    coordinator.update(tid, insert(2)).unwrap();
    coordinator.commit(tid).unwrap();
    await_counts(&cluster, &cluster.worker_sites(), 2, "clear-on-commit");
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression for the abort path: a fail point armed for a transaction
/// that is *aborted* before the point is ever probed must also be cleared.
/// Before the fix, `finish()` only disarmed on commit, so the leftover
/// `AfterPrepare` here would crash the coordinator inside the follow-up
/// transaction's commit.
#[test]
fn armed_fail_point_cleared_on_abort() {
    let dir = temp_dir("clear-on-abort");
    let cluster = Cluster::build(&dir, config(2)).unwrap();
    let coordinator = cluster.coordinator();

    let tid = coordinator.begin().unwrap();
    coordinator.update(tid, insert(1)).unwrap();
    coordinator.set_fail_point(FailPoint::AfterPrepare);
    // Abort without ever reaching PREPARE: the point is never consumed.
    coordinator.abort(tid).unwrap();
    assert!(
        cluster.crash_schedule().is_empty(),
        "fail point survived an aborted transaction: {:?}",
        cluster.crash_schedule().armed()
    );

    // If the point had leaked, this commit would die at AfterPrepare.
    let tid = coordinator.begin().unwrap();
    coordinator.update(tid, insert(2)).unwrap();
    coordinator.commit(tid).unwrap();
    await_counts(&cluster, &cluster.worker_sites(), 1, "clear-on-abort");
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Drives the cascading-backup case: the coordinator crashes at `fail`,
/// the first-ranked backup (site 1) crashes mid-resolution, and the
/// next-ranked live participant (site 2) must take over and drive the
/// surviving replicas to the same Table 4.1 outcome (`expect_rows`).
fn cascading_backup(name: &str, fail: FailPoint, expect_rows: usize) {
    let dir = temp_dir(name);
    let cluster = Cluster::build(&dir, config(3)).unwrap();
    let coordinator = cluster.coordinator();
    cluster
        .insert_one("t", vec![Value::Int64(0), Value::Int32(0)])
        .unwrap();

    let tid = coordinator.begin().unwrap();
    coordinator.update(tid, insert(1)).unwrap();
    coordinator.set_fail_point(fail);
    // The would-be backup dies partway through its own resolution: after
    // re-broadcasting the first phase of its Table 4.1 action but before
    // the outcome broadcast, leaving the transaction still unresolved.
    cluster.arm_crash(SiteId(1), CrashPoint::WorkerDuringConsensusResolve);
    assert!(
        coordinator.commit(tid).is_err(),
        "{name}: coordinator should have crashed at its fail point"
    );

    // Site 1 is lowest-ranked live, elects itself backup, and dies at the
    // armed point — its resolution attempt must surface the crash.
    let first = cluster.worker(SiteId(1)).unwrap();
    assert!(
        first.resolve_by_consensus(tid).is_err(),
        "{name}: backup should have crashed mid-resolution"
    );
    assert_eq!(
        cluster.reap_scheduled_crashes(),
        vec![SiteId(1)],
        "{name}: the fired crash point should have fail-stopped site 1"
    );

    // Site 2 is now the lowest-ranked *live* participant: its election ping
    // to site 1 fails on the closed listener, it takes over as backup, and
    // its own 3PC state decides the outcome — the same one site 1's state
    // implied, because 3PC keeps all participants within one transition.
    let second = cluster.worker(SiteId(2)).unwrap();
    assert!(
        second.resolve_by_consensus(tid).unwrap(),
        "{name}: next-ranked site did not act as backup"
    );
    await_counts(&cluster, &[SiteId(2), SiteId(3)], expect_rows, name);
    assert!(cluster.crash_schedule().is_empty());
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Coordinator dies after all PTCs: every survivor is prepared-to-commit,
/// so both the first and the cascading backup must drive a COMMIT.
#[test]
fn backup_crash_mid_resolution_still_commits() {
    cascading_backup(
        "cascade-commit",
        FailPoint::AfterPtcSentTo(3),
        2, // baseline row + committed insert
    );
}

/// Coordinator dies right after PREPARE: survivors are prepared-yes, so
/// the action is prepare-then-abort — and stays ABORT across the takeover.
#[test]
fn backup_crash_mid_resolution_still_aborts() {
    cascading_backup(
        "cascade-abort",
        FailPoint::AfterPrepare,
        1, // baseline row only
    );
}

/// §5.5 buddy death via the schedule: the primary buddy crashes *while
/// serving* a Phase-2 historical scan (mid-stream, not pre-killed), and
/// the recovering site must reassign the unfinished ranges to the
/// surviving alternate and still converge.
#[test]
fn buddy_crash_mid_phase2_scan_reassigns() {
    let dir = temp_dir("phase2-scan-crash");
    let mut cfg = ClusterConfig::new(ProtocolKind::Opt3pc, 3);
    cfg.storage = StorageConfig::for_tests();
    cfg.storage.segment_pages = 1; // many segments => many Phase-2 ranges
    cfg.tables = vec![TableSpec::small("t")];
    let cluster = Cluster::build(&dir, cfg).unwrap();

    for id in 0..50 {
        cluster
            .insert_one("t", vec![Value::Int64(id), Value::Int32(id as i32)])
            .unwrap();
    }
    for site in cluster.worker_sites() {
        cluster.engine(site).unwrap().checkpoint().unwrap();
    }
    let victim = SiteId(1);
    cluster.crash_worker(victim).unwrap();
    for id in 50..300 {
        cluster
            .insert_one("t", vec![Value::Int64(id), Value::Int32(id as i32)])
            .unwrap();
    }

    // The first buddy to serve a Phase-2 catch-up scan dies mid-stream.
    cluster.arm_crash(SiteId(2), CrashPoint::WorkerServingPhase2Scan);
    let report = cluster
        .recover_worker_harbor_with(
            victim,
            RecoveryConfig {
                min_range_pages: 1,
                ..RecoveryConfig::default()
            },
        )
        .unwrap();
    assert!(
        report.ranges_reassigned() >= 1 || cluster.crash_schedule().armed().is_empty(),
        "the schedule never fired and nothing was reassigned"
    );
    assert_eq!(count_at(&cluster, victim), 300);

    // The fired buddy fail-stopped; bring it back and verify it converges
    // to the same state as the replica that finished serving recovery.
    let reaped = cluster.reap_scheduled_crashes();
    assert_eq!(reaped, vec![SiteId(2)], "scan crash point never fired");
    cluster.recover_worker_harbor(SiteId(2)).unwrap();
    assert_eq!(count_at(&cluster, SiteId(2)), 300);
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
}
