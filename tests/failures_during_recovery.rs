//! Failures *during* recovery (thesis §5.5) — scenarios the thesis
//! describes but its implementation never exercised:
//!
//! * the recovering site dies after Phase 1 or Phase 2 and restarts
//!   recovery, resuming from the finer-granularity per-object checkpoint;
//! * the recovering site dies in Phase 3 while holding remote table read
//!   locks, and the buddies override the orphaned locks (§5.5.1);
//! * a recovery buddy dies mid-recovery, and the retry recomputes the
//!   recovery plan from the remaining replicas (§5.5.2);
//! * K = 2: two workers down simultaneously, recovered one after the other.

use harbor::{Cluster, ClusterConfig, RecoveryConfig, RecoveryFailPoint};
use harbor_common::{SiteId, Timestamp, Value};
use harbor_dist::ProtocolKind;
use std::path::PathBuf;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("harbor-failure-tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn row(id: i64, v: i32) -> Vec<Value> {
    vec![Value::Int64(id), Value::Int32(v)]
}

fn fill(cluster: &Cluster, from: i64, to: i64) {
    for id in from..to {
        cluster.insert_one("sales", row(id, id as i32)).unwrap();
    }
}

fn count_at(cluster: &Cluster, site: SiteId) -> usize {
    let e = cluster.engine(site).unwrap();
    let def = e.table_def("sales").unwrap();
    let now = cluster.coordinator().authority().now().prev();
    let mut scan = harbor_exec::SeqScan::new(
        e.pool().clone(),
        def.id,
        harbor_exec::ReadMode::Historical(now),
    )
    .unwrap();
    harbor_exec::collect(&mut scan).unwrap().len()
}

fn failing(fp: RecoveryFailPoint) -> RecoveryConfig {
    RecoveryConfig {
        fail_point: fp,
        ..RecoveryConfig::default()
    }
}

#[test]
fn recovering_site_dies_after_each_phase_and_retries() {
    let dir = temp_dir("retry-phases");
    let cluster = Cluster::build(&dir, ClusterConfig::for_tests(ProtocolKind::Opt3pc)).unwrap();
    fill(&cluster, 0, 30);
    for site in cluster.worker_sites() {
        cluster.engine(site).unwrap().checkpoint().unwrap();
    }
    fill(&cluster, 30, 60);
    let victim = SiteId(1);
    cluster.crash_worker(victim).unwrap();
    fill(&cluster, 60, 80);
    // First attempt dies after Phase 1.
    let err = cluster
        .recover_worker_harbor_with(victim, failing(RecoveryFailPoint::AfterPhase1))
        .unwrap_err();
    assert!(err.to_string().contains("injected"));
    assert!(cluster.is_crashed(victim));
    // Second attempt dies after Phase 2 — its object checkpoint survives.
    let err = cluster
        .recover_worker_harbor_with(victim, failing(RecoveryFailPoint::AfterPhase2))
        .unwrap_err();
    assert!(err.to_string().contains("injected"));
    // Progress continues between attempts.
    fill(&cluster, 80, 90);
    // Third attempt completes. The per-object checkpoint from attempt 2
    // means Phase 2 copies only what arrived since then.
    let report = cluster.recover_worker_harbor(victim).unwrap();
    assert!(
        report.objects[0].checkpoint > Timestamp(30),
        "resumed from the recovery-time object checkpoint"
    );
    assert_eq!(count_at(&cluster, victim), 90);
    assert_eq!(count_at(&cluster, SiteId(2)), 90);
    // The third attempt should not have re-copied the attempt-2 tuples.
    assert!(
        report.tuples_copied() <= 15,
        "copied {} tuples; expected only the post-attempt-2 delta",
        report.tuples_copied()
    );
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn buddies_override_a_dead_recoverers_locks() {
    let dir = temp_dir("lock-override");
    let cluster = Cluster::build(&dir, ClusterConfig::for_tests(ProtocolKind::Opt3pc)).unwrap();
    fill(&cluster, 0, 20);
    let victim = SiteId(1);
    cluster.crash_worker(victim).unwrap();
    // The recoverer dies while holding the buddy's table read lock.
    let err = cluster
        .recover_worker_harbor_with(victim, failing(RecoveryFailPoint::WhileHoldingLocks))
        .unwrap_err();
    assert!(err.to_string().contains("injected"));
    // Give the buddy's disconnect detection a moment to fire.
    std::thread::sleep(std::time::Duration::from_millis(200));
    // Updates must be able to proceed: the orphaned lock was overridden.
    cluster.insert_one("sales", row(1_000, 0)).unwrap();
    let survivor = SiteId(2);
    assert_eq!(
        cluster.engine(survivor).unwrap().locks().held_count(),
        0,
        "orphaned recovery locks remain on the buddy"
    );
    // And a clean retry brings the site fully online.
    cluster.recover_worker_harbor(victim).unwrap();
    assert_eq!(count_at(&cluster, victim), 21);
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn buddy_failure_mid_recovery_switches_to_another_copy() {
    let dir = temp_dir("buddy-fails");
    let mut cfg = ClusterConfig::for_tests(ProtocolKind::Opt3pc);
    cfg.num_workers = 3; // K = 2
    let cluster = Cluster::build(&dir, cfg).unwrap();
    fill(&cluster, 0, 25);
    let victim = SiteId(1);
    cluster.crash_worker(victim).unwrap();
    fill(&cluster, 25, 40);
    // The planner would pick site 2 as the buddy; kill it so the recovery
    // attempt fails mid-flight, then retry — the new plan must use site 3.
    let plan = cluster
        .placement()
        .recovery_plan(victim, "sales", &std::collections::HashSet::new())
        .unwrap();
    assert_eq!(plan[0].buddy, SiteId(2));
    cluster.crash_worker(SiteId(2)).unwrap();
    // With site 2 down the retry plans around it and succeeds from site 3.
    let report = cluster.recover_worker_harbor(victim).unwrap();
    assert!(report.tuples_copied() >= 15);
    assert_eq!(count_at(&cluster, victim), 40);
    // Finally recover site 2 as well (second of the K = 2 failures),
    // which can now use either live replica.
    let report = cluster.recover_worker_harbor(SiteId(2)).unwrap();
    assert!(report.tuples_copied() > 0);
    assert_eq!(count_at(&cluster, SiteId(2)), 40);
    // All three replicas converge.
    for site in cluster.worker_sites() {
        assert_eq!(count_at(&cluster, site), 40, "at {site}");
    }
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_error_when_all_copies_are_down() {
    let dir = temp_dir("all-down");
    let cluster = Cluster::build(&dir, ClusterConfig::for_tests(ProtocolKind::Opt3pc)).unwrap();
    fill(&cluster, 0, 5);
    cluster.crash_worker(SiteId(1)).unwrap();
    cluster.crash_worker(SiteId(2)).unwrap();
    // More than K simultaneous failures: HARBOR no longer applies (§3.2).
    let err = cluster.recover_worker_harbor(SiteId(1)).unwrap_err();
    assert!(matches!(err, harbor_common::DbError::Unrecoverable(_)));
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn phase2_repeats_until_the_lag_threshold_is_met() {
    let dir = temp_dir("phase2-rounds");
    let cluster = Cluster::build(&dir, ClusterConfig::for_tests(ProtocolKind::Opt3pc)).unwrap();
    fill(&cluster, 0, 30);
    let victim = SiteId(1);
    cluster.crash_worker(victim).unwrap();
    fill(&cluster, 30, 50);
    // A zero lag threshold can never be satisfied while the clock ticks,
    // so Phase 2 runs exactly `max_phase2_rounds` times and then proceeds;
    // correctness must be unaffected (later rounds just copy less).
    let cfg = RecoveryConfig {
        phase2_repeat_threshold: 0,
        max_phase2_rounds: 3,
        ..RecoveryConfig::default()
    };
    let report = cluster.recover_worker_harbor_with(victim, cfg).unwrap();
    assert_eq!(report.objects[0].phase2_rounds, 3);
    assert_eq!(count_at(&cluster, victim), 50);
    assert_eq!(count_at(&cluster, SiteId(2)), 50);
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Parallel recovery of several objects announces each object separately
/// (Fig 5-4 is per-`rec`). Updates to a *still-recovering* table must not
/// start flowing to the site just because another table came online first —
/// they would be applied twice (once live, once by the Phase-3 copy).
#[test]
fn per_object_announcements_gate_update_routing() {
    let dir = temp_dir("per-object-online");
    let mut cfg = harbor::ClusterConfig::for_tests(ProtocolKind::Opt3pc);
    cfg.tables = vec![
        harbor::TableSpec::small("sales"),
        harbor::TableSpec::small("returns"),
    ];
    // Force heavily skewed recovery: serial object order with traffic in
    // flight maximizes the window between the two announcements.
    cfg.recovery.parallel_objects = false;
    let cluster = std::sync::Arc::new(Cluster::build(&dir, cfg).unwrap());
    for i in 0..20 {
        cluster.insert_one("sales", row(i, 0)).unwrap();
        cluster.insert_one("returns", row(i, 0)).unwrap();
    }
    let victim = SiteId(1);
    cluster.crash_worker(victim).unwrap();
    // Background writers on BOTH tables throughout recovery.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writers: Vec<_> = ["sales", "returns"]
        .into_iter()
        .map(|t| {
            let cluster = cluster.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut i = 1_000i64;
                while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                    let _ = cluster.insert_one(t, row(i, 0));
                    i += 1;
                }
            })
        })
        .collect();
    std::thread::sleep(std::time::Duration::from_millis(30));
    cluster.recover_worker_harbor(victim).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(30));
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    for w in writers {
        w.join().unwrap();
    }
    cluster.insert_one("sales", row(9_999, 0)).unwrap();
    cluster.insert_one("returns", row(9_999, 0)).unwrap();
    // No duplicates and no losses on either table, on either replica.
    let now = cluster.coordinator().authority().now().prev();
    for t in ["sales", "returns"] {
        let mut per_site = Vec::new();
        for site in cluster.worker_sites() {
            let e = cluster.engine(site).unwrap();
            let def = e.table_def(t).unwrap();
            let mut scan = harbor_exec::SeqScan::new(
                e.pool().clone(),
                def.id,
                harbor_exec::ReadMode::Historical(now),
            )
            .unwrap();
            let mut ids: Vec<i64> = harbor_exec::collect(&mut scan)
                .unwrap()
                .iter()
                .map(|r| r.get(2).as_i64().unwrap())
                .collect();
            ids.sort();
            // Duplicate detection.
            let mut dedup = ids.clone();
            dedup.dedup();
            assert_eq!(ids, dedup, "duplicate tuples in {t} at {site}");
            per_site.push(ids);
        }
        assert_eq!(per_site[0], per_site[1], "replicas diverged on {t}");
    }
    cluster.shutdown();
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
}
