//! The EMP example of thesis §5.1: copies of a table need not be stored
//! identically — one site holds a full copy while another copy is split
//! into horizontal partitions across two sites. Recovery of the full copy
//! uses *two* recovery buddies (one per partition), each with its own
//! recovery predicate; recovery of a partition uses the full copy with the
//! partition's predicate.

use harbor::{recover_site, RecoveryConfig, RecoveryContext};
use harbor_common::{FieldType, Metrics, SiteId, StorageConfig, Timestamp, Value};
use harbor_dist::{
    Coordinator, CoordinatorConfig, Copy, Part, Placement, ProtocolKind, UpdateRequest, Worker,
    WorkerConfig,
};
use harbor_engine::{Engine, EngineOptions};
use harbor_exec::{collect, Expr, ReadMode, SeqScan};
use harbor_net::{InMemNetwork, Transport};
use harbor_wal::GroupCommit;
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::Arc;

const KEY_COL: usize = 2; // stored column of the id field

struct Fixture {
    dir: PathBuf,
    transport: Arc<dyn Transport>,
    placement: Placement,
    coordinator: Arc<Coordinator>,
    workers: HashMap<SiteId, Arc<Worker>>,
    engines: HashMap<SiteId, Arc<Engine>>,
    peers: HashMap<SiteId, String>,
}

fn fields() -> Vec<(String, FieldType)> {
    vec![
        ("id".into(), FieldType::Int64),
        ("salary".into(), FieldType::Int32),
    ]
}

fn open_engine(dir: &std::path::Path, site: SiteId) -> Arc<Engine> {
    let e = Engine::open(
        dir.join(format!("site-{}", site.0)),
        EngineOptions::harbor(site, StorageConfig::for_tests()),
    )
    .unwrap();
    if e.table_def("employees").is_none() {
        e.create_table("employees", fields()).unwrap();
    }
    e
}

fn build() -> Fixture {
    let dir = std::env::temp_dir()
        .join("harbor-partitioned-tests")
        .join(format!("emp-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let transport: Arc<dyn Transport> = Arc::new(InMemNetwork::new(Metrics::new()));
    let sites = [SiteId(1), SiteId(2), SiteId(3)];
    let mut placement = Placement::new();
    // Copy 1: full replica on S1. Copy 2: S2 holds id < 1000, S3 the rest.
    placement.add_table(
        "employees",
        vec![
            Copy {
                parts: vec![Part::full(SiteId(1))],
            },
            Copy {
                parts: vec![
                    Part::partition(SiteId(2), Expr::col(KEY_COL).lt(Expr::lit(1000i64))),
                    Part::partition(SiteId(3), Expr::col(KEY_COL).ge(Expr::lit(1000i64))),
                ],
            },
        ],
    );
    let mut peers = HashMap::new();
    for s in sites {
        let addr = format!("emp-site-{}", s.0);
        placement.set_address(s, &addr);
        peers.insert(s, addr);
    }
    placement.set_coordinator_addr("emp-coordinator");
    let mut workers = HashMap::new();
    let mut engines = HashMap::new();
    for s in sites {
        let engine = open_engine(&dir, s);
        let worker = Worker::start(
            engine.clone(),
            transport.clone(),
            WorkerConfig {
                site: s,
                addr: peers[&s].clone(),
                protocol: ProtocolKind::Opt3pc,
                checkpoint_every: None,
                peers: peers.clone(),
                coordinator: None,
                auto_consensus: false,
                use_deletion_log: true,
                scan_batch: harbor_common::config::DEFAULT_SCAN_BATCH,
                crash_schedule: Default::default(),
            },
        )
        .unwrap();
        workers.insert(s, worker);
        engines.insert(s, engine);
    }
    let coordinator = Coordinator::start(
        CoordinatorConfig {
            site: SiteId(0),
            addr: "emp-coordinator".into(),
            protocol: ProtocolKind::Opt3pc,
            log_dir: None,
            group_commit: GroupCommit::enabled(),
            disk: harbor_common::DiskProfile::fast(),
            rpc_deadline: harbor_dist::DEFAULT_RPC_DEADLINE,
            read_retries: harbor_dist::DEFAULT_READ_RETRIES,
            crash_schedule: Default::default(),
            epoch_commit: None,
            degrade_read_only: false,
        },
        placement.clone(),
        transport.clone(),
        Metrics::new(),
    )
    .unwrap();
    Fixture {
        dir,
        transport,
        placement,
        coordinator,
        workers,
        engines,
        peers,
    }
}

fn insert(f: &Fixture, id: i64, salary: i32) {
    let tid = f.coordinator.begin().unwrap();
    f.coordinator
        .update(
            tid,
            UpdateRequest::Insert {
                table: "employees".into(),
                values: vec![Value::Int64(id), Value::Int32(salary)],
            },
        )
        .unwrap();
    f.coordinator.commit(tid).unwrap();
}

fn ids_at(f: &Fixture, site: SiteId) -> Vec<i64> {
    let e = &f.engines[&site];
    let def = e.table_def("employees").unwrap();
    let now = f.coordinator.authority().now().prev();
    let mut scan = SeqScan::new(e.pool().clone(), def.id, ReadMode::Historical(now)).unwrap();
    let mut v: Vec<i64> = collect(&mut scan)
        .unwrap()
        .iter()
        .map(|t| t.get(KEY_COL).as_i64().unwrap())
        .collect();
    v.sort();
    v
}

fn crash(f: &mut Fixture, site: SiteId) {
    f.workers.remove(&site).unwrap().crash();
    f.engines.remove(&site);
    f.coordinator.mark_dead(site);
}

fn recover(f: &mut Fixture, site: SiteId) {
    let engine = open_engine(&f.dir, site);
    let worker = Worker::start(
        engine.clone(),
        f.transport.clone(),
        WorkerConfig {
            site,
            addr: f.peers[&site].clone(),
            protocol: ProtocolKind::Opt3pc,
            checkpoint_every: None,
            peers: f.peers.clone(),
            coordinator: None,
            auto_consensus: false,
            use_deletion_log: true,
            scan_batch: harbor_common::config::DEFAULT_SCAN_BATCH,
            crash_schedule: Default::default(),
        },
    )
    .unwrap();
    let ctx = RecoveryContext {
        engine: engine.clone(),
        site,
        placement: f.placement.clone(),
        transport: f.transport.clone(),
        down: HashSet::new(),
        config: RecoveryConfig::default(),
    };
    let report = recover_site(&ctx).unwrap();
    assert!(!report.objects.is_empty());
    f.workers.insert(site, worker);
    f.engines.insert(site, engine);
}

#[test]
fn partitioned_copies_route_and_recover() {
    let mut f = build();
    // Load employees on both sides of the partition boundary.
    for id in 0..40i64 {
        insert(&f, id, (id * 10) as i32);
    }
    for id in 1000..1030i64 {
        insert(&f, id, 9_000 + id as i32);
    }
    // Routing: S1 holds everything; S2 only ids < 1000; S3 only >= 1000.
    assert_eq!(ids_at(&f, SiteId(1)).len(), 70);
    let s2 = ids_at(&f, SiteId(2));
    assert_eq!(s2.len(), 40);
    assert!(s2.iter().all(|&id| id < 1000));
    let s3 = ids_at(&f, SiteId(3));
    assert_eq!(s3.len(), 30);
    assert!(s3.iter().all(|&id| id >= 1000));

    // Recovery plan shapes (§5.1): the full copy recovers from two
    // partition buddies; a partition recovers from the full copy.
    let plan = f
        .placement
        .recovery_plan(SiteId(1), "employees", &HashSet::new())
        .unwrap();
    assert_eq!(plan.len(), 2);
    let plan = f
        .placement
        .recovery_plan(SiteId(2), "employees", &HashSet::new())
        .unwrap();
    assert_eq!(plan.len(), 1);
    assert_eq!(plan[0].buddy, SiteId(1));
    assert!(plan[0].predicate.is_some());

    // Crash the full copy; keep loading (rows land on the partitions).
    crash(&mut f, SiteId(1));
    for id in 40..60i64 {
        insert(&f, id, 1);
    }
    for id in 1030..1040i64 {
        insert(&f, id, 1);
    }
    // Recover S1 from both partition buddies.
    recover(&mut f, SiteId(1));
    let s1 = ids_at(&f, SiteId(1));
    assert_eq!(s1.len(), 100, "full copy reassembled from two partitions");
    assert!(s1.contains(&59) && s1.contains(&1039));

    // Now crash a partition and recover it from the full copy: only its
    // slice must come back.
    crash(&mut f, SiteId(2));
    for id in 60..70i64 {
        insert(&f, id, 2);
    }
    recover(&mut f, SiteId(2));
    let s2 = ids_at(&f, SiteId(2));
    assert_eq!(s2.len(), 70, "partition recovered exactly its slice");
    assert!(s2.iter().all(|&id| id < 1000));
    // And S1 sees everything inserted during S2's downtime.
    assert_eq!(ids_at(&f, SiteId(1)).len(), 110);

    // Shut down.
    f.coordinator.crash();
    for (_, w) in f.workers.drain() {
        w.stop();
    }
    let _ = std::fs::remove_dir_all(&f.dir);
}

#[test]
fn more_than_k_failures_is_unrecoverable() {
    let placement = {
        let mut p = Placement::new();
        // Recovery planning filters buddies against the address book
        // (live membership), so register both sites as members.
        p.set_address(SiteId(1), "site-1");
        p.set_address(SiteId(2), "site-2");
        p.add_replicated_table("r", &[SiteId(1), SiteId(2)]);
        p
    };
    let down: HashSet<SiteId> = [SiteId(2)].into_iter().collect();
    let err = placement.recovery_plan(SiteId(1), "r", &down).unwrap_err();
    assert!(matches!(err, harbor_common::DbError::Unrecoverable(_)));
    // Time-travel sanity on the error contract: with the buddy alive the
    // same plan succeeds.
    let plan = placement
        .recovery_plan(SiteId(1), "r", &HashSet::new())
        .unwrap();
    assert_eq!(plan[0].buddy, SiteId(2));
    let _ = Timestamp::ZERO;
}
