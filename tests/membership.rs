//! Online membership: joining a brand-new site under live update traffic,
//! graceful decommission, supervisor-driven self-healing back to the K
//! floor, and the opt-in read-only degradation gate at the last live copy.
//!
//! The load-bearing assertion throughout is *version-history byte
//! identity*: after any membership change quiesces, every live replica of
//! a table must hold the identical multiset of versions — insertion and
//! deletion timestamps included — because a joined copy is built by the
//! same Phase-2/Phase-3 machinery that rebuilds a crashed one.

use harbor::{
    Cluster, ClusterConfig, Repair, ReplicationSupervisor, SupervisorConfig, COORDINATOR_SITE,
};
use harbor_common::{DbError, SiteId, Value};
use harbor_dist::ProtocolKind;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("harbor-membership-tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn row(id: i64, v: i32) -> Vec<Value> {
    vec![Value::Int64(id), Value::Int32(v)]
}

fn cluster(dir: &PathBuf, workers: usize) -> Arc<Cluster> {
    let mut cfg = ClusterConfig::for_tests(ProtocolKind::Opt3pc);
    cfg.num_workers = workers;
    Arc::new(Cluster::build(dir, cfg).unwrap())
}

/// Every version a site holds — visible or deleted — as
/// `(id, v, ins, del)`, sorted: the byte-identity fingerprint of a replica.
fn version_history(cluster: &Cluster, site: SiteId) -> Vec<(i64, i64, u64, u64)> {
    let e = cluster.engine(site).unwrap();
    let def = e.table_def("sales").unwrap();
    let mut scan =
        harbor_exec::SeqScan::new(e.pool().clone(), def.id, harbor_exec::ReadMode::SeeDeleted)
            .unwrap();
    let mut out: Vec<(i64, i64, u64, u64)> = harbor_exec::collect(&mut scan)
        .unwrap()
        .iter()
        .map(|t| {
            (
                t.get(2).as_i64().unwrap(),
                t.get(3).as_i64().unwrap(),
                t.get(0).as_time().unwrap().0,
                t.get(1).as_time().unwrap().0,
            )
        })
        .collect();
    out.sort_unstable();
    out
}

fn assert_live_replicas_identical(cluster: &Cluster, context: &str) {
    let live: Vec<SiteId> = cluster
        .worker_sites()
        .into_iter()
        .filter(|s| !cluster.is_crashed(*s) && cluster.worker(*s).is_ok())
        .collect();
    assert!(!live.is_empty(), "{context}: no live replicas");
    let reference = version_history(cluster, live[0]);
    for site in live.iter().skip(1) {
        let other = version_history(cluster, *site);
        assert_eq!(
            reference,
            other,
            "{context}: version histories diverge between {} ({} versions) and {} ({} versions)",
            live[0],
            reference.len(),
            site,
            other.len()
        );
    }
}

/// Background insert load against `table` until `stop` flips; transient
/// errors (lock waits during the Phase-3 drain, aborts) are expected — the
/// invariant is that whatever *was* acked is identical everywhere.
fn spawn_load(cluster: Arc<Cluster>, start_id: i64, stop: Arc<AtomicBool>) -> LoadHandle {
    let acked = Arc::new(AtomicUsize::new(0));
    let acked2 = acked.clone();
    let thread = std::thread::spawn(move || {
        let mut id = start_id;
        while !stop.load(Ordering::SeqCst) {
            if cluster
                .insert_one("sales", row(id, (id % 1000) as i32))
                .is_ok()
            {
                acked2.fetch_add(1, Ordering::SeqCst);
            }
            id += 1;
        }
    });
    LoadHandle { thread, acked }
}

struct LoadHandle {
    thread: std::thread::JoinHandle<()>,
    acked: Arc<AtomicUsize>,
}

impl LoadHandle {
    fn stop(self, stop: &AtomicBool) -> usize {
        stop.store(true, Ordering::SeqCst);
        self.thread.join().unwrap();
        self.acked.load(Ordering::SeqCst)
    }
}

/// A brand-new site joined under live insert traffic ends byte-identical
/// to the seasoned replicas, is a full member, and participates in
/// subsequent commits.
#[test]
fn join_under_load_yields_byte_identical_replica() {
    let dir = temp_dir("join-under-load");
    let cluster = cluster(&dir, 2);
    for i in 0..40 {
        cluster.insert_one("sales", row(i, i as i32)).unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));
    let load = spawn_load(cluster.clone(), 10_000, stop.clone());
    // Let the load get going so the join genuinely races live commits.
    std::thread::sleep(Duration::from_millis(30));
    let new_site = SiteId(3);
    let report = cluster.join_worker(new_site).unwrap();
    let acked = load.stop(&stop);
    assert!(acked > 0, "load thread never acked an insert");
    assert!(
        report.objects.iter().map(|o| o.tuples_copied).sum::<u64>() > 0,
        "bootstrap copied nothing: {report:?}"
    );
    // Catalog: full member, no copy left half-joined.
    assert!(cluster.placement().is_member(new_site));
    assert_eq!(
        cluster.placement().member_sites(),
        vec![SiteId(1), SiteId(2), new_site]
    );
    assert!(
        cluster.placement().joining_copies().is_empty(),
        "copies still joining after join_worker returned"
    );
    // The new copy is votable: a post-join commit lands on all three.
    let before = version_history(&cluster, new_site).len();
    cluster.insert_one("sales", row(99_999, 7)).unwrap();
    assert_eq!(version_history(&cluster, new_site).len(), before + 1);
    assert_live_replicas_identical(&cluster, "after join under load");
    cluster.shutdown();
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Joining an existing or reserved site id is refused and leaves the
/// catalog untouched.
#[test]
fn join_rejects_existing_and_coordinator_sites() {
    let dir = temp_dir("join-rejects");
    let cluster = cluster(&dir, 2);
    let v = cluster.placement().version();
    assert!(cluster.join_worker(COORDINATOR_SITE).is_err());
    assert!(cluster.join_worker(SiteId(1)).is_err());
    assert_eq!(
        cluster.placement().version(),
        v,
        "refused joins must not mutate the catalog"
    );
    cluster.shutdown();
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Graceful decommission under live traffic: the departing site's role in
/// in-flight transactions drains, its parts are re-homed, the survivors
/// keep committing, and the address book forgets it everywhere.
#[test]
fn decommission_under_load_keeps_survivors_available() {
    let dir = temp_dir("decommission-under-load");
    let cluster = cluster(&dir, 3);
    for i in 0..25 {
        cluster.insert_one("sales", row(i, i as i32)).unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));
    let load = spawn_load(cluster.clone(), 20_000, stop.clone());
    std::thread::sleep(Duration::from_millis(30));
    let affected = cluster.decommission_worker(SiteId(3)).unwrap();
    let acked = load.stop(&stop);
    assert!(acked > 0, "load thread never acked an insert");
    assert_eq!(affected, vec!["sales".to_string()]);
    assert!(!cluster.placement().is_member(SiteId(3)));
    assert_eq!(
        cluster.placement().member_sites(),
        vec![SiteId(1), SiteId(2)]
    );
    assert!(cluster.worker(SiteId(3)).is_err(), "worker still running");
    // Survivors are a functioning 2-replica cluster.
    cluster.insert_one("sales", row(50_000, 1)).unwrap();
    assert_live_replicas_identical(&cluster, "after decommission under load");
    // Decommissioning down to the last copy is refused.
    cluster.decommission_worker(SiteId(2)).unwrap();
    let err = cluster.decommission_worker(SiteId(1)).unwrap_err();
    assert!(
        matches!(err, DbError::Unrecoverable(_)),
        "dropping the last copy must be unrecoverable, got {err:?}"
    );
    assert!(cluster.placement().is_member(SiteId(1)));
    cluster.shutdown();
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The acceptance-criterion scenario: a site killed below K is brought
/// back by the background replication supervisor with NO manual
/// `recover_worker_harbor` call anywhere in the test.
#[test]
fn supervisor_auto_recovers_killed_site() {
    let dir = temp_dir("supervisor-auto-recover");
    let cluster = cluster(&dir, 2);
    for i in 0..30 {
        cluster.insert_one("sales", row(i, i as i32)).unwrap();
    }
    cluster.crash_worker(SiteId(2)).unwrap();
    // More acked commits while the replica is down — the repair must
    // replay them, not just restore the pre-crash image.
    for i in 30..45 {
        cluster.insert_one("sales", row(i, i as i32)).unwrap();
    }
    let mut handle = cluster
        .start_supervisor(SupervisorConfig::for_tests(0xD0C))
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    while cluster.is_crashed(SiteId(2)) {
        assert!(
            Instant::now() < deadline,
            "supervisor never repaired the crashed site; stats: {:?}",
            handle.stats()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    handle.stop();
    assert!(handle.stats().repairs.load(Ordering::Relaxed) >= 1);
    assert!(
        cluster.coordinator().metrics().snapshot().auto_repairs >= 1,
        "auto-repair must be visible in the coordinator's counters"
    );
    // The healed replica carries the full history and takes new commits.
    assert_live_replicas_identical(&cluster, "after supervisor repair");
    cluster.insert_one("sales", row(60_000, 2)).unwrap();
    assert_live_replicas_identical(&cluster, "after post-repair commit");
    cluster.shutdown();
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The supervisor's spare-first policy: when a table drops below its floor
/// and a live member *not* hosting it exists, the deficit is healed by
/// re-replicating onto the spare (`replicate_table_to`), not by waiting
/// for the departed host.
#[test]
fn supervisor_replicates_onto_spare_member() {
    let dir = temp_dir("supervisor-spare");
    let cluster = cluster(&dir, 3);
    // Re-place "sales" on sites 1 and 2 only: site 3 stays a member with
    // no copy — a spare. (Data inserted after this routes to 1 and 2.)
    cluster.placement().mutate(|p| {
        p.add_replicated_table("sales", &[SiteId(1), SiteId(2)]);
    });
    for i in 0..20 {
        cluster.insert_one("sales", row(i, i as i32)).unwrap();
    }
    assert!(version_history(&cluster, SiteId(3)).is_empty());
    // Floor captured at attach: 2 copies.
    let mut sup = ReplicationSupervisor::new(SupervisorConfig::for_tests(0x5A5A), &cluster);
    // Losing site 2 leaves one live copy — below the floor, spare on hand.
    let affected = cluster.decommission_worker(SiteId(2)).unwrap();
    assert_eq!(affected, vec!["sales".to_string()]);
    let repair = sup.tick(&cluster, 0);
    assert_eq!(
        repair,
        Some(Repair::Replicate {
            table: "sales".into(),
            target: SiteId(3),
        })
    );
    assert_eq!(
        cluster.placement().sites_for("sales").unwrap(),
        vec![SiteId(1), SiteId(3)]
    );
    assert!(cluster.placement().joining_copies().is_empty());
    assert_live_replicas_identical(&cluster, "after spare re-replication");
    // Back at the floor: the next tick finds nothing to repair.
    assert_eq!(sup.tick(&cluster, 1), None);
    cluster.insert_one("sales", row(70_000, 3)).unwrap();
    assert_live_replicas_identical(&cluster, "after post-replication commit");
    cluster.shutdown();
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Opt-in graceful degradation: an object placed redundantly but down to
/// its last live copy refuses updates with [`DbError::Degraded`], keeps
/// serving reads, and lifts the gate the moment redundancy is restored.
#[test]
fn degrade_read_only_gates_updates_at_last_copy() {
    let dir = temp_dir("degrade-read-only");
    let mut cfg = ClusterConfig::for_tests(ProtocolKind::Opt3pc);
    cfg.degrade_read_only = true;
    let cluster = Arc::new(Cluster::build(&dir, cfg).unwrap());
    for i in 0..10 {
        cluster.insert_one("sales", row(i, i as i32)).unwrap();
    }
    cluster.crash_worker(SiteId(2)).unwrap();
    let err = cluster.insert_one("sales", row(100, 1)).unwrap_err();
    assert!(
        matches!(err, DbError::Degraded(_)),
        "update at last copy must degrade, got {err:?}"
    );
    // Reads still serve from the survivor.
    assert_eq!(cluster.read_latest("sales").unwrap().len(), 10);
    // The supervisor restores K; the gate lifts without intervention.
    let mut sup = ReplicationSupervisor::new(SupervisorConfig::for_tests(0xDE6), &cluster);
    assert_eq!(sup.tick(&cluster, 0), Some(Repair::RecoverSite(SiteId(2))));
    cluster.insert_one("sales", row(100, 1)).unwrap();
    assert_live_replicas_identical(&cluster, "after degradation lifted");
    cluster.shutdown();
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Property: any join/decommission/crash/recover sequence converges
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum MemberOp {
    Join,
    Decommission(usize),
    Crash(usize),
    Recover(usize),
}

fn member_op_strategy() -> impl Strategy<Value = MemberOp> {
    prop_oneof![
        Just(MemberOp::Join),
        (0usize..8).prop_map(MemberOp::Decommission),
        (0usize..8).prop_map(MemberOp::Crash),
        (0usize..8).prop_map(MemberOp::Recover),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        max_shrink_iters: 16,
        .. ProptestConfig::default()
    })]

    /// Random interleavings of membership churn and acked inserts: at
    /// quiesce, every member is live with the table at its floor of K
    /// live replicas (or the run explicitly shrank the floor), all live
    /// replicas are version-history identical, and every acked insert is
    /// present.
    #[test]
    fn membership_churn_converges(
        ops in proptest::collection::vec(member_op_strategy(), 1..7),
        seed in 0u64..1_000,
    ) {
        let dir = std::env::temp_dir()
            .join("harbor-membership-prop")
            .join(format!("churn-{}-{seed}-{}", std::process::id(), rand_suffix()));
        let _ = std::fs::remove_dir_all(&dir);
        let cluster = cluster(&dir, 3);
        let mut next_site = 4u16;
        let mut acked: Vec<i64> = Vec::new();
        let mut id = 0i64;
        for op in &ops {
            // A couple of acked writes between membership events.
            for _ in 0..2 {
                if cluster.insert_one("sales", row(id, id as i32)).is_ok() {
                    acked.push(id);
                }
                id += 1;
            }
            let members = cluster.placement().member_sites();
            let live: Vec<SiteId> = members
                .iter()
                .copied()
                .filter(|s| !cluster.is_crashed(*s))
                .collect();
            match op {
                MemberOp::Join => {
                    if members.len() < 5 {
                        cluster.join_worker(SiteId(next_site)).unwrap();
                        next_site += 1;
                    }
                }
                MemberOp::Decommission(i) => {
                    // Keep at least two live copies so traffic continues.
                    if live.len() >= 3 {
                        let victim = live[i % live.len()];
                        cluster.decommission_worker(victim).unwrap();
                    }
                }
                MemberOp::Crash(i) => {
                    // Never crash the last live replica.
                    if live.len() >= 2 {
                        let victim = live[i % live.len()];
                        cluster.crash_worker(victim).unwrap();
                    }
                }
                MemberOp::Recover(i) => {
                    let crashed: Vec<SiteId> = members
                        .iter()
                        .copied()
                        .filter(|s| cluster.is_crashed(*s))
                        .collect();
                    if !crashed.is_empty() {
                        cluster.recover_worker_harbor(crashed[i % crashed.len()]).unwrap();
                    }
                }
            }
        }
        // Quiesce: heal every crashed member, then check convergence.
        for site in cluster.placement().member_sites() {
            if cluster.is_crashed(site) {
                cluster.recover_worker_harbor(site).unwrap();
            }
        }
        let members = cluster.placement().member_sites();
        prop_assert!(!members.is_empty());
        prop_assert_eq!(
            cluster.placement().sites_for("sales").unwrap(),
            members.clone(),
            "every member holds a full copy after quiesce"
        );
        prop_assert!(cluster.placement().joining_copies().is_empty());
        let reference = version_history(&cluster, members[0]);
        for site in members.iter().skip(1) {
            prop_assert_eq!(&reference, &version_history(&cluster, *site));
        }
        let visible: std::collections::BTreeSet<i64> = reference
            .iter()
            .filter(|(_, _, _, del)| *del == 0)
            .map(|(id, _, _, _)| *id)
            .collect();
        for id in &acked {
            prop_assert!(visible.contains(id), "acked key {} missing", id);
        }
        cluster.shutdown();
        drop(cluster);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

fn rand_suffix() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .subsec_nanos() as u64
}
