//! Automatic non-blocking termination under 3PC (§4.3.3): with
//! `auto_consensus` on, a worker that sees the coordinator's connection die
//! mid-commit elects the backup and drives the transaction to a consistent
//! outcome with *no external intervention* — the property that lets
//! optimized 3PC run without any coordinator log.

use harbor::{Cluster, ClusterConfig, TableSpec, TransportKind};
use harbor_common::{SiteId, StorageConfig, Timestamp, Value};
use harbor_dist::{FailPoint, ProtocolKind, UpdateRequest};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("harbor-auto-consensus")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn count_at(cluster: &Cluster, site: SiteId) -> usize {
    let e = cluster.engine(site).unwrap();
    let def = e.table_def("t").unwrap();
    let mut scan = harbor_exec::SeqScan::new(
        e.pool().clone(),
        def.id,
        harbor_exec::ReadMode::Historical(Timestamp(1_000_000)),
    )
    .unwrap();
    harbor_exec::collect(&mut scan).unwrap().len()
}

fn scenario(name: &str, fail: FailPoint, expect_rows: usize) {
    let mut cfg = ClusterConfig::new(ProtocolKind::Opt3pc, 2);
    cfg.storage = StorageConfig::for_tests();
    cfg.transport = TransportKind::InMem {
        latency: None,
        bandwidth: None,
    };
    cfg.tables = vec![TableSpec::small("t")];
    cfg.auto_consensus = true;
    let cluster = Cluster::build(temp_dir(name), cfg).unwrap();
    cluster
        .insert_one("t", vec![Value::Int64(0), Value::Int32(0)])
        .unwrap();
    let coordinator = cluster.coordinator();
    let tid = coordinator.begin().unwrap();
    coordinator
        .update(
            tid,
            UpdateRequest::Insert {
                table: "t".into(),
                values: vec![Value::Int64(1), Value::Int32(1)],
            },
        )
        .unwrap();
    coordinator.set_fail_point(fail);
    assert!(coordinator.commit(tid).is_err(), "{name}: coordinator died");
    // No manual resolution: the workers' disconnect detection elects the
    // backup and finishes the transaction. Poll until both replicas agree
    // on the expected outcome.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let counts: Vec<usize> = cluster
            .worker_sites()
            .iter()
            .map(|s| count_at(&cluster, *s))
            .collect();
        let locks_free = cluster
            .worker_sites()
            .iter()
            .all(|s| cluster.engine(*s).unwrap().locks().held_count() == 0);
        if counts.iter().all(|&c| c == expect_rows) && locks_free {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "{name}: consensus did not converge; counts={counts:?} locks_free={locks_free}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    cluster.shutdown();
}

#[test]
fn crash_after_prepare_auto_aborts() {
    scenario("after-prepare", FailPoint::AfterPrepare, 1);
}

#[test]
fn crash_mid_prepare_to_commit_auto_commits() {
    // One worker reached prepared-to-commit: the backup replays the last
    // two phases and the transaction commits everywhere.
    scenario("mid-ptc", FailPoint::AfterPtcSentTo(1), 2);
}

#[test]
fn crash_mid_commit_fanout_auto_commits() {
    scenario("mid-commit", FailPoint::AfterCommitSentTo(1), 2);
}
