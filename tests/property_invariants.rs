//! Property-based tests over the core invariants.
//!
//! * **Replica convergence**: any randomized transaction mix (inserts,
//!   deletes, key updates, aborted transactions), followed by a crash at an
//!   arbitrary point and HARBOR recovery, leaves the recovered replica
//!   byte-equivalent (as a multiset of visible tuples) to the survivor —
//!   at *every* historical time, not just the present.
//! * **Codec round-trips**: random tuples and expressions survive the wire.
//! * **Visibility**: the tuple-visibility predicate matches a reference
//!   reconstruction from the event history.

use harbor::{Cluster, ClusterConfig};
use harbor_common::codec::Wire;
use harbor_common::time::visible_at;
use harbor_common::{SiteId, Timestamp, Tuple, Value};
use harbor_dist::{ProtocolKind, UpdateRequest};
use harbor_exec::Expr;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Insert { id: i64, v: i32 },
    DeleteById { id: i64 },
    UpdateById { id: i64, v: i32 },
    AbortedInsert { id: i64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..40, any::<i32>()).prop_map(|(id, v)| Op::Insert { id, v }),
        (0i64..40).prop_map(|id| Op::DeleteById { id }),
        (0i64..40, any::<i32>()).prop_map(|(id, v)| Op::UpdateById { id, v }),
        (1000i64..1040).prop_map(|id| Op::AbortedInsert { id }),
    ]
}

/// Visible tuples of a table at `t`, as a sorted multiset of (id, v, ins).
fn snapshot(cluster: &Cluster, site: SiteId, t: Timestamp) -> Vec<(i64, i64, u64)> {
    let e = cluster.engine(site).unwrap();
    let def = e.table_def("sales").unwrap();
    let mut scan = harbor_exec::SeqScan::new(
        e.pool().clone(),
        def.id,
        harbor_exec::ReadMode::Historical(t),
    )
    .unwrap();
    let mut out: Vec<(i64, i64, u64)> = harbor_exec::collect(&mut scan)
        .unwrap()
        .iter()
        .map(|tup| {
            (
                tup.get(2).as_i64().unwrap(),
                tup.get(3).as_i64().unwrap(),
                tup.insertion_ts().unwrap().0,
            )
        })
        .collect();
    out.sort();
    out
}

fn apply(cluster: &Cluster, op: &Op, inserted: &mut Vec<i64>) {
    match op {
        Op::Insert { id, v } => {
            // Unique-ify the key against prior inserts to keep the model
            // simple (updates create versions; duplicate live keys do not).
            if inserted.contains(id) {
                return;
            }
            if cluster
                .insert_one("sales", vec![Value::Int64(*id), Value::Int32(*v)])
                .is_ok()
            {
                inserted.push(*id);
            }
        }
        Op::DeleteById { id } => {
            let _ = cluster.run_txn(vec![UpdateRequest::DeleteWhere {
                table: "sales".into(),
                pred: Expr::col(2).eq(Expr::lit(*id)),
            }]);
        }
        Op::UpdateById { id, v } => {
            let _ = cluster.run_txn(vec![UpdateRequest::UpdateByKey {
                table: "sales".into(),
                key: *id,
                set: vec![(1, Value::Int32(*v))],
            }]);
        }
        Op::AbortedInsert { id } => {
            let coordinator = cluster.coordinator();
            let tid = coordinator.begin().unwrap();
            coordinator
                .update(
                    tid,
                    UpdateRequest::Insert {
                        table: "sales".into(),
                        values: vec![Value::Int64(*id), Value::Int32(0)],
                    },
                )
                .unwrap();
            // Poison one worker: the prepare vote is NO and the protocol
            // aborts everywhere.
            let victim = cluster.worker_sites()[0];
            cluster.engine(victim).unwrap().poison(tid);
            assert!(coordinator.commit(tid).is_err());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        max_shrink_iters: 32,
        .. ProptestConfig::default()
    })]

    #[test]
    fn replicas_converge_after_crash_and_recovery(
        ops in proptest::collection::vec(op_strategy(), 4..32),
        crash_at in 0usize..32,
        checkpoint_at in 0usize..32,
    ) {
        let dir = std::env::temp_dir()
            .join("harbor-prop-tests")
            .join(format!("conv-{}-{}", std::process::id(), rand_suffix()));
        let cluster = Cluster::build(&dir, ClusterConfig::for_tests(ProtocolKind::Opt3pc)).unwrap();
        let victim = SiteId(1);
        let crash_at = crash_at % (ops.len() + 1);
        let mut inserted = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            if i == checkpoint_at % (ops.len() + 1) {
                for site in cluster.worker_sites() {
                    cluster.engine(site).unwrap().checkpoint().unwrap();
                }
            }
            if i == crash_at {
                cluster.crash_worker(victim).unwrap();
            }
            apply(&cluster, op, &mut inserted);
        }
        if crash_at >= ops.len() {
            cluster.crash_worker(victim).unwrap();
        }
        cluster.recover_worker_harbor(victim).unwrap();
        // The replicas agree at the present AND at every historical epoch
        // (time travel consistency survives recovery).
        let now = cluster.coordinator().authority().now().prev();
        for t in (1..=now.0).step_by(((now.0 / 6).max(1)) as usize) {
            let a = snapshot(&cluster, SiteId(1), Timestamp(t));
            let b = snapshot(&cluster, SiteId(2), Timestamp(t));
            prop_assert_eq!(&a, &b, "diverged at t={}", t);
        }
        prop_assert_eq!(
            snapshot(&cluster, SiteId(1), now),
            snapshot(&cluster, SiteId(2), now)
        );
        cluster.shutdown();
        drop(cluster);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tuple_wire_round_trip(vals in proptest::collection::vec(value_strategy(), 0..12)) {
        let t = Tuple::new(vals);
        let mut enc = harbor_common::codec::Encoder::new();
        t.write_wire(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = harbor_common::codec::Decoder::new(&bytes);
        let back = Tuple::read_wire(&mut dec).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn expr_wire_round_trip(e in expr_strategy()) {
        let bytes = e.to_vec();
        let back = Expr::from_slice(&bytes).unwrap();
        prop_assert_eq!(back, e);
    }

    #[test]
    fn visibility_matches_reference(
        ins in 1u64..100,
        deleted in proptest::option::of(1u64..100),
        t in 0u64..120,
    ) {
        let del = deleted.map(Timestamp).unwrap_or(Timestamp::ZERO);
        let visible = visible_at(Timestamp(ins), del, Timestamp(t));
        // Reference: inserted at ins, removed at `deleted` (if any).
        let reference = t >= ins && deleted.map(|d| t < d).unwrap_or(true);
        prop_assert_eq!(visible, reference);
    }
}

fn rand_suffix() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .subsec_nanos() as u64
}

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i32>().prop_map(Value::Int32),
        any::<i64>().prop_map(Value::Int64),
        (0u64..u64::MAX).prop_map(|v| Value::Time(Timestamp(v))),
        "[a-z]{0,12}".prop_map(Value::Str),
    ]
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0usize..8).prop_map(Expr::Col),
        value_strategy().prop_map(Expr::Lit),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.eq(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.lt(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.add(b)),
            inner.clone().prop_map(|a| a.not()),
        ]
    })
}
