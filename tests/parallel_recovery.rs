//! The segment-parallel, multi-buddy Phase 2 (§4.2 ranges + §5.5
//! failover + pipelined apply):
//!
//! * a recovery buddy dies mid-stream and its unfinished ranges are
//!   reassigned to a surviving alternate without restarting recovery;
//! * the recovering site dies after Phase 2 and the retry resumes from
//!   the per-object checkpoint under the parallel configuration;
//! * serial and parallel Phase 2 produce byte-identical version
//!   histories, including under concurrent update load.

use harbor::{Cluster, ClusterConfig, RecoveryConfig, RecoveryFailPoint, TableSpec};
use harbor_common::{SiteId, StorageConfig, Timestamp, Value};
use harbor_dist::ProtocolKind;
use std::path::PathBuf;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("harbor-parallel-recovery-tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Three workers, everything replicated, one page per segment so modest
/// fills span many segments (and thus many Phase-2 ranges).
fn three_worker_config() -> ClusterConfig {
    let mut cfg = ClusterConfig::new(ProtocolKind::Opt3pc, 3);
    cfg.storage = StorageConfig::for_tests();
    cfg.storage.segment_pages = 1;
    cfg.tables = vec![TableSpec::small("sales")];
    cfg
}

fn row(id: i64, v: i32) -> Vec<Value> {
    vec![Value::Int64(id), Value::Int32(v)]
}

fn fill(cluster: &Cluster, from: i64, to: i64) {
    for id in from..to {
        cluster.insert_one("sales", row(id, id as i32)).unwrap();
    }
}

fn count_at(cluster: &Cluster, site: SiteId) -> usize {
    let e = cluster.engine(site).unwrap();
    let def = e.table_def("sales").unwrap();
    let now = cluster.coordinator().authority().now().prev();
    let mut scan = harbor_exec::SeqScan::new(
        e.pool().clone(),
        def.id,
        harbor_exec::ReadMode::Historical(now),
    )
    .unwrap();
    harbor_exec::collect(&mut scan).unwrap().len()
}

/// Every version a site holds, committed or deleted, as
/// `(id, v, insert_ts, delete_ts)` sorted — the strictest equivalence
/// two replicas can have short of physical page layout.
fn versions_at(cluster: &Cluster, site: SiteId) -> Vec<(i64, i64, u64, u64)> {
    let e = cluster.engine(site).unwrap();
    let def = e.table_def("sales").unwrap();
    let mut scan =
        harbor_exec::SeqScan::new(e.pool().clone(), def.id, harbor_exec::ReadMode::SeeDeleted)
            .unwrap();
    let mut out: Vec<(i64, i64, u64, u64)> = harbor_exec::collect(&mut scan)
        .unwrap()
        .iter()
        .map(|t| {
            (
                t.get(2).as_i64().unwrap(),
                t.get(3).as_i64().unwrap(),
                t.get(0).as_time().unwrap().0,
                t.get(1).as_time().unwrap().0,
            )
        })
        .collect();
    out.sort_unstable();
    out
}

/// A buddy whose server dies *mid-Phase-2* (its placement entry still
/// lists it as live) must have its unfetched ranges handed to the
/// surviving alternate replica (§5.5.2) rather than failing recovery.
#[test]
fn buddy_death_mid_phase2_reassigns_ranges() {
    let dir = temp_dir("buddy-death");
    let cluster = Cluster::build(&dir, three_worker_config()).unwrap();
    fill(&cluster, 0, 50);
    for site in cluster.worker_sites() {
        cluster.engine(site).unwrap().checkpoint().unwrap();
    }
    let victim = SiteId(1);
    cluster.crash_worker(victim).unwrap();
    // Enough catch-up volume to span several one-page segments, so the
    // ranged Phase 2 derives multiple per-segment recovery queries.
    fill(&cluster, 50, 500);
    // Kill the primary buddy's server without declaring it down: the
    // recovery plan still offers SiteId(2) first, so the parallel Phase 2
    // must detect the disconnect and requeue its ranges onto SiteId(3).
    let buddy = SiteId(2);
    cluster.worker(buddy).unwrap().crash();
    // One-page segments carry little volume each; drop the page floor so
    // the ranged Phase 2 still splits the window across buddies.
    let report = cluster
        .recover_worker_harbor_with(
            victim,
            RecoveryConfig {
                min_range_pages: 1,
                ..RecoveryConfig::default()
            },
        )
        .unwrap();
    assert!(
        report.ranges_fetched() >= 2,
        "expected multiple Phase-2 ranges, got {}",
        report.ranges_fetched()
    );
    assert!(
        report.ranges_reassigned() >= 1,
        "the dead buddy's range was never reassigned"
    );
    assert_eq!(count_at(&cluster, victim), 500);
    assert_eq!(
        versions_at(&cluster, victim),
        versions_at(&cluster, SiteId(3)),
        "victim diverged from the alternate that served its recovery"
    );
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The recovering site dies right after the parallel Phase 2; the retry
/// must resume from the per-object checkpoint instead of re-copying.
#[test]
fn parallel_phase2_resumes_from_object_checkpoint() {
    let dir = temp_dir("parallel-resume");
    let cluster = Cluster::build(&dir, three_worker_config()).unwrap();
    fill(&cluster, 0, 40);
    for site in cluster.worker_sites() {
        cluster.engine(site).unwrap().checkpoint().unwrap();
    }
    fill(&cluster, 40, 80);
    let victim = SiteId(1);
    cluster.crash_worker(victim).unwrap();
    fill(&cluster, 80, 120);
    let err = cluster
        .recover_worker_harbor_with(
            victim,
            RecoveryConfig {
                fail_point: RecoveryFailPoint::AfterPhase2,
                ..RecoveryConfig::default()
            },
        )
        .unwrap_err();
    assert!(err.to_string().contains("injected"));
    assert!(cluster.is_crashed(victim));
    fill(&cluster, 120, 140);
    let report = cluster.recover_worker_harbor(victim).unwrap();
    assert!(
        report.objects[0].checkpoint > Timestamp(40),
        "resumed from the recovery-time object checkpoint"
    );
    assert!(
        report.tuples_copied() <= 30,
        "copied {} tuples; expected only the post-attempt-1 delta",
        report.tuples_copied()
    );
    assert_eq!(count_at(&cluster, victim), 140);
    assert_eq!(
        versions_at(&cluster, victim),
        versions_at(&cluster, SiteId(2))
    );
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Serial and parallel Phase 2 must be observationally identical: same
/// final version history on every replica, even with writers running
/// throughout recovery, and with no locks leaked by the lock-free
/// historical catch-up queries.
#[test]
fn parallel_matches_serial_under_concurrent_load() {
    for parallel in [false, true] {
        let dir = temp_dir(&format!("equivalence-{parallel}"));
        let cluster = std::sync::Arc::new(Cluster::build(&dir, three_worker_config()).unwrap());
        fill(&cluster, 0, 60);
        for site in cluster.worker_sites() {
            cluster.engine(site).unwrap().checkpoint().unwrap();
        }
        let victim = SiteId(1);
        cluster.crash_worker(victim).unwrap();
        fill(&cluster, 60, 200);
        // Historical updates while the victim is down: deletion pairs the
        // Phase-2 SELECT+UPDATE ranges must carry over.
        for k in 0..30 {
            cluster
                .run_txn(vec![harbor_workload::update_by_key_request(
                    "sales",
                    k,
                    1_000 + k as i32,
                )])
                .unwrap();
        }
        // Writers stay busy during recovery itself (inserts and updates),
        // exercising Phase 3's forwarded-traffic handoff on top.
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writers: Vec<_> = (0..2)
            .map(|w| {
                let cluster = cluster.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut i = 1_000_000 + w * 100_000i64;
                    while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                        let _ = cluster.insert_one("sales", row(i, 0));
                        let _ = cluster.run_txn(vec![harbor_workload::update_by_key_request(
                            "sales",
                            30 + (i % 30),
                            i as i32,
                        )]);
                        i += 1;
                    }
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(20));
        let report = cluster
            .recover_worker_harbor_with(
                victim,
                RecoveryConfig {
                    parallel_segments: parallel,
                    ..RecoveryConfig::default()
                },
            )
            .unwrap();
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
        for w in writers {
            w.join().unwrap();
        }
        if parallel {
            assert!(report.ranges_fetched() >= 1);
        } else {
            assert_eq!(report.ranges_fetched(), 0, "serial mode must not range");
        }
        // Strict version-history equivalence across all three replicas.
        let reference = versions_at(&cluster, victim);
        assert!(!reference.is_empty());
        for site in [SiteId(2), SiteId(3)] {
            assert_eq!(
                reference,
                versions_at(&cluster, site),
                "parallel={parallel}: {site:?} diverged from the recovered victim"
            );
        }
        // The historical catch-up queries never lock (§5.3): nothing may
        // remain in any survivor's lock table after recovery.
        for site in [SiteId(2), SiteId(3)] {
            assert_eq!(
                cluster.engine(site).unwrap().locks().held_count(),
                0,
                "parallel={parallel}: recovery leaked locks on {site:?}"
            );
        }
        cluster.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
