//! In-memory transport: crossbeam-channel pipes with the same semantics as
//! the TCP transport (framing, blocking, close-as-failure), plus optional
//! injected per-message latency to model the paper's LAN in deterministic
//! benchmarks.

use crate::{closed, Channel, Listener, Transport};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use harbor_common::{DbError, DbResult, Metrics};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

type Frame = Vec<u8>;

struct Registry {
    listeners: HashMap<String, Sender<InMemChannel>>,
}

/// A process-local "network" of named endpoints.
pub struct InMemNetwork {
    registry: Arc<Mutex<Registry>>,
    metrics: Metrics,
    /// Injected one-way latency per message (None = instantaneous).
    latency: Option<Duration>,
    /// Emulated link bandwidth in bytes/second: every `send` additionally
    /// sleeps `len / bandwidth`, charging wire time proportional to frame
    /// size (None = infinite bandwidth).
    bandwidth: Option<u64>,
}

impl InMemNetwork {
    pub fn new(metrics: Metrics) -> Self {
        InMemNetwork {
            registry: Arc::new(Mutex::new(Registry {
                listeners: HashMap::new(),
            })),
            metrics,
            latency: None,
            bandwidth: None,
        }
    }

    /// A network where every `send` sleeps `latency` first, modelling link
    /// delay (the figure harnesses use this to restore the paper's
    /// network/disk cost ratio).
    pub fn with_latency(metrics: Metrics, latency: Duration) -> Self {
        InMemNetwork {
            latency: Some(latency),
            ..InMemNetwork::new(metrics)
        }
    }

    /// A network with both link delay and finite bandwidth: each `send`
    /// sleeps `latency + frame_len / bytes_per_sec`, so bulk transfers
    /// (e.g. recovery catch-up scans) pay wire time proportional to the
    /// bytes shipped — each channel pair models its own full-duplex link,
    /// as on the paper's switched LAN.
    pub fn with_link(metrics: Metrics, latency: Duration, bytes_per_sec: u64) -> Self {
        InMemNetwork {
            latency: Some(latency),
            bandwidth: Some(bytes_per_sec.max(1)),
            ..InMemNetwork::new(metrics)
        }
    }

    /// Forcibly unbinds an address (crash simulation: the site's listener
    /// vanishes; established channels die when their owner drops them).
    pub fn unbind(&self, addr: &str) {
        self.registry.lock().listeners.remove(addr);
    }
}

impl Transport for InMemNetwork {
    fn listen(&self, addr: &str) -> DbResult<Box<dyn Listener>> {
        let (tx, rx) = unbounded();
        let mut reg = self.registry.lock();
        if reg.listeners.contains_key(addr) {
            return Err(DbError::net(format!("address {addr} already bound")));
        }
        reg.listeners.insert(addr.to_string(), tx);
        Ok(Box::new(InMemListener {
            addr: addr.to_string(),
            inbound: rx,
            registry: self.registry.clone(),
        }))
    }

    fn connect(&self, addr: &str) -> DbResult<Box<dyn Channel>> {
        let tx = {
            let reg = self.registry.lock();
            reg.listeners
                .get(addr)
                .cloned()
                .ok_or_else(|| DbError::net(format!("no listener at {addr}")))?
        };
        let (a_tx, a_rx) = unbounded::<Frame>();
        let (b_tx, b_rx) = unbounded::<Frame>();
        let server_side = InMemChannel {
            peer: "client".to_string(),
            tx: b_tx,
            rx: a_rx,
            metrics: self.metrics.clone(),
            latency: self.latency,
            bandwidth: self.bandwidth,
        };
        let client_side = InMemChannel {
            peer: addr.to_string(),
            tx: a_tx,
            rx: b_rx,
            metrics: self.metrics.clone(),
            latency: self.latency,
            bandwidth: self.bandwidth,
        };
        tx.send(server_side)
            .map_err(|_| DbError::net(format!("listener at {addr} is gone")))?;
        Ok(Box::new(client_side))
    }
}

struct InMemListener {
    addr: String,
    inbound: Receiver<InMemChannel>,
    registry: Arc<Mutex<Registry>>,
}

impl Listener for InMemListener {
    fn accept(&self) -> DbResult<Box<dyn Channel>> {
        self.inbound
            .recv()
            .map(|c| Box::new(c) as Box<dyn Channel>)
            .map_err(|_| DbError::net("listener closed"))
    }

    fn accept_timeout(&self, timeout: Duration) -> DbResult<Option<Box<dyn Channel>>> {
        match self.inbound.recv_timeout(timeout) {
            Ok(c) => Ok(Some(Box::new(c))),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(DbError::net("listener closed")),
        }
    }

    fn local_addr(&self) -> String {
        self.addr.clone()
    }
}

impl Drop for InMemListener {
    fn drop(&mut self) {
        self.registry.lock().listeners.remove(&self.addr);
    }
}

struct InMemChannel {
    peer: String,
    tx: Sender<Frame>,
    rx: Receiver<Frame>,
    metrics: Metrics,
    latency: Option<Duration>,
    bandwidth: Option<u64>,
}

impl Channel for InMemChannel {
    fn send(&mut self, frame: &[u8]) -> DbResult<()> {
        let mut wire = self.latency.unwrap_or(Duration::ZERO);
        if let Some(bps) = self.bandwidth {
            wire += Duration::from_secs_f64((frame.len() as u64 + 4) as f64 / bps as f64);
        }
        if wire > Duration::ZERO {
            std::thread::sleep(wire);
        }
        self.tx
            .send(frame.to_vec())
            .map_err(|_| closed(&self.peer))?;
        self.metrics.add_messages_sent(1);
        self.metrics.add_bytes_sent(frame.len() as u64 + 4);
        Ok(())
    }

    fn recv(&mut self) -> DbResult<Vec<u8>> {
        self.rx.recv().map_err(|_| closed(&self.peer))
    }

    fn recv_timeout(&mut self, timeout: Duration) -> DbResult<Option<Vec<u8>>> {
        match self.rx.recv_timeout(timeout) {
            Ok(f) => Ok(Some(f)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(closed(&self.peer)),
        }
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}
