//! Networking for the HARBOR reproduction.
//!
//! The thesis implementation is a thread-per-connection client/server over
//! TCP sockets (§6.1.6); this crate reproduces that model behind a
//! [`Transport`] abstraction with two interchangeable implementations:
//!
//! * [`tcp::TcpTransport`] — real `std::net` sockets (loopback in tests,
//!   any LAN in principle);
//! * [`inmem::InMemNetwork`] — crossbeam-channel pipes with optional
//!   injected per-message latency, for deterministic tests and for figure
//!   harnesses that model the paper's 85 Mb/s LAN.
//!
//! Failure detection is "the detection of an abruptly closed TCP socket
//! connection as a signal for failure" (§5.5.1): both transports surface a
//! closed peer as [`DbError::Net`], and [`DbError::is_disconnect`] is true
//! for it.

pub mod chaos;
pub mod inmem;
pub mod tcp;

pub use chaos::{ChaosConfig, ChaosTransport, FaultKind, FaultRecord};
pub use inmem::InMemNetwork;
pub use tcp::TcpTransport;

use harbor_common::{DbError, DbResult};
use std::time::Duration;

/// One bidirectional, framed, ordered byte channel (a "connection").
pub trait Channel: Send {
    /// Sends one frame. Blocks until handed to the transport.
    fn send(&mut self, frame: &[u8]) -> DbResult<()>;

    /// Sends one pre-framed message: `frame` starts with the 4-byte
    /// little-endian length prefix already in place (see
    /// `Wire::to_framed_vec`). Transports that put the prefix on the wire
    /// verbatim can override this to skip re-framing; the default strips the
    /// prefix and forwards to [`send`](Self::send).
    fn send_framed(&mut self, frame: &[u8]) -> DbResult<()> {
        debug_assert!(frame.len() >= 4, "framed message missing its prefix");
        self.send(&frame[4..])
    }

    /// Receives the next frame, blocking until one arrives or the peer
    /// closes (then `Err` with `is_disconnect() == true`).
    fn recv(&mut self) -> DbResult<Vec<u8>>;

    /// As [`recv`](Self::recv) with a timeout; `Ok(None)` on timeout.
    fn recv_timeout(&mut self, timeout: Duration) -> DbResult<Option<Vec<u8>>>;

    /// Human-readable peer address (diagnostics).
    fn peer(&self) -> String;
}

/// Accepts inbound connections at one address.
pub trait Listener: Send + Sync {
    /// Blocks for the next inbound connection.
    fn accept(&self) -> DbResult<Box<dyn Channel>>;

    /// As [`accept`](Self::accept) with a timeout; `Ok(None)` on timeout.
    fn accept_timeout(&self, timeout: Duration) -> DbResult<Option<Box<dyn Channel>>>;

    fn local_addr(&self) -> String;
}

/// A network: bind listeners, open connections.
pub trait Transport: Send + Sync {
    fn listen(&self, addr: &str) -> DbResult<Box<dyn Listener>>;
    fn connect(&self, addr: &str) -> DbResult<Box<dyn Channel>>;
}

/// Shared error for a peer that went away.
pub(crate) fn closed(peer: &str) -> DbError {
    DbError::net(format!("connection to {peer} closed"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use harbor_common::Metrics;
    use std::sync::Arc;

    /// Exercises one transport implementation through the trait object
    /// surface (both impls must pass identically).
    fn exercise(transport: Arc<dyn Transport>, addr: &str) {
        let listener = transport.listen(addr).unwrap();
        let addr_owned = listener.local_addr();
        let t2 = transport.clone();
        let server = std::thread::spawn(move || {
            let mut chan = listener.accept().unwrap();
            loop {
                match chan.recv() {
                    Ok(frame) => {
                        let mut reply = frame.clone();
                        reply.reverse();
                        chan.send(&reply).unwrap();
                    }
                    Err(e) => {
                        assert!(e.is_disconnect());
                        break;
                    }
                }
            }
        });
        {
            let mut client = t2.connect(&addr_owned).unwrap();
            client.send(b"hello").unwrap();
            assert_eq!(client.recv().unwrap(), b"olleh");
            // Large frame crosses any internal buffer boundaries.
            let big = vec![7u8; 1_000_000];
            client.send(&big).unwrap();
            assert_eq!(client.recv().unwrap().len(), big.len());
            // A pre-framed message (length prefix in place) arrives the same
            // as a plain send.
            let mut framed = 5u32.to_le_bytes().to_vec();
            framed.extend_from_slice(b"world");
            client.send_framed(&framed).unwrap();
            assert_eq!(client.recv().unwrap(), b"dlrow");
            // recv_timeout with no pending data returns None.
            assert!(client
                .recv_timeout(Duration::from_millis(30))
                .unwrap()
                .is_none());
        } // client drops: server sees a disconnect
        server.join().unwrap();
    }

    #[test]
    fn tcp_round_trip_and_disconnect() {
        let t: Arc<dyn Transport> = Arc::new(TcpTransport::new(Metrics::new()));
        exercise(t, "127.0.0.1:0");
    }

    #[test]
    fn inmem_round_trip_and_disconnect() {
        let t: Arc<dyn Transport> = Arc::new(InMemNetwork::new(Metrics::new()));
        exercise(t, "site-a");
    }

    #[test]
    fn connect_to_missing_listener_fails() {
        let t = InMemNetwork::new(Metrics::new());
        assert!(t.connect("nobody-home").is_err());
    }

    #[test]
    fn message_metrics_are_counted() {
        let metrics = Metrics::new();
        let t: Arc<dyn Transport> = Arc::new(InMemNetwork::new(metrics.clone()));
        let listener = t.listen("m").unwrap();
        let mut c = t.connect("m").unwrap();
        let mut s = listener.accept().unwrap();
        c.send(b"abc").unwrap();
        assert_eq!(s.recv().unwrap(), b"abc");
        assert_eq!(metrics.messages_sent(), 1);
        assert_eq!(metrics.bytes_sent(), 7, "3 payload bytes + 4 framing");
    }
}
