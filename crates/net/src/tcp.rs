//! TCP transport: length-prefixed frames over `std::net` sockets,
//! thread-per-connection, exactly the shape of the thesis implementation
//! (§6.1.6).

use crate::{closed, Channel, Listener, Transport};
use harbor_common::config::MAX_FRAME_BYTES;
use harbor_common::{DbError, DbResult, Metrics};
use std::collections::VecDeque;
use std::io::{ErrorKind, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Real-socket transport. Addresses are `host:port`; binding to port 0
/// picks a free port (read it back via [`Listener::local_addr`]).
pub struct TcpTransport {
    metrics: Metrics,
}

impl TcpTransport {
    pub fn new(metrics: Metrics) -> Self {
        TcpTransport { metrics }
    }
}

impl Transport for TcpTransport {
    fn listen(&self, addr: &str) -> DbResult<Box<dyn Listener>> {
        let listener =
            TcpListener::bind(addr).map_err(|e| DbError::net(format!("bind {addr}: {e}")))?;
        Ok(Box::new(TcpListenerWrap::new(
            listener,
            self.metrics.clone(),
        )?))
    }

    fn connect(&self, addr: &str) -> DbResult<Box<dyn Channel>> {
        let stream =
            TcpStream::connect(addr).map_err(|e| DbError::net(format!("connect {addr}: {e}")))?;
        stream.set_nodelay(true).ok();
        Ok(Box::new(TcpChannel {
            stream,
            peer: addr.to_string(),
            metrics: self.metrics.clone(),
        }))
    }
}

/// Connections handed from the acceptor thread to `accept`/`accept_timeout`
/// callers, plus the stop latch for shutdown.
struct AcceptState {
    ready: VecDeque<std::io::Result<(TcpStream, SocketAddr)>>,
    stopped: bool,
}

struct AcceptQueue {
    state: Mutex<AcceptState>,
    cv: Condvar,
}

/// A TCP listener with a dedicated blocking acceptor thread.
///
/// The thread sits in a *blocking* `accept` and hands connections over a
/// condvar-signalled queue, so `accept_timeout` is a single timed wait —
/// truly idle between connections — instead of the 1 ms nonblocking
/// sleep-poll it used to be (which burned a core per idle listener). The
/// same queue serves every consumer, so the front door's acceptor shards
/// can all pull from one listener without re-polling the socket.
struct TcpListenerWrap {
    local_addr: SocketAddr,
    queue: Arc<AcceptQueue>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    metrics: Metrics,
}

impl TcpListenerWrap {
    fn new(listener: TcpListener, metrics: Metrics) -> DbResult<Self> {
        let local_addr = listener
            .local_addr()
            .map_err(|e| DbError::net(format!("local_addr: {e}")))?;
        let queue = Arc::new(AcceptQueue {
            state: Mutex::new(AcceptState {
                ready: VecDeque::new(),
                stopped: false,
            }),
            cv: Condvar::new(),
        });
        let q = Arc::clone(&queue);
        let acceptor = std::thread::Builder::new()
            .name("tcp-acceptor".into())
            .spawn(move || loop {
                let got = listener.accept();
                let mut st = q.state.lock().unwrap_or_else(|p| p.into_inner());
                if st.stopped {
                    // Shutdown wake-up (or a late connection during drop):
                    // discard and exit; the listener closes with this thread.
                    return;
                }
                let fatal = got.is_err();
                if fatal {
                    // Surface the error to one consumer, close the listener
                    // for the rest; a broken listener must not spin this
                    // loop hot.
                    st.stopped = true;
                }
                st.ready.push_back(got);
                drop(st);
                q.cv.notify_all();
                if fatal {
                    return;
                }
            })
            .map_err(|e| DbError::net(format!("spawn acceptor: {e}")))?;
        Ok(TcpListenerWrap {
            local_addr,
            queue,
            acceptor: Some(acceptor),
            metrics,
        })
    }

    fn wrap(&self, stream: TcpStream, peer: SocketAddr) -> Box<dyn Channel> {
        stream.set_nodelay(true).ok();
        Box::new(TcpChannel {
            stream,
            peer: peer.to_string(),
            metrics: self.metrics.clone(),
        })
    }

    fn take_ready(
        &self,
        got: std::io::Result<(TcpStream, SocketAddr)>,
    ) -> DbResult<Box<dyn Channel>> {
        match got {
            Ok((stream, peer)) => Ok(self.wrap(stream, peer)),
            Err(e) => Err(DbError::net(format!("accept: {e}"))),
        }
    }
}

impl Listener for TcpListenerWrap {
    fn accept(&self) -> DbResult<Box<dyn Channel>> {
        let mut st = self.queue.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(got) = st.ready.pop_front() {
                drop(st);
                return self.take_ready(got);
            }
            if st.stopped {
                return Err(DbError::net("accept: listener closed"));
            }
            st = self.queue.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn accept_timeout(&self, timeout: Duration) -> DbResult<Option<Box<dyn Channel>>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.queue.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(got) = st.ready.pop_front() {
                drop(st);
                return self.take_ready(got).map(Some);
            }
            if st.stopped {
                return Err(DbError::net("accept: listener closed"));
            }
            let now = std::time::Instant::now();
            let Some(left) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return Ok(None);
            };
            let (guard, _timed_out) = self
                .queue
                .cv
                .wait_timeout(st, left)
                .unwrap_or_else(|p| p.into_inner());
            st = guard;
        }
    }

    fn local_addr(&self) -> String {
        self.local_addr.to_string()
    }
}

impl Drop for TcpListenerWrap {
    fn drop(&mut self) {
        {
            let mut st = self.queue.state.lock().unwrap_or_else(|p| p.into_inner());
            st.stopped = true;
        }
        self.queue.cv.notify_all();
        // The acceptor thread is parked in a blocking `accept`; a self-connect
        // is the portable way to wake it so it can observe `stopped` and exit.
        let mut target = self.local_addr;
        if target.ip().is_unspecified() {
            target.set_ip(std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST));
        }
        let woke = TcpStream::connect_timeout(&target, Duration::from_millis(250)).is_ok();
        if let Some(h) = self.acceptor.take() {
            if woke {
                h.join().ok();
            }
            // If the wake-up connect failed (firewalled loopback, exhausted
            // fds) the thread is left parked rather than hanging this drop;
            // it exits on the next connection or at process end.
        }
    }
}

struct TcpChannel {
    stream: TcpStream,
    peer: String,
    metrics: Metrics,
}

impl TcpChannel {
    /// Reads a frame. `first` is a header byte already consumed by a
    /// timed-out poll (see `recv_timeout`): the poll only ever times out
    /// *between* frames, never mid-frame, so the stream cannot desync.
    fn read_frame(&mut self, first: Option<u8>) -> DbResult<Vec<u8>> {
        let mut len = [0u8; 4];
        let rest = match first {
            Some(b) => {
                len[0] = b;
                &mut len[1..]
            }
            None => &mut len[..],
        };
        match self.stream.read_exact(rest) {
            Ok(()) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::UnexpectedEof
                        | ErrorKind::ConnectionReset
                        | ErrorKind::ConnectionAborted
                        | ErrorKind::BrokenPipe
                ) =>
            {
                return Err(closed(&self.peer));
            }
            Err(e) => return Err(e.into()),
        }
        let len = u32::from_le_bytes(len) as usize;
        if len > MAX_FRAME_BYTES {
            // A hostile or corrupt 4-byte prefix must not size an allocation
            // (it can claim up to 4 GiB). The stream is desynced once the
            // prefix is untrusted, so this connection is done: corrupt
            // framing, not a timeout and not site death.
            return Err(DbError::corrupt(format!(
                "frame length {len} from {} exceeds MAX_FRAME_BYTES ({MAX_FRAME_BYTES})",
                self.peer
            )));
        }
        let mut buf = vec![0u8; len];
        self.stream
            .read_exact(&mut buf)
            .map_err(|_| closed(&self.peer))?;
        Ok(buf)
    }

    fn map_write_err(&self, e: std::io::Error) -> DbError {
        if matches!(
            e.kind(),
            ErrorKind::BrokenPipe | ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted
        ) {
            closed(&self.peer)
        } else {
            e.into()
        }
    }

    /// Writes header and payload with vectored I/O: the common case is one
    /// syscall for the whole frame instead of two `write_all` calls (which
    /// also defeats Nagle-off by emitting a 4-byte packet per message).
    fn write_frame_parts(&mut self, header: &[u8], payload: &[u8]) -> std::io::Result<()> {
        let mut slices = [IoSlice::new(header), IoSlice::new(payload)];
        let mut bufs: &mut [IoSlice<'_>] = &mut slices;
        let mut remaining = header.len() + payload.len();
        while remaining > 0 {
            let n = match self.stream.write_vectored(bufs) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        ErrorKind::WriteZero,
                        "socket accepted no bytes",
                    ))
                }
                Ok(n) => n,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            remaining -= n;
            if remaining > 0 {
                IoSlice::advance_slices(&mut bufs, n);
            }
        }
        Ok(())
    }
}

impl Channel for TcpChannel {
    fn send(&mut self, frame: &[u8]) -> DbResult<()> {
        let len = (frame.len() as u32).to_le_bytes();
        match self.write_frame_parts(&len, frame) {
            Ok(()) => {
                self.metrics.add_messages_sent(1);
                self.metrics.add_bytes_sent(frame.len() as u64 + 4);
                Ok(())
            }
            Err(e) => Err(self.map_write_err(e)),
        }
    }

    fn send_framed(&mut self, frame: &[u8]) -> DbResult<()> {
        debug_assert!(frame.len() >= 4, "framed message missing its prefix");
        match self.stream.write_all(frame) {
            Ok(()) => {
                self.metrics.add_messages_sent(1);
                self.metrics.add_bytes_sent(frame.len() as u64);
                Ok(())
            }
            Err(e) => Err(self.map_write_err(e)),
        }
    }

    fn recv(&mut self) -> DbResult<Vec<u8>> {
        self.stream.set_read_timeout(None).ok();
        self.read_frame(None)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> DbResult<Option<Vec<u8>>> {
        // Time out only on the first header byte; once anything of a frame
        // has arrived, block for the rest (the sender wrote it whole).
        self.stream.set_read_timeout(Some(timeout)).ok();
        let mut first = [0u8; 1];
        let got = self.stream.read_exact(&mut first);
        self.stream.set_read_timeout(None).ok();
        match got {
            Ok(()) => Ok(Some(self.read_frame(Some(first[0]))?)),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => Ok(None),
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::UnexpectedEof
                        | ErrorKind::ConnectionReset
                        | ErrorKind::ConnectionAborted
                        | ErrorKind::BrokenPipe
                ) =>
            {
                Err(closed(&self.peer))
            }
            Err(e) => Err(e.into()),
        }
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bind() -> (TcpTransport, Box<dyn Listener>, String) {
        let t = TcpTransport::new(Metrics::new());
        let l = t.listen("127.0.0.1:0").unwrap();
        let addr = l.local_addr();
        (t, l, addr)
    }

    #[test]
    fn hostile_length_prefix_never_allocates() {
        let (_t, l, addr) = bind();
        // A raw socket that claims a 4 GiB frame: the receiver must reject
        // the prefix as corrupt framing instead of sizing a buffer with it.
        let mut raw = TcpStream::connect(&addr).unwrap();
        raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
        raw.flush().unwrap();
        let mut server = l.accept().unwrap();
        let err = server.recv().expect_err("oversized frame must be refused");
        assert!(err.is_corrupt(), "got {err}");
        assert!(err.to_string().contains("MAX_FRAME_BYTES"));
        // A frame just over the cap is refused too; at the cap it would be
        // allowed (the conformance tests push 1 MiB frames through).
        let mut raw = TcpStream::connect(&addr).unwrap();
        raw.write_all(&((MAX_FRAME_BYTES as u32 + 1).to_le_bytes()))
            .unwrap();
        let mut server = l.accept().unwrap();
        assert!(server.recv().unwrap_err().is_corrupt());
    }

    #[test]
    fn accept_timeout_is_a_timed_wait_not_a_poll() {
        let (_t, l, addr) = bind();
        // Idle listener: returns None after the timeout.
        assert!(l
            .accept_timeout(Duration::from_millis(20))
            .unwrap()
            .is_none());
        // Pending connection: surfaced through the acceptor queue.
        let client = TcpStream::connect(&addr).unwrap();
        let got = l.accept_timeout(Duration::from_secs(5)).unwrap();
        assert!(got.is_some());
        drop(client);
    }

    #[test]
    fn dropping_listener_stops_acceptor_thread() {
        let (_t, l, addr) = bind();
        assert!(l
            .accept_timeout(Duration::from_millis(5))
            .unwrap()
            .is_none());
        drop(l);
        // The port is released once the acceptor thread exits.
        assert!(
            TcpStream::connect_timeout(&addr.parse().unwrap(), Duration::from_millis(250)).is_err()
        );
    }
}
