//! TCP transport: length-prefixed frames over `std::net` sockets,
//! thread-per-connection, exactly the shape of the thesis implementation
//! (§6.1.6).

use crate::{closed, Channel, Listener, Transport};
use harbor_common::{DbError, DbResult, Metrics};
use std::io::{ErrorKind, IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// Real-socket transport. Addresses are `host:port`; binding to port 0
/// picks a free port (read it back via [`Listener::local_addr`]).
pub struct TcpTransport {
    metrics: Metrics,
}

impl TcpTransport {
    pub fn new(metrics: Metrics) -> Self {
        TcpTransport { metrics }
    }
}

impl Transport for TcpTransport {
    fn listen(&self, addr: &str) -> DbResult<Box<dyn Listener>> {
        let listener =
            TcpListener::bind(addr).map_err(|e| DbError::net(format!("bind {addr}: {e}")))?;
        Ok(Box::new(TcpListenerWrap {
            listener,
            metrics: self.metrics.clone(),
        }))
    }

    fn connect(&self, addr: &str) -> DbResult<Box<dyn Channel>> {
        let stream =
            TcpStream::connect(addr).map_err(|e| DbError::net(format!("connect {addr}: {e}")))?;
        stream.set_nodelay(true).ok();
        Ok(Box::new(TcpChannel {
            stream,
            peer: addr.to_string(),
            metrics: self.metrics.clone(),
        }))
    }
}

struct TcpListenerWrap {
    listener: TcpListener,
    metrics: Metrics,
}

impl Listener for TcpListenerWrap {
    fn accept(&self) -> DbResult<Box<dyn Channel>> {
        let (stream, peer) = self
            .listener
            .accept()
            .map_err(|e| DbError::net(format!("accept: {e}")))?;
        stream.set_nodelay(true).ok();
        Ok(Box::new(TcpChannel {
            stream,
            peer: peer.to_string(),
            metrics: self.metrics.clone(),
        }))
    }

    fn accept_timeout(&self, timeout: Duration) -> DbResult<Option<Box<dyn Channel>>> {
        self.listener.set_nonblocking(true).ok();
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    self.listener.set_nonblocking(false).ok();
                    stream.set_nodelay(true).ok();
                    return Ok(Some(Box::new(TcpChannel {
                        stream,
                        peer: peer.to_string(),
                        metrics: self.metrics.clone(),
                    })));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if std::time::Instant::now() >= deadline {
                        self.listener.set_nonblocking(false).ok();
                        return Ok(None);
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => {
                    self.listener.set_nonblocking(false).ok();
                    return Err(DbError::net(format!("accept: {e}")));
                }
            }
        }
    }

    fn local_addr(&self) -> String {
        self.listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_default()
    }
}

struct TcpChannel {
    stream: TcpStream,
    peer: String,
    metrics: Metrics,
}

impl TcpChannel {
    /// Reads a frame. `first` is a header byte already consumed by a
    /// timed-out poll (see `recv_timeout`): the poll only ever times out
    /// *between* frames, never mid-frame, so the stream cannot desync.
    fn read_frame(&mut self, first: Option<u8>) -> DbResult<Vec<u8>> {
        let mut len = [0u8; 4];
        let rest = match first {
            Some(b) => {
                len[0] = b;
                &mut len[1..]
            }
            None => &mut len[..],
        };
        match self.stream.read_exact(rest) {
            Ok(()) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::UnexpectedEof
                        | ErrorKind::ConnectionReset
                        | ErrorKind::ConnectionAborted
                        | ErrorKind::BrokenPipe
                ) =>
            {
                return Err(closed(&self.peer));
            }
            Err(e) => return Err(e.into()),
        }
        let len = u32::from_le_bytes(len) as usize;
        let mut buf = vec![0u8; len];
        self.stream
            .read_exact(&mut buf)
            .map_err(|_| closed(&self.peer))?;
        Ok(buf)
    }

    fn map_write_err(&self, e: std::io::Error) -> DbError {
        if matches!(
            e.kind(),
            ErrorKind::BrokenPipe | ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted
        ) {
            closed(&self.peer)
        } else {
            e.into()
        }
    }

    /// Writes header and payload with vectored I/O: the common case is one
    /// syscall for the whole frame instead of two `write_all` calls (which
    /// also defeats Nagle-off by emitting a 4-byte packet per message).
    fn write_frame_parts(&mut self, header: &[u8], payload: &[u8]) -> std::io::Result<()> {
        let mut slices = [IoSlice::new(header), IoSlice::new(payload)];
        let mut bufs: &mut [IoSlice<'_>] = &mut slices;
        let mut remaining = header.len() + payload.len();
        while remaining > 0 {
            let n = match self.stream.write_vectored(bufs) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        ErrorKind::WriteZero,
                        "socket accepted no bytes",
                    ))
                }
                Ok(n) => n,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            remaining -= n;
            if remaining > 0 {
                IoSlice::advance_slices(&mut bufs, n);
            }
        }
        Ok(())
    }
}

impl Channel for TcpChannel {
    fn send(&mut self, frame: &[u8]) -> DbResult<()> {
        let len = (frame.len() as u32).to_le_bytes();
        match self.write_frame_parts(&len, frame) {
            Ok(()) => {
                self.metrics.add_messages_sent(1);
                self.metrics.add_bytes_sent(frame.len() as u64 + 4);
                Ok(())
            }
            Err(e) => Err(self.map_write_err(e)),
        }
    }

    fn send_framed(&mut self, frame: &[u8]) -> DbResult<()> {
        debug_assert!(frame.len() >= 4, "framed message missing its prefix");
        match self.stream.write_all(frame) {
            Ok(()) => {
                self.metrics.add_messages_sent(1);
                self.metrics.add_bytes_sent(frame.len() as u64);
                Ok(())
            }
            Err(e) => Err(self.map_write_err(e)),
        }
    }

    fn recv(&mut self) -> DbResult<Vec<u8>> {
        self.stream.set_read_timeout(None).ok();
        self.read_frame(None)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> DbResult<Option<Vec<u8>>> {
        // Time out only on the first header byte; once anything of a frame
        // has arrived, block for the rest (the sender wrote it whole).
        self.stream.set_read_timeout(Some(timeout)).ok();
        let mut first = [0u8; 1];
        let got = self.stream.read_exact(&mut first);
        self.stream.set_read_timeout(None).ok();
        match got {
            Ok(()) => Ok(Some(self.read_frame(Some(first[0]))?)),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => Ok(None),
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::UnexpectedEof
                        | ErrorKind::ConnectionReset
                        | ErrorKind::ConnectionAborted
                        | ErrorKind::BrokenPipe
                ) =>
            {
                Err(closed(&self.peer))
            }
            Err(e) => Err(e.into()),
        }
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}
