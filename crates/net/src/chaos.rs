//! Deterministic fault injection for any [`Transport`].
//!
//! [`ChaosTransport`] decorates an inner transport (InMem or TCP) and
//! perturbs every frame a wrapped channel *sends* according to a seeded
//! fault plan: message drop, duplicate delivery, extra delay, abrupt
//! mid-stream disconnect, and symmetric/asymmetric partitions between site
//! groups. Every decision is a pure function of `(seed, link, ordinal,
//! seq)` where `ordinal` numbers the channels opened on a directed link in
//! creation order and `seq` is a per-channel logical event counter — never
//! of wall-clock time — so the same seed replays the identical fault
//! trace, and a failing soak seed reproduces from the log. The ordinal
//! matters: the commit protocols open a fresh channel per transaction, and
//! without it every transaction would replay the same few-`seq` prefix of
//! its link's plan, so a fault stream that misses in that prefix could
//! never fire at all.
//!
//! Fault semantics on an ordered stream (the transports model TCP, §6.1.6):
//!
//! * **partition** — the frame is silently blackholed and the channel stays
//!   open. The socket never closes, so only a liveness deadline
//!   ([`DbError::SiteUnavailable`]) can detect it — exactly the failure mode
//!   closed-connection detection (§5.5.1) is blind to.
//! * **drop** — the frame is lost *and the link is severed silently*: on a
//!   reliable ordered stream a gap without a reset is unrepresentable (TCP
//!   would retransmit), and letting a scan stream lose a middle batch would
//!   silently corrupt recovery. Drop therefore models "reset with in-flight
//!   loss": the sender learns at its next operation, the receiver sees a
//!   closed peer.
//! * **disconnect** — the link is severed immediately; the send itself
//!   returns a disconnect error. Models "reset without loss".
//! * **delay** — the frame is delivered after an extra seed-derived delay
//!   (≤ `max_delay`).
//! * **duplicate** — the frame is delivered twice. The RPC layer above
//!   assumes TCP's exactly-once framing, so soak profiles keep this off and
//!   it is exercised at this layer's unit tests; the sanctioned source of
//!   duplicates in the system is the idempotent-read retry path.
//!
//! Identity: partitions are expressed between *site groups*, so the chaos
//! layer must know which site each channel belongs to. Cluster code obtains
//! a per-site view via [`ChaosTransport::for_site`]; on `connect` the
//! wrapper sends one control-plane identity frame (exempt from faults) so
//! the accepting side learns the remote's name too.

use crate::{closed, Channel, Listener, Transport};
use harbor_common::{DbResult, Metrics};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Magic prefix of the control-plane identity frame sent on connect.
const ID_MAGIC: &[u8] = b"HARBOR-CHAOS-ID\x01";

/// How long an accepting side waits for the identity frame before treating
/// the peer as anonymous.
const ID_WAIT: Duration = Duration::from_secs(2);

/// Seeded fault plan. All rates are per-mille (0..=1000) per sent frame.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Seed for every fault decision.
    pub seed: u64,
    /// Probability (‰) that a frame is lost and the link silently severed.
    pub drop_per_mille: u16,
    /// Probability (‰) that a frame is delivered twice.
    pub dup_per_mille: u16,
    /// Probability (‰) that a frame is delayed before delivery.
    pub delay_per_mille: u16,
    /// Upper bound on the injected delay (the actual delay is seed-derived
    /// in `1..=max_delay`).
    pub max_delay: Duration,
    /// Probability (‰) that the link is severed abruptly at a send.
    pub disconnect_per_mille: u16,
}

impl ChaosConfig {
    /// No per-frame faults; partitions and the identity plane still work.
    pub fn quiet(seed: u64) -> Self {
        ChaosConfig {
            seed,
            drop_per_mille: 0,
            dup_per_mille: 0,
            delay_per_mille: 0,
            max_delay: Duration::from_millis(2),
            disconnect_per_mille: 0,
        }
    }

    /// A lossy-LAN profile: occasional loss/resets, frequent small delays.
    pub fn lossy_lan(seed: u64) -> Self {
        ChaosConfig {
            seed,
            drop_per_mille: 5,
            dup_per_mille: 0,
            delay_per_mille: 100,
            max_delay: Duration::from_millis(2),
            disconnect_per_mille: 2,
        }
    }
}

/// What the chaos layer did to one frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    Drop,
    Duplicate,
    Delay(Duration),
    Disconnect,
    PartitionBlocked,
}

/// One entry of the replayable fault trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultRecord {
    /// Directed link, `"src->dst"`.
    pub link: String,
    /// Logical event counter of the faulted frame on its channel.
    pub seq: u64,
    pub kind: FaultKind,
}

impl std::fmt::Display for FaultRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            FaultKind::Drop => write!(f, "drop {} #{}", self.link, self.seq),
            FaultKind::Duplicate => write!(f, "dup {} #{}", self.link, self.seq),
            FaultKind::Delay(d) => {
                write!(f, "delay({}us) {} #{}", d.as_micros(), self.link, self.seq)
            }
            FaultKind::Disconnect => write!(f, "disconnect {} #{}", self.link, self.seq),
            FaultKind::PartitionBlocked => write!(f, "blackhole {} #{}", self.link, self.seq),
        }
    }
}

/// A directed partition between two site groups; `symmetric` blocks both
/// directions.
#[derive(Clone, Debug)]
struct Partition {
    a: BTreeSet<String>,
    b: BTreeSet<String>,
    symmetric: bool,
}

impl Partition {
    fn blocks(&self, src: &str, dst: &str) -> bool {
        if src.is_empty() || dst.is_empty() {
            return false;
        }
        (self.a.contains(src) && self.b.contains(dst))
            || (self.symmetric && self.b.contains(src) && self.a.contains(dst))
    }
}

struct ChaosState {
    cfg: ChaosConfig,
    enabled: AtomicBool,
    partitions: Mutex<Vec<Partition>>,
    trace: Mutex<Vec<FaultRecord>>,
    metrics: Metrics,
    /// Next channel ordinal per directed link. Every channel on a link
    /// samples a *fresh* slice of the fault plan: without this, short-lived
    /// channels (one per transaction in the commit protocols) would replay
    /// the first few `seq` values of the same link forever, and any fault
    /// stream that misses in that prefix could never fire at all.
    link_ordinals: Mutex<HashMap<String, u64>>,
}

impl ChaosState {
    fn blocked(&self, src: &str, dst: &str) -> bool {
        self.partitions.lock().iter().any(|p| p.blocks(src, dst))
    }

    fn next_ordinal(&self, link: &str) -> u64 {
        let mut g = self.link_ordinals.lock();
        let n = g.entry(link.to_string()).or_insert(0);
        let ord = *n;
        *n += 1;
        ord
    }

    fn record(&self, link: &str, seq: u64, kind: FaultKind) {
        self.trace.lock().push(FaultRecord {
            link: link.to_string(),
            seq,
            kind,
        });
    }
}

/// SplitMix64: the standard 64-bit finalizer-style PRNG step. Pure, so fault
/// decisions depend only on `(seed, link, seq)`.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Per-mille draw for fault stream `k` of event `(seed, link, seq)`.
fn draw(seed: u64, link_hash: u64, seq: u64, k: u64) -> u64 {
    splitmix64(seed ^ link_hash.rotate_left(17) ^ seq.wrapping_mul(0x9E3779B97F4A7C15) ^ (k << 56))
}

/// Fault-injecting decorator around any [`Transport`]. Cheap to clone via
/// [`ChaosTransport::for_site`]; all clones share the fault plan, partition
/// set and trace, and double as the control handle (partition/heal/trace).
#[derive(Clone)]
pub struct ChaosTransport {
    inner: Arc<dyn Transport>,
    state: Arc<ChaosState>,
    /// Site name stamped on outbound connections; empty = anonymous.
    identity: String,
}

impl ChaosTransport {
    pub fn new(inner: Arc<dyn Transport>, cfg: ChaosConfig, metrics: Metrics) -> Self {
        ChaosTransport {
            inner,
            state: Arc::new(ChaosState {
                cfg,
                enabled: AtomicBool::new(true),
                partitions: Mutex::new(Vec::new()),
                trace: Mutex::new(Vec::new()),
                metrics,
                link_ordinals: Mutex::new(HashMap::new()),
            }),
            identity: String::new(),
        }
    }

    /// A view of the same chaos network whose outbound connections identify
    /// themselves as `site` (so partitions involving `site` apply to them).
    pub fn for_site(&self, site: &str) -> ChaosTransport {
        ChaosTransport {
            inner: self.inner.clone(),
            state: self.state.clone(),
            identity: site.to_string(),
        }
    }

    /// Globally enables/disables fault injection (identity plumbing stays
    /// active). Disabled sends do not advance event counters.
    pub fn set_enabled(&self, on: bool) {
        self.state.enabled.store(on, Ordering::SeqCst);
    }

    pub fn is_enabled(&self) -> bool {
        self.state.enabled.load(Ordering::SeqCst)
    }

    /// Installs a partition between site groups `a` and `b`. Asymmetric
    /// partitions block only `a → b`; symmetric ones block both directions.
    /// Frames crossing a blocked link are silently blackholed — the channel
    /// never closes, so only liveness deadlines detect the peer.
    pub fn partition(&self, a: &[&str], b: &[&str], symmetric: bool) {
        self.state.partitions.lock().push(Partition {
            a: a.iter().map(|s| s.to_string()).collect(),
            b: b.iter().map(|s| s.to_string()).collect(),
            symmetric,
        });
    }

    /// Removes every installed partition.
    pub fn heal(&self) {
        self.state.partitions.lock().clear();
    }

    /// `true` if any installed partition currently blocks `src → dst`.
    pub fn is_blocked(&self, src: &str, dst: &str) -> bool {
        self.state.blocked(src, dst)
    }

    /// Copy of the fault trace so far.
    pub fn trace(&self) -> Vec<FaultRecord> {
        self.state.trace.lock().clone()
    }

    /// Canonical rendering of the fault trace: one line per fault, sorted by
    /// `(link, seq)` so the rendering is independent of benign cross-channel
    /// interleaving. Two runs of the same seed must produce byte-identical
    /// output.
    pub fn trace_canonical(&self) -> String {
        let mut t = self.trace();
        t.sort_by(|x, y| (&x.link, x.seq).cmp(&(&y.link, y.seq)));
        let mut out = String::new();
        for r in &t {
            out.push_str(&r.to_string());
            out.push('\n');
        }
        out
    }

    pub fn clear_trace(&self) {
        self.state.trace.lock().clear();
    }

    pub fn metrics(&self) -> &Metrics {
        &self.state.metrics
    }
}

impl Transport for ChaosTransport {
    fn listen(&self, addr: &str) -> DbResult<Box<dyn Listener>> {
        let inner = self.inner.listen(addr)?;
        Ok(Box::new(ChaosListener {
            inner,
            state: self.state.clone(),
        }))
    }

    fn connect(&self, addr: &str) -> DbResult<Box<dyn Channel>> {
        let mut chan = self.inner.connect(addr)?;
        // Control-plane identity frame: exempt from faults so the fault plan
        // perturbs the protocol, not the instrumentation. A partitioned pair
        // can still connect — real SYNs may predate the partition; the
        // blackhole applies to every data frame that follows.
        let mut frame = ID_MAGIC.to_vec();
        frame.extend_from_slice(self.identity.as_bytes());
        chan.send(&frame)?;
        Ok(Box::new(ChaosChannel::new(
            chan,
            self.state.clone(),
            self.identity.clone(),
            addr.to_string(),
            None,
        )))
    }
}

struct ChaosListener {
    inner: Box<dyn Listener>,
    state: Arc<ChaosState>,
}

impl ChaosListener {
    fn wrap(&self, mut chan: Box<dyn Channel>) -> DbResult<Box<dyn Channel>> {
        // Learn the remote identity from the preamble. A peer that isn't
        // chaos-wrapped sends data immediately; hand that frame back to the
        // application untouched and treat the peer as anonymous.
        let (remote, pending) = match chan.recv_timeout(ID_WAIT)? {
            Some(frame) if frame.starts_with(ID_MAGIC) => (
                String::from_utf8_lossy(&frame[ID_MAGIC.len()..]).into_owned(),
                None,
            ),
            Some(frame) => (String::new(), Some(frame)),
            None => (String::new(), None),
        };
        Ok(Box::new(ChaosChannel::new(
            chan,
            self.state.clone(),
            self.inner.local_addr(),
            remote,
            pending,
        )))
    }
}

impl Listener for ChaosListener {
    fn accept(&self) -> DbResult<Box<dyn Channel>> {
        let chan = self.inner.accept()?;
        self.wrap(chan)
    }

    fn accept_timeout(&self, timeout: Duration) -> DbResult<Option<Box<dyn Channel>>> {
        match self.inner.accept_timeout(timeout)? {
            Some(chan) => Ok(Some(self.wrap(chan)?)),
            None => Ok(None),
        }
    }

    fn local_addr(&self) -> String {
        self.inner.local_addr()
    }
}

/// What to do with one outbound frame.
enum SendAction {
    /// Forward to the inner channel (`dup` = deliver twice).
    Deliver { dup: bool },
    /// Pretend success without delivering (partition blackhole, or a drop
    /// that also severed the link).
    Swallow,
}

struct ChaosChannel {
    /// `None` once the chaos layer severed the link.
    inner: Option<Box<dyn Channel>>,
    state: Arc<ChaosState>,
    /// Directed link label, `"local->remote"` (empty names = anonymous).
    local: String,
    remote: String,
    link: String,
    link_hash: u64,
    /// Logical event counter; advances once per fault-eligible send.
    seq: u64,
    /// First frame from a non-chaos peer, captured while looking for the
    /// identity preamble.
    pending: Option<Vec<u8>>,
}

impl ChaosChannel {
    fn new(
        inner: Box<dyn Channel>,
        state: Arc<ChaosState>,
        local: String,
        remote: String,
        pending: Option<Vec<u8>>,
    ) -> Self {
        // `link` carries the per-link channel ordinal (`src->dst#n`): the
        // ordinal keys this channel's slice of the fault plan and makes the
        // canonical trace's `(link, seq)` ordering total — two channels on
        // the same directed link never collide on a trace key.
        let link = format!(
            "{}->{}#{}",
            local,
            remote,
            state.next_ordinal(&format!("{}->{}", local, remote))
        );
        let link_hash = fnv1a(&link);
        ChaosChannel {
            inner: Some(inner),
            state,
            local,
            remote,
            link,
            link_hash,
            seq: 0,
            pending,
        }
    }

    fn peer_label(&self) -> String {
        if self.remote.is_empty() {
            match &self.inner {
                Some(c) => c.peer(),
                None => "unknown".to_string(),
            }
        } else {
            self.remote.clone()
        }
    }

    /// Applies the fault plan to one outbound frame: decides its fate,
    /// records the trace/metrics, sleeps injected delays, severs the link on
    /// drop/disconnect.
    fn decide_send(&mut self) -> DbResult<SendAction> {
        if !self.state.enabled.load(Ordering::SeqCst) {
            return Ok(SendAction::Deliver { dup: false });
        }
        let seq = self.seq;
        self.seq += 1;
        if self.state.blocked(&self.local, &self.remote) {
            self.state
                .record(&self.link, seq, FaultKind::PartitionBlocked);
            self.state.metrics.add_chaos_partition_drops(1);
            return Ok(SendAction::Swallow);
        }
        let cfg = &self.state.cfg;
        let hit = |k: u64, per_mille: u16| {
            draw(cfg.seed, self.link_hash, seq, k) % 1000 < per_mille as u64
        };
        if hit(0, cfg.disconnect_per_mille) {
            self.state.record(&self.link, seq, FaultKind::Disconnect);
            self.state.metrics.add_chaos_disconnects(1);
            self.inner = None;
            return Err(closed(&self.peer_label()));
        }
        if hit(1, cfg.drop_per_mille) {
            self.state.record(&self.link, seq, FaultKind::Drop);
            self.state.metrics.add_chaos_drops(1);
            self.inner = None; // loss on an ordered stream ⇒ reset (see module docs)
            return Ok(SendAction::Swallow);
        }
        if hit(2, cfg.delay_per_mille) {
            let span = cfg.max_delay.as_micros().max(1) as u64;
            let micros = draw(cfg.seed, self.link_hash, seq, 3) % span + 1;
            let d = Duration::from_micros(micros);
            self.state.record(&self.link, seq, FaultKind::Delay(d));
            self.state.metrics.add_chaos_delays(1);
            std::thread::sleep(d);
        }
        let dup = hit(4, cfg.dup_per_mille);
        if dup {
            self.state.record(&self.link, seq, FaultKind::Duplicate);
            self.state.metrics.add_chaos_dups(1);
        }
        Ok(SendAction::Deliver { dup })
    }
}

impl Channel for ChaosChannel {
    fn send(&mut self, frame: &[u8]) -> DbResult<()> {
        if self.inner.is_none() {
            return Err(closed(&self.peer_label()));
        }
        match self.decide_send()? {
            SendAction::Swallow => Ok(()),
            SendAction::Deliver { dup } => {
                let inner = self.inner.as_mut().expect("checked above");
                inner.send(frame)?;
                if dup {
                    inner.send(frame)?;
                }
                Ok(())
            }
        }
    }

    fn send_framed(&mut self, frame: &[u8]) -> DbResult<()> {
        if self.inner.is_none() {
            return Err(closed(&self.peer_label()));
        }
        match self.decide_send()? {
            SendAction::Swallow => Ok(()),
            SendAction::Deliver { dup } => {
                let inner = self.inner.as_mut().expect("checked above");
                inner.send_framed(frame)?;
                if dup {
                    inner.send_framed(frame)?;
                }
                Ok(())
            }
        }
    }

    fn recv(&mut self) -> DbResult<Vec<u8>> {
        if let Some(frame) = self.pending.take() {
            return Ok(frame);
        }
        match &mut self.inner {
            Some(c) => c.recv(),
            None => Err(closed(&self.peer_label())),
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> DbResult<Option<Vec<u8>>> {
        if let Some(frame) = self.pending.take() {
            return Ok(Some(frame));
        }
        match &mut self.inner {
            Some(c) => c.recv_timeout(timeout),
            None => Err(closed(&self.peer_label())),
        }
    }

    fn peer(&self) -> String {
        self.peer_label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InMemNetwork;

    type ChaosPair = (
        ChaosTransport,
        Box<dyn Listener>,
        Box<dyn Channel>,
        Box<dyn Channel>,
    );

    fn chaos_pair(cfg: ChaosConfig) -> ChaosPair {
        let base: Arc<dyn Transport> = Arc::new(InMemNetwork::new(Metrics::new()));
        let chaos = ChaosTransport::new(base, cfg, Metrics::new());
        let listener = chaos.listen("site-b").unwrap();
        let client = chaos.for_site("site-a").connect("site-b").unwrap();
        let server = listener.accept().unwrap();
        (chaos, listener, client, server)
    }

    #[test]
    fn identity_preamble_names_the_link() {
        let (_chaos, _l, mut client, mut server) = chaos_pair(ChaosConfig::quiet(1));
        assert_eq!(server.peer(), "site-a");
        client.send(b"ping").unwrap();
        assert_eq!(server.recv().unwrap(), b"ping");
        server.send(b"pong").unwrap();
        assert_eq!(client.recv().unwrap(), b"pong");
    }

    #[test]
    fn partitions_blackhole_without_closing() {
        let (chaos, _l, mut client, mut server) = chaos_pair(ChaosConfig::quiet(2));
        chaos.partition(&["site-a"], &["site-b"], false);
        // a → b blocked: the send "succeeds" but nothing arrives — the
        // liveness-deadline case.
        client.send(b"lost").unwrap();
        assert!(server
            .recv_timeout(Duration::from_millis(30))
            .unwrap()
            .is_none());
        // Asymmetric: b → a still flows.
        server.send(b"back").unwrap();
        assert_eq!(client.recv().unwrap(), b"back");
        // Symmetric blocks both directions.
        chaos.heal();
        chaos.partition(&["site-a"], &["site-b"], true);
        server.send(b"lost2").unwrap();
        assert!(client
            .recv_timeout(Duration::from_millis(30))
            .unwrap()
            .is_none());
        // Healing restores the link without reconnecting.
        chaos.heal();
        client.send(b"alive").unwrap();
        assert_eq!(server.recv().unwrap(), b"alive");
        assert!(chaos.metrics().chaos_partition_drops() >= 2);
        assert!(chaos
            .trace()
            .iter()
            .any(|r| r.kind == FaultKind::PartitionBlocked));
    }

    #[test]
    fn drop_loses_frame_and_severs_link() {
        let mut cfg = ChaosConfig::quiet(3);
        cfg.drop_per_mille = 1000;
        let (chaos, _l, mut client, mut server) = chaos_pair(cfg);
        // The sender is not told at the faulted send itself...
        client.send(b"gone").unwrap();
        // ...but the receiver sees a reset instead of a silent gap, and the
        // sender learns at its next operation.
        assert!(server.recv().unwrap_err().is_disconnect());
        assert!(client.send(b"next").unwrap_err().is_disconnect());
        assert_eq!(chaos.metrics().chaos_drops(), 1);
    }

    #[test]
    fn duplicate_delivers_twice() {
        let mut cfg = ChaosConfig::quiet(4);
        cfg.dup_per_mille = 1000;
        let (chaos, _l, mut client, mut server) = chaos_pair(cfg);
        client.send(b"twice").unwrap();
        assert_eq!(server.recv().unwrap(), b"twice");
        assert_eq!(server.recv().unwrap(), b"twice");
        assert_eq!(chaos.metrics().chaos_dups(), 1);
    }

    #[test]
    fn disconnect_fails_the_send_itself() {
        let mut cfg = ChaosConfig::quiet(5);
        cfg.disconnect_per_mille = 1000;
        let (chaos, _l, mut client, mut server) = chaos_pair(cfg);
        assert!(client.send(b"x").unwrap_err().is_disconnect());
        assert!(server.recv().unwrap_err().is_disconnect());
        assert_eq!(chaos.metrics().chaos_disconnects(), 1);
    }

    #[test]
    fn delays_deliver_late_but_intact() {
        let mut cfg = ChaosConfig::quiet(6);
        cfg.delay_per_mille = 1000;
        cfg.max_delay = Duration::from_micros(500);
        let (chaos, _l, mut client, mut server) = chaos_pair(cfg);
        for i in 0..10u8 {
            client.send(&[i]).unwrap();
            assert_eq!(server.recv().unwrap(), vec![i]);
        }
        assert_eq!(chaos.metrics().chaos_delays(), 10);
    }

    #[test]
    fn disabled_chaos_is_a_clean_passthrough() {
        let mut cfg = ChaosConfig::quiet(7);
        cfg.drop_per_mille = 1000;
        cfg.disconnect_per_mille = 1000;
        let (chaos, _l, mut client, mut server) = chaos_pair(cfg);
        chaos.set_enabled(false);
        for i in 0..20u8 {
            client.send(&[i]).unwrap();
            assert_eq!(server.recv().unwrap(), vec![i]);
        }
        assert!(chaos.trace().is_empty());
    }

    /// The determinism contract: the same seed over the same logical message
    /// sequence yields a byte-identical canonical fault trace, regardless of
    /// timing.
    #[test]
    fn same_seed_replays_identical_fault_trace() {
        fn run(seed: u64) -> String {
            let base: Arc<dyn Transport> = Arc::new(InMemNetwork::new(Metrics::new()));
            let mut cfg = ChaosConfig::lossy_lan(seed);
            cfg.dup_per_mille = 50;
            cfg.max_delay = Duration::from_micros(100);
            let chaos = ChaosTransport::new(base, cfg, Metrics::new());
            let listener = chaos.listen("site-b").unwrap();
            let sink = std::thread::spawn(move || {
                while let Ok(Some(mut chan)) = listener.accept_timeout(Duration::from_millis(200)) {
                    while chan.recv().is_ok() {}
                }
            });
            for conn in 0..20 {
                let mut c = chaos.for_site("site-a").connect("site-b").unwrap();
                for msg in 0..10 {
                    if c.send(format!("m{}-{}", conn, msg).as_bytes()).is_err() {
                        break; // severed by a fault; next connection continues
                    }
                }
            }
            sink.join().unwrap();
            chaos.trace_canonical()
        }
        let a = run(1234);
        let b = run(1234);
        assert!(!a.is_empty(), "lossy profile should fault something");
        assert_eq!(a, b, "fault trace must replay byte-identically");
        let c = run(99);
        assert_ne!(a, c, "different seeds should differ");
    }
}
