//! Transport stress: many concurrent connections, per-connection frame
//! ordering, mixed frame sizes, and injected-latency behaviour.

use harbor_common::Metrics;
use harbor_net::{InMemNetwork, TcpTransport, Transport};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn stress(transport: Arc<dyn Transport>, addr: &str) {
    let listener = transport.listen(addr).unwrap();
    let real_addr = listener.local_addr();
    // Echo server: one thread per connection.
    let server = std::thread::spawn(move || {
        let mut conns = Vec::new();
        for _ in 0..4 {
            let chan = listener.accept().unwrap();
            conns.push(std::thread::spawn(move || {
                let mut chan = chan;
                while let Ok(frame) = chan.recv() {
                    if chan.send(&frame).is_err() {
                        break;
                    }
                }
            }));
        }
        for c in conns {
            let _ = c.join();
        }
    });
    let clients: Vec<_> = (0..4u8)
        .map(|c| {
            let transport = transport.clone();
            let addr = real_addr.clone();
            std::thread::spawn(move || {
                let mut chan = transport.connect(&addr).unwrap();
                for i in 0..100u32 {
                    // Mixed sizes: small to ~64 KB (always room for the
                    // 4-byte sequence number).
                    let len = 4 + ((i as usize * 769) % 65_536);
                    let mut frame = vec![c; len];
                    frame[..4].copy_from_slice(&i.to_le_bytes());
                    chan.send(&frame).unwrap();
                    let echo = chan.recv().unwrap();
                    // Per-connection ordering and integrity.
                    assert_eq!(echo.len(), len);
                    assert_eq!(u32::from_le_bytes(echo[..4].try_into().unwrap()), i);
                    assert!(echo[4..].iter().all(|&b| b == c));
                }
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }
    server.join().unwrap();
}

#[test]
fn tcp_concurrent_echo_stress() {
    stress(Arc::new(TcpTransport::new(Metrics::new())), "127.0.0.1:0");
}

#[test]
fn inmem_concurrent_echo_stress() {
    stress(Arc::new(InMemNetwork::new(Metrics::new())), "stress");
}

#[test]
fn injected_latency_slows_sends_measurably() {
    let lat = Duration::from_millis(2);
    let t: Arc<dyn Transport> = Arc::new(InMemNetwork::with_latency(Metrics::new(), lat));
    let listener = t.listen("latency").unwrap();
    let server = std::thread::spawn(move || {
        let mut chan = listener.accept().unwrap();
        while let Ok(f) = chan.recv() {
            if chan.send(&f).is_err() {
                break;
            }
        }
    });
    let mut chan = t.connect("latency").unwrap();
    let n = 10;
    let t0 = Instant::now();
    for _ in 0..n {
        chan.send(b"x").unwrap();
        chan.recv().unwrap();
    }
    let elapsed = t0.elapsed();
    // Each round trip pays the latency twice (request + reply).
    assert!(
        elapsed >= lat * (2 * n),
        "latency not applied: {elapsed:?} for {n} round trips"
    );
    drop(chan);
    server.join().unwrap();
}
