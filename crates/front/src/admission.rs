//! Admission control for the serving path: bounded in-flight permits,
//! queue-age shedding, and deadline enforcement.
//!
//! This module is the *construction site* for the serving-path error
//! taxonomy (enforced by harbor-lint): every [`DbError::Overloaded`] shed
//! and every deadline-expiry [`DbError::Timeout`] on the front door is
//! minted here, so the classification rules live in one place:
//!
//! * **Shed** (`Overloaded`): the request was *never executed* — the queue
//!   was full, sat past its age watermark, or no permit freed up within
//!   the admission budget. Always safe to resubmit after the hint.
//! * **Deadline reject** (`Timeout`): the client's budget ran out while the
//!   request waited. Also never executed (the gate checks *before* handing
//!   the transaction to the engine), but classified as a timeout because
//!   the budget — not the server's load policy — is what expired.

use harbor_common::{DbError, DbResult, Metrics};
use parking_lot::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A counting semaphore bounding requests inside the engine. `parking_lot`'s
/// condvar has no spurious-wakeup-free guarantee either, so waits re-check
/// the count in a loop; fairness is whatever the condvar gives us, which is
/// fine — admitted requests are peers.
pub struct PermitGate {
    capacity: usize,
    free: Mutex<usize>,
    cv: Condvar,
    metrics: Metrics,
}

/// RAII permit: releasing is returning.
pub struct Permit<'a> {
    gate: &'a PermitGate,
}

impl std::fmt::Debug for Permit<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Permit")
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut free = self.gate.free.lock();
        *free += 1;
        drop(free);
        self.gate.cv.notify_one();
    }
}

impl PermitGate {
    pub fn new(capacity: usize, metrics: Metrics) -> Self {
        PermitGate {
            capacity,
            free: Mutex::new(capacity),
            cv: Condvar::new(),
            metrics,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Permits currently held (for the metrics printout).
    pub fn in_use(&self) -> usize {
        self.capacity - *self.free.lock()
    }

    /// Acquires a permit, waiting at most `budget`. `None` means the gate
    /// stayed full for the whole budget — the caller sheds.
    pub fn acquire(&self, budget: Duration) -> Option<Permit<'_>> {
        let deadline = Instant::now() + budget;
        let mut free = self.free.lock();
        let mut waited = false;
        while *free == 0 {
            if !waited {
                waited = true;
                self.metrics.add_permit_waits(1);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            self.cv.wait_until(&mut free, deadline);
        }
        *free -= 1;
        Some(Permit { gate: self })
    }
}

/// Admission verdict parameters for one queued request.
pub struct AdmissionCheck {
    /// When the request was read off its session.
    pub enqueued_at: Instant,
    /// The request's absolute deadline.
    pub deadline: Instant,
}

/// Policy knobs the gate applies (a copy of the server's config so this
/// module stays free-standing and unit-testable).
#[derive(Clone, Copy, Debug)]
pub struct AdmissionPolicy {
    /// A request older than this at dequeue is shed: by the time it would
    /// execute, the client is better served by a fast retry signal than by
    /// a stale execution.
    pub max_queue_age: Duration,
    /// How long a dequeued request may wait for an in-flight permit before
    /// it is shed.
    pub permit_budget: Duration,
    /// Backoff hint stamped into sheds.
    pub retry_after_ms: u64,
}

impl AdmissionPolicy {
    /// Admits or rejects one dequeued request, minting the typed error.
    /// On success the returned [`Permit`] keeps the engine slot until drop.
    pub fn admit<'g>(
        &self,
        gate: &'g PermitGate,
        check: &AdmissionCheck,
        metrics: &Metrics,
    ) -> DbResult<Permit<'g>> {
        let now = Instant::now();
        if now >= check.deadline {
            metrics.add_deadline_rejects(1);
            return Err(DbError::timeout("deadline expired before execution"));
        }
        if now.saturating_duration_since(check.enqueued_at) > self.max_queue_age {
            metrics.add_requests_shed(1);
            return Err(DbError::overloaded(self.retry_after_ms));
        }
        // Never wait for a permit past the request's own deadline.
        let budget = self
            .permit_budget
            .min(check.deadline.saturating_duration_since(now));
        match gate.acquire(budget) {
            Some(p) => {
                metrics.add_requests_admitted(1);
                Ok(p)
            }
            None => {
                if Instant::now() >= check.deadline {
                    metrics.add_deadline_rejects(1);
                    Err(DbError::timeout("deadline expired waiting for a permit"))
                } else {
                    metrics.add_requests_shed(1);
                    Err(DbError::overloaded(self.retry_after_ms))
                }
            }
        }
    }

    /// The shed minted when the bounded request queue itself is full — the
    /// one admission decision taken at *enqueue* time, by the session
    /// readers, so a burst fails fast instead of stacking latency.
    pub fn queue_full_shed(&self, metrics: &Metrics) -> DbError {
        metrics.add_requests_shed(1);
        DbError::overloaded(self.retry_after_ms)
    }
}

/// Deadline expiry discovered *after* admission, between engine steps (the
/// [`crate::FrontHandler`] checks its absolute deadline before begin, each
/// update, and commit). Minted here so every serving-path timeout shares
/// one construction site.
pub fn deadline_expired(what: &str) -> DbError {
    DbError::timeout(format!("deadline expired before {what}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> AdmissionPolicy {
        AdmissionPolicy {
            max_queue_age: Duration::from_millis(50),
            permit_budget: Duration::from_millis(50),
            retry_after_ms: 7,
        }
    }

    #[test]
    fn permits_bound_concurrency() {
        let gate = PermitGate::new(2, Metrics::new());
        let a = gate.acquire(Duration::from_millis(10)).expect("permit");
        let _b = gate.acquire(Duration::from_millis(10)).expect("permit");
        assert_eq!(gate.in_use(), 2);
        assert!(gate.acquire(Duration::from_millis(20)).is_none());
        drop(a);
        assert!(gate.acquire(Duration::from_millis(100)).is_some());
    }

    #[test]
    fn stale_requests_are_shed_typed() {
        let m = Metrics::new();
        let gate = PermitGate::new(1, m.clone());
        let now = Instant::now();
        let err = policy()
            .admit(
                &gate,
                &AdmissionCheck {
                    enqueued_at: now - Duration::from_millis(200),
                    deadline: now + Duration::from_secs(5),
                },
                &m,
            )
            .expect_err("stale request must shed");
        assert!(err.is_overloaded());
        assert_eq!(err.retry_after_ms(), Some(7));
        assert_eq!(m.requests_shed(), 1);
    }

    #[test]
    fn expired_deadline_rejects_before_execution() {
        let m = Metrics::new();
        let gate = PermitGate::new(1, m.clone());
        let now = Instant::now();
        let err = policy()
            .admit(
                &gate,
                &AdmissionCheck {
                    enqueued_at: now,
                    deadline: now - Duration::from_millis(1),
                },
                &m,
            )
            .expect_err("expired deadline must reject");
        assert!(err.is_timeout());
        assert_eq!(m.deadline_rejects(), 1);
        assert_eq!(gate.in_use(), 0, "no permit may leak on a reject");
    }

    #[test]
    fn full_gate_sheds_within_budget() {
        let m = Metrics::new();
        let gate = PermitGate::new(1, m.clone());
        let _held = gate.acquire(Duration::ZERO).expect("permit");
        let now = Instant::now();
        let err = policy()
            .admit(
                &gate,
                &AdmissionCheck {
                    enqueued_at: now,
                    deadline: now + Duration::from_secs(5),
                },
                &m,
            )
            .expect_err("full gate must shed");
        assert!(err.is_overloaded());
        assert_eq!(m.permit_waits(), 1);
    }
}
