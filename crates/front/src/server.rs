//! The front-door server: sharded acceptors, multiplexed session readers,
//! and a bounded execution pool, with graceful drain.
//!
//! Thread budget is **fixed** — `acceptor_shards + readers + workers`
//! threads regardless of connection count — replacing thread-per-connection
//! for the serving path. Sessions are plain blocking channels that *move*
//! between stages instead of owning a thread:
//!
//! ```text
//!  acceptor shards ──▶ idle-session deque ──▶ session readers
//!                           ▲                      │ parse + stamp deadline
//!                           │                      ▼
//!                       (after reply)      bounded work queue ──▶ workers
//!                           └──────────────────────────────────────┘
//! ```
//!
//! A reader polls one session at a time with a short `recv_timeout` quantum
//! (a real timed kernel block — std sockets offer no epoll); sessions with
//! a request in flight are returned to the *front* of the deque after their
//! reply, so closed-loop clients are re-polled immediately while idle
//! sessions rotate at the back. The cost of this design is rotation latency
//! for very large idle session counts (`idle_sessions / readers × quantum`
//! worst case to notice a cold session's first byte), which is the honest
//! std-only trade for a fixed thread count.
//!
//! Back-pressure is explicit at two points: session readers shed at
//! *enqueue* when the work queue is full (fail fast, never stack latency),
//! and workers shed at *dequeue* when a request sat past the age watermark
//! or no in-flight permit frees up — both as typed
//! [`Overloaded`](harbor_common::DbError::Overloaded) replies carrying a
//! backoff hint, never by stalling the socket.

use crate::admission::{AdmissionCheck, AdmissionPolicy, PermitGate};
use crate::wire::{FrontReply, FrontRequest};
use crate::FrontHandler;
use harbor_common::codec::Wire;
use harbor_common::config::{DEFAULT_REQUEST_DEADLINE, DEFAULT_RETRY_AFTER_MS};
use harbor_common::shimsan::RaceWitness;
use harbor_common::{DbResult, Metrics};
use harbor_net::{Channel, Listener};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serving-layer knobs. The defaults are sized for an in-process test
/// cluster; a real deployment scales `workers`/`permits` with cores and
/// `queue_depth` with target burst absorption.
#[derive(Clone, Debug)]
pub struct FrontConfig {
    /// Acceptor shard threads pulling from one shared listener.
    pub acceptor_shards: usize,
    /// Session-reader threads multiplexing all connected sessions.
    pub readers: usize,
    /// Execution threads draining the work queue.
    pub workers: usize,
    /// Bound on queued-but-not-executing requests; above it readers shed.
    pub queue_depth: usize,
    /// Queue-age watermark; a request older than this at dequeue is shed.
    pub max_queue_age: Duration,
    /// In-flight permits bounding requests inside the engine.
    pub permits: usize,
    /// How long a dequeued request may wait for a permit before shedding.
    pub permit_budget: Duration,
    /// Deadline stamped on requests that arrive with `deadline_ms == 0`.
    pub default_deadline: Duration,
    /// Ceiling clamped onto client-supplied deadlines.
    pub max_deadline: Duration,
    /// Reader poll quantum per session (a timed kernel block, not a spin).
    pub poll_quantum: Duration,
    /// Backoff hint stamped into `Overloaded` sheds.
    pub retry_after_ms: u64,
}

impl Default for FrontConfig {
    fn default() -> Self {
        FrontConfig {
            acceptor_shards: 2,
            readers: 4,
            workers: 4,
            queue_depth: 64,
            max_queue_age: Duration::from_millis(250),
            permits: 4,
            permit_budget: Duration::from_millis(100),
            default_deadline: DEFAULT_REQUEST_DEADLINE,
            max_deadline: Duration::from_secs(30),
            poll_quantum: Duration::from_millis(2),
            retry_after_ms: DEFAULT_RETRY_AFTER_MS,
        }
    }
}

impl FrontConfig {
    fn policy(&self) -> AdmissionPolicy {
        AdmissionPolicy {
            max_queue_age: self.max_queue_age,
            permit_budget: self.permit_budget,
            retry_after_ms: self.retry_after_ms,
        }
    }
}

/// One connected client session. Owns its blocking channel; moves between
/// the idle deque, a reader, and (while a request executes) a worker.
struct Session {
    chan: Box<dyn Channel>,
}

/// A parsed request travelling to the worker pool with its session.
struct Work {
    session: Session,
    client: u64,
    req: u64,
    ops: Vec<harbor_dist::UpdateRequest>,
    enqueued_at: Instant,
    deadline: Instant,
}

struct Shared {
    cfg: FrontConfig,
    policy: AdmissionPolicy,
    handler: Box<dyn FrontHandler>,
    metrics: Metrics,
    gate: PermitGate,
    /// Sessions with no request in flight, awaiting a reader.
    idle: Mutex<VecDeque<Session>>,
    idle_cv: Condvar,
    /// Bounded queue of admitted-to-queue requests awaiting a worker.
    work: Mutex<VecDeque<Work>>,
    work_cv: Condvar,
    /// ShimSan witness on the reader→worker hand-off: every enqueue and
    /// dequeue records a write while the `work` mutex is held, so any
    /// future access that skips the lock panics in debug builds under the
    /// chaos soak. Zero-sized no-op in release.
    work_witness: RaceWitness,
    /// Set by `shutdown`: stop accepting and stop reading new requests.
    /// Workers keep draining until the work queue is empty.
    stop: AtomicBool,
    /// Set by `shutdown` *after* the readers are joined: no more requests
    /// can be enqueued, so workers may exit once the queue is empty. Two
    /// phases, or a worker could exit between a reader's dequeue-check and
    /// its enqueue, orphaning an admitted request.
    intake_closed: AtomicBool,
}

impl Shared {
    fn stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Best-effort reply; a send failure closes the session.
    fn reply(&self, session: &mut Session, reply: &FrontReply) -> bool {
        session.chan.send_framed(&reply.to_framed_vec()).is_ok()
    }

    fn close_session(&self, _session: Session) {
        self.metrics.add_sessions_closed(1);
    }

    /// Returns a session to the idle deque. `hot` sessions (just replied —
    /// a closed-loop client is about to send again) go to the front so
    /// readers re-poll them first; fresh/cold ones rotate at the back.
    fn park_session(&self, session: Session, hot: bool) {
        let mut idle = self.idle.lock();
        if hot {
            idle.push_front(session);
        } else {
            idle.push_back(session);
        }
        drop(idle);
        self.idle_cv.notify_one();
    }
}

/// Handle to a running front door. Dropping it drains gracefully.
pub struct FrontServer {
    shared: Arc<Shared>,
    local_addr: String,
    acceptors: Vec<JoinHandle<()>>,
    readers: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl FrontServer {
    /// Starts the serving pipeline on an already-bound listener.
    pub fn start(
        cfg: FrontConfig,
        listener: Box<dyn Listener>,
        handler: Box<dyn FrontHandler>,
        metrics: Metrics,
    ) -> DbResult<Self> {
        let local_addr = listener.local_addr();
        let shared = Arc::new(Shared {
            policy: cfg.policy(),
            gate: PermitGate::new(cfg.permits.max(1), metrics.clone()),
            handler,
            metrics,
            idle: Mutex::new(VecDeque::new()),
            idle_cv: Condvar::new(),
            work: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            work_witness: RaceWitness::new(),
            stop: AtomicBool::new(false),
            intake_closed: AtomicBool::new(false),
            cfg,
        });

        let listener: Arc<Box<dyn Listener>> = Arc::new(listener);
        let spawn = |name: String, f: Box<dyn FnOnce() + Send>| {
            std::thread::Builder::new()
                .name(name)
                .spawn(f)
                .map_err(|e| harbor_common::DbError::internal(format!("spawn: {e}")))
        };

        let mut acceptors = Vec::new();
        for shard in 0..shared.cfg.acceptor_shards.max(1) {
            let sh = Arc::clone(&shared);
            let l = Arc::clone(&listener);
            acceptors.push(spawn(
                format!("front-accept-{shard}"),
                Box::new(move || accept_loop(&sh, &l)),
            )?);
        }
        let mut readers = Vec::new();
        for r in 0..shared.cfg.readers.max(1) {
            let sh = Arc::clone(&shared);
            readers.push(spawn(
                format!("front-read-{r}"),
                Box::new(move || read_loop(&sh)),
            )?);
        }
        let mut workers = Vec::new();
        for w in 0..shared.cfg.workers.max(1) {
            let sh = Arc::clone(&shared);
            workers.push(spawn(
                format!("front-work-{w}"),
                Box::new(move || work_loop(&sh)),
            )?);
        }

        Ok(FrontServer {
            shared,
            local_addr,
            acceptors,
            readers,
            workers,
        })
    }

    /// Address clients connect to.
    pub fn local_addr(&self) -> String {
        self.local_addr.clone()
    }

    /// Permits currently inside the engine (for status printouts).
    pub fn permits_in_use(&self) -> usize {
        self.shared.gate.in_use()
    }

    /// Current work-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.shared.work.lock().len()
    }

    /// Graceful drain: stop accepting and reading, finish every request
    /// already admitted to the work queue, then close all sessions.
    /// Returns the drain duration (also accumulated into `drain_micros`).
    pub fn shutdown(mut self) -> Duration {
        self.drain()
    }

    fn drain(&mut self) -> Duration {
        if self.shared.stop.swap(true, Ordering::AcqRel) {
            return Duration::ZERO;
        }
        let t0 = Instant::now();
        self.shared.idle_cv.notify_all();
        self.shared.work_cv.notify_all();
        for h in self.acceptors.drain(..) {
            h.join().ok();
        }
        for h in self.readers.drain(..) {
            h.join().ok();
        }
        // With the readers joined, nothing can enqueue anymore; workers may
        // exit once the queue is drained, so every admitted request gets
        // executed and answered before close.
        self.shared.intake_closed.store(true, Ordering::Release);
        self.shared.work_cv.notify_all();
        for h in self.workers.drain(..) {
            h.join().ok();
        }
        let mut idle = std::mem::take(&mut *self.shared.idle.lock());
        while let Some(s) = idle.pop_front() {
            self.shared.close_session(s);
        }
        let took = t0.elapsed();
        self.shared
            .metrics
            .add_drain_micros(took.as_micros().min(u64::MAX as u128) as u64);
        took
    }
}

impl Drop for FrontServer {
    fn drop(&mut self) {
        self.drain();
    }
}

/// Accepts connections from the shared listener into the idle deque.
fn accept_loop(sh: &Shared, listener: &Arc<Box<dyn Listener>>) {
    while !sh.stopped() {
        match listener.accept_timeout(Duration::from_millis(50)) {
            Ok(Some(chan)) => {
                sh.metrics.add_sessions_accepted(1);
                sh.park_session(Session { chan }, false);
            }
            Ok(None) => {}
            // Listener gone (or broken): this shard is done; siblings and
            // the drain path handle the rest.
            Err(_) => return,
        }
    }
}

/// Multiplexes sessions: pop one, poll it for a quantum, route the result.
fn read_loop(sh: &Shared) {
    loop {
        let mut session = {
            let mut idle = sh.idle.lock();
            loop {
                if sh.stopped() {
                    return;
                }
                if let Some(s) = idle.pop_front() {
                    break s;
                }
                sh.idle_cv.wait_for(&mut idle, Duration::from_millis(50));
            }
        };
        match session.chan.recv_timeout(sh.cfg.poll_quantum) {
            Ok(None) => sh.park_session(session, false),
            Err(_) => sh.close_session(session),
            Ok(Some(frame)) => {
                let arrival = Instant::now();
                match FrontRequest::from_slice(&frame) {
                    Err(e) => {
                        // Framing is untrusted after a parse failure; answer
                        // best-effort and drop the session.
                        sh.reply(
                            &mut session,
                            &FrontReply::Err {
                                client: 0,
                                req: 0,
                                msg: e.to_string(),
                            },
                        );
                        sh.close_session(session);
                    }
                    Ok(FrontRequest::Ping) => {
                        if sh.reply(&mut session, &FrontReply::Pong) {
                            sh.park_session(session, true);
                        } else {
                            sh.close_session(session);
                        }
                    }
                    Ok(FrontRequest::Txn {
                        client,
                        req,
                        deadline_ms,
                        ops,
                    }) => {
                        let budget = if deadline_ms == 0 {
                            sh.cfg.default_deadline
                        } else {
                            Duration::from_millis(u64::from(deadline_ms)).min(sh.cfg.max_deadline)
                        };
                        let work = Work {
                            session,
                            client,
                            req,
                            ops,
                            enqueued_at: arrival,
                            deadline: arrival + budget,
                        };
                        enqueue_or_shed(sh, work);
                    }
                }
            }
        }
    }
}

/// Enqueue-time admission: a full queue sheds immediately (typed reply on
/// the session, which then goes back to the idle deque) instead of growing
/// an unbounded backlog.
fn enqueue_or_shed(sh: &Shared, work: Work) {
    let mut q = sh.work.lock();
    if q.len() >= sh.cfg.queue_depth {
        drop(q);
        let err = sh.policy.queue_full_shed(&sh.metrics);
        let Work {
            mut session,
            client,
            req,
            ..
        } = work;
        let ok = sh.reply(
            &mut session,
            &FrontReply::Err {
                client,
                req,
                msg: err.to_string(),
            },
        );
        if ok {
            sh.park_session(session, true);
        } else {
            sh.close_session(session);
        }
        return;
    }
    q.push_back(work);
    sh.work_witness.check_write("front work-queue");
    sh.metrics.note_queue_depth(q.len() as u64);
    drop(q);
    sh.work_cv.notify_one();
}

/// Executes queued requests under the admission gate and writes replies.
fn work_loop(sh: &Shared) {
    loop {
        let work = {
            let mut q = sh.work.lock();
            loop {
                if let Some(w) = q.pop_front() {
                    sh.work_witness.check_write("front work-queue");
                    break w;
                }
                // Drain semantics: exit only once intake is closed *and* the
                // queue is empty, so every admitted request is finished
                // before close.
                if sh.intake_closed.load(Ordering::Acquire) {
                    return;
                }
                sh.work_cv.wait_for(&mut q, Duration::from_millis(50));
            }
        };
        let Work {
            mut session,
            client,
            req,
            ops,
            enqueued_at,
            deadline,
        } = work;
        let check = AdmissionCheck {
            enqueued_at,
            deadline,
        };
        let outcome = match sh.policy.admit(&sh.gate, &check, &sh.metrics) {
            Ok(_permit) => sh.handler.execute(ops, deadline),
            Err(e) => Err(e),
        };
        let reply = match outcome {
            Ok(ts) => FrontReply::Committed { client, req, ts },
            Err(e) => FrontReply::Err {
                client,
                req,
                msg: e.to_string(),
            },
        };
        if sh.reply(&mut session, &reply) {
            sh.park_session(session, true);
        } else {
            sh.close_session(session);
        }
    }
}
