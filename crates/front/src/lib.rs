//! HARBOR's front door: the serving layer between real client connections
//! and the distributed engine.
//!
//! The paper's headline claim (§6) is that the warehouse keeps serving
//! updates *while* a site crashes and recovers. This crate is the serving
//! path that makes that measurable end-to-end: a daemon that accepts many
//! concurrent connections over the [`harbor_net::Transport`] abstraction
//! with a **fixed thread budget** (sharded acceptors + multiplexed session
//! readers + a bounded worker pool — see [`server`]), per-request deadlines
//! propagated into the engine, an in-flight permit gate, typed
//! [`Overloaded`](harbor_common::DbError::Overloaded) load shedding with a
//! backoff hint (see [`admission`]), and graceful drain on shutdown.
//!
//! The crate is deliberately thin over one DB kernel (the moor-style
//! protocol-host split): [`FrontHandler`] is the whole downward interface,
//! and [`harbor_dist::Coordinator`] implements it directly.

pub mod admission;
pub mod server;
pub mod wire;

use harbor_common::{DbResult, Timestamp};
use harbor_dist::{Coordinator, UpdateRequest};
use std::sync::Arc;
use std::time::Instant;

pub use server::{FrontConfig, FrontServer};
pub use wire::{FrontClient, FrontReply, FrontRequest};

/// The execution engine as the front door sees it: one transaction in, one
/// commit timestamp out, with an absolute deadline the implementation must
/// respect between steps.
pub trait FrontHandler: Send + Sync + 'static {
    /// Executes `ops` as a single transaction. `deadline` is absolute; the
    /// implementation checks it between engine steps and gives up (aborting
    /// anything in progress) once it has passed.
    fn execute(&self, ops: Vec<UpdateRequest>, deadline: Instant) -> DbResult<Timestamp>;
}

impl FrontHandler for Arc<Coordinator> {
    /// begin → update* → commit, with the deadline checked before every
    /// step. Expiry mid-transaction aborts the transaction — the engine is
    /// left clean and the client gets a typed timeout it may retry (the
    /// abort guarantees nothing half-committed).
    fn execute(&self, ops: Vec<UpdateRequest>, deadline: Instant) -> DbResult<Timestamp> {
        let check = |what: &str| -> DbResult<()> {
            if Instant::now() >= deadline {
                Err(admission::deadline_expired(what))
            } else {
                Ok(())
            }
        };
        check("begin")?;
        let tid = self.begin()?;
        for op in ops {
            if let Err(e) = check("update").and_then(|()| self.update(tid, op)) {
                let _ = self.abort(tid);
                return Err(e);
            }
        }
        if let Err(e) = check("commit") {
            let _ = self.abort(tid);
            return Err(e);
        }
        self.commit(tid)
    }
}

/// A handler from any closure, for tests and custom kernels.
pub struct FnHandler<F>(pub F);

impl<F> FrontHandler for FnHandler<F>
where
    F: Fn(Vec<UpdateRequest>, Instant) -> DbResult<Timestamp> + Send + Sync + 'static,
{
    fn execute(&self, ops: Vec<UpdateRequest>, deadline: Instant) -> DbResult<Timestamp> {
        (self.0)(ops, deadline)
    }
}
