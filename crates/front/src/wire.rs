//! Front-door wire protocol: one framed request, one framed reply.
//!
//! The serving protocol is deliberately tiny — a transaction is shipped
//! whole (its [`UpdateRequest`] ops reuse the inter-site codec), executed
//! under the server's admission gate, and answered with a commit timestamp
//! or a stringly error that [`DbError::from_remote_msg`] re-classifies on
//! the client side (so an `Overloaded` shed keeps its class *and* its
//! backoff hint across the hop, exactly like the inter-site taxonomy).

use harbor_common::codec::{Decoder, Encoder, Wire};
use harbor_common::config::DEFAULT_REQUEST_DEADLINE;
use harbor_common::{DbError, DbResult, Timestamp};
use harbor_dist::UpdateRequest;
use harbor_net::{Channel, Transport};
use std::time::Duration;

/// Validates a wire-declared element count before allocating for it (every
/// element encodes to at least one byte), mirroring the inter-site codec's
/// guard: a mutated count must not size a `Vec::with_capacity`.
fn checked_count(dec: &Decoder<'_>, n: usize) -> DbResult<usize> {
    if n > dec.remaining() {
        return Err(DbError::corrupt(format!(
            "wire count {n} exceeds {} remaining bytes",
            dec.remaining()
        )));
    }
    Ok(n)
}

/// A client request to the front door.
#[derive(Debug, Clone, PartialEq)]
pub enum FrontRequest {
    /// Liveness probe; answered immediately, never queued.
    Ping,
    /// Execute `ops` as one transaction. `deadline_ms` is the client's total
    /// budget from arrival; `0` means "use the server default". `client` and
    /// `req` echo back in the reply so a driver can correlate pipelined
    /// sessions.
    Txn {
        client: u64,
        req: u64,
        deadline_ms: u32,
        ops: Vec<UpdateRequest>,
    },
}

/// The front door's answer.
#[derive(Debug, Clone, PartialEq)]
pub enum FrontReply {
    Pong,
    /// The transaction committed at `ts`. This is the *ack*: once a client
    /// has seen it, the commit must survive any crash/recovery the chaos
    /// engine throws at the cluster.
    Committed {
        client: u64,
        req: u64,
        ts: Timestamp,
    },
    /// Stringly error; re-classified client-side via
    /// [`DbError::from_remote_msg`].
    Err {
        client: u64,
        req: u64,
        msg: String,
    },
}

impl Wire for FrontRequest {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            FrontRequest::Ping => enc.put_u8(0),
            FrontRequest::Txn {
                client,
                req,
                deadline_ms,
                ops,
            } => {
                enc.put_u8(1);
                enc.put_u64(*client);
                enc.put_u64(*req);
                enc.put_u32(*deadline_ms);
                enc.put_u32(ops.len() as u32);
                for op in ops {
                    op.encode(enc);
                }
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> DbResult<Self> {
        match dec.get_u8()? {
            0 => Ok(FrontRequest::Ping),
            1 => {
                let client = dec.get_u64()?;
                let req = dec.get_u64()?;
                let deadline_ms = dec.get_u32()?;
                let declared = dec.get_u32()? as usize;
                let n = checked_count(dec, declared)?;
                let mut ops = Vec::with_capacity(n);
                for _ in 0..n {
                    ops.push(UpdateRequest::decode(dec)?);
                }
                Ok(FrontRequest::Txn {
                    client,
                    req,
                    deadline_ms,
                    ops,
                })
            }
            t => Err(DbError::protocol(format!("bad FrontRequest tag {t}"))),
        }
    }
}

impl Wire for FrontReply {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            FrontReply::Pong => enc.put_u8(0),
            FrontReply::Committed { client, req, ts } => {
                enc.put_u8(1);
                enc.put_u64(*client);
                enc.put_u64(*req);
                enc.put_u64(ts.0);
            }
            FrontReply::Err { client, req, msg } => {
                enc.put_u8(2);
                enc.put_u64(*client);
                enc.put_u64(*req);
                enc.put_str(msg);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> DbResult<Self> {
        match dec.get_u8()? {
            0 => Ok(FrontReply::Pong),
            1 => Ok(FrontReply::Committed {
                client: dec.get_u64()?,
                req: dec.get_u64()?,
                ts: Timestamp(dec.get_u64()?),
            }),
            2 => Ok(FrontReply::Err {
                client: dec.get_u64()?,
                req: dec.get_u64()?,
                msg: dec.get_str()?,
            }),
            t => Err(DbError::protocol(format!("bad FrontReply tag {t}"))),
        }
    }
}

/// Blocking single-session client for the front door: one request in flight
/// at a time, which is exactly what a closed-loop driver wants. Retry and
/// backoff live one layer up (the workload driver), so this stays an honest
/// one-round-trip primitive.
pub struct FrontClient {
    chan: Box<dyn Channel>,
    client_id: u64,
    next_req: u64,
    /// Set when a reply deadline expired with the reply still owed: the
    /// session's request/reply pairing is no longer trustworthy (a late
    /// reply would be matched against the *next* request), so every later
    /// call fails fast until the caller reconnects.
    desynced: bool,
}

/// Extra patience past the request's own budget before the client declares
/// a reply lost: covers queue wait, reply transit, and chaos-injected
/// delay, so a server-side deadline reject still arrives as a typed error
/// instead of tripping the client-side bound first.
const REPLY_SLACK: Duration = Duration::from_millis(250);

impl FrontClient {
    /// Connects a new session. `client_id` tags this session's requests in
    /// replies (purely diagnostic for a single-in-flight client).
    pub fn connect(transport: &dyn Transport, addr: &str, client_id: u64) -> DbResult<Self> {
        Ok(FrontClient {
            chan: transport.connect(addr)?,
            client_id,
            next_req: 0,
            desynced: false,
        })
    }

    /// Waits for one reply, bounded by `budget` (the request's deadline, or
    /// the server default when the caller passed `Duration::ZERO`) plus
    /// slack. A timeout poisons the session: with one request in flight,
    /// a reply that arrives *after* we gave up would desync every later
    /// request/reply pairing on this channel.
    fn recv_reply(&mut self, budget: Duration) -> DbResult<Vec<u8>> {
        if self.desynced {
            return Err(DbError::protocol(
                "front session desynced: an earlier reply timed out and may still be in \
                 flight — reconnect",
            ));
        }
        let effective = if budget.is_zero() {
            DEFAULT_REQUEST_DEADLINE
        } else {
            budget
        };
        let patience = effective.saturating_mul(2).saturating_add(REPLY_SLACK);
        match self.chan.recv_timeout(patience)? {
            Some(bytes) => Ok(bytes),
            None => {
                self.desynced = true;
                // harbor-lint: allow(error-taxonomy) — the client-side reply bound is a
                // classification boundary in the rpc_deadline sense: nothing downstream
                // of this point can classify the missing reply for us.
                Err(DbError::timeout(format!(
                    "no front-door reply within {patience:?} (budget {effective:?} + slack) — \
                     session desynced, reconnect before retrying"
                )))
            }
        }
    }

    /// Round-trips a liveness probe, bounded by the server's default
    /// request deadline plus slack.
    pub fn ping(&mut self) -> DbResult<()> {
        self.chan.send(&FrontRequest::Ping.to_vec())?;
        match FrontReply::from_slice(&self.recv_reply(Duration::ZERO)?)? {
            FrontReply::Pong => Ok(()),
            other => Err(DbError::protocol(format!("expected Pong, got {other:?}"))),
        }
    }

    /// Executes `ops` as one transaction with the given deadline budget
    /// (`Duration::ZERO` = server default). Exactly one attempt: an
    /// `Overloaded` shed or a deadline reject comes back as the matching
    /// typed error for the caller's retry policy to act on, and the reply
    /// wait itself is bounded by the same budget (plus slack) so a
    /// partition mid-reply surfaces as `Timeout` instead of wedging the
    /// driver forever.
    pub fn txn(&mut self, ops: &[UpdateRequest], deadline: Duration) -> DbResult<Timestamp> {
        let req = self.next_req;
        self.next_req += 1;
        let msg = FrontRequest::Txn {
            client: self.client_id,
            req,
            deadline_ms: deadline.as_millis().min(u32::MAX as u128) as u32,
            ops: ops.to_vec(),
        };
        self.chan.send_framed(&msg.to_framed_vec())?;
        match FrontReply::from_slice(&self.recv_reply(deadline)?)? {
            FrontReply::Committed { ts, .. } => Ok(ts),
            FrontReply::Err { msg, .. } => Err(DbError::from_remote_msg(msg)),
            FrontReply::Pong => Err(DbError::protocol("unsolicited Pong")),
        }
    }

    pub fn client_id(&self) -> u64 {
        self.client_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harbor_common::Value;

    fn sample_ops() -> Vec<UpdateRequest> {
        vec![UpdateRequest::Insert {
            table: "sales".into(),
            values: vec![Value::Int32(7), Value::Str("x".into())],
        }]
    }

    #[test]
    fn request_round_trips() {
        let r = FrontRequest::Txn {
            client: 3,
            req: 41,
            deadline_ms: 250,
            ops: sample_ops(),
        };
        let back = FrontRequest::from_slice(&r.to_vec()).expect("decode");
        assert_eq!(back, r);
        assert_eq!(
            FrontRequest::from_slice(&FrontRequest::Ping.to_vec()).expect("decode"),
            FrontRequest::Ping
        );
    }

    #[test]
    fn reply_round_trips() {
        for r in [
            FrontReply::Pong,
            FrontReply::Committed {
                client: 1,
                req: 2,
                ts: Timestamp(99),
            },
            FrontReply::Err {
                client: 1,
                req: 2,
                msg: "overloaded: retry after 40 ms".into(),
            },
        ] {
            assert_eq!(FrontReply::from_slice(&r.to_vec()).expect("decode"), r);
        }
    }

    #[test]
    fn bad_tags_are_protocol_errors() {
        assert!(FrontRequest::from_slice(&[9]).is_err());
        assert!(FrontReply::from_slice(&[9]).is_err());
        // A hostile op count is caught by `checked_count`, not allocated.
        let mut enc = Encoder::new();
        enc.put_u8(1);
        enc.put_u64(0);
        enc.put_u64(0);
        enc.put_u32(0);
        enc.put_u32(u32::MAX);
        assert!(FrontRequest::from_slice(enc.as_slice()).is_err());
    }
}
