//! End-to-end serving-path tests: steady state over real TCP, shed under
//! burst (typed `Overloaded`, never a hang), deadline rejection before
//! execution, graceful drain, and a property test that shed-only retry
//! commits every acked id exactly once.

use harbor_common::{DbError, DbResult, Metrics, Timestamp};
use harbor_dist::UpdateRequest;
use harbor_front::{FnHandler, FrontClient, FrontConfig, FrontServer};
use harbor_net::tcp::TcpTransport;
use harbor_net::Transport;
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn insert_op(id: i64) -> Vec<UpdateRequest> {
    vec![UpdateRequest::Insert {
        table: "t".into(),
        values: vec![harbor_common::Value::Int64(id)],
    }]
}

fn op_id(ops: &[UpdateRequest]) -> i64 {
    match &ops[0] {
        UpdateRequest::Insert { values, .. } => match values[0] {
            harbor_common::Value::Int64(id) => id,
            _ => panic!("unexpected value"),
        },
        _ => panic!("unexpected op"),
    }
}

/// A fake engine: sleeps `work` per transaction, records executed ids.
struct SlowEngine {
    work: Duration,
    executed: Mutex<Vec<i64>>,
    seq: AtomicU64,
}

impl SlowEngine {
    fn new(work: Duration) -> Arc<Self> {
        Arc::new(SlowEngine {
            work,
            executed: Mutex::new(Vec::new()),
            seq: AtomicU64::new(1),
        })
    }

    fn handler(self: &Arc<Self>) -> Box<dyn harbor_front::FrontHandler> {
        let me = Arc::clone(self);
        Box::new(FnHandler(move |ops: Vec<UpdateRequest>, _deadline| {
            if !me.work.is_zero() {
                std::thread::sleep(me.work);
            }
            me.executed.lock().push(op_id(&ops));
            Ok(Timestamp(me.seq.fetch_add(1, Ordering::Relaxed)))
        }))
    }
}

fn start_tcp(
    cfg: FrontConfig,
    engine: &Arc<SlowEngine>,
) -> (TcpTransport, FrontServer, String, Metrics) {
    let metrics = Metrics::new();
    let transport = TcpTransport::new(metrics.clone());
    let listener = transport.listen("127.0.0.1:0").expect("bind");
    let server =
        FrontServer::start(cfg, listener, engine.handler(), metrics.clone()).expect("start");
    let addr = server.local_addr();
    (transport, server, addr, metrics)
}

#[test]
fn steady_state_commits_over_tcp() {
    let engine = SlowEngine::new(Duration::ZERO);
    let (transport, server, addr, metrics) = start_tcp(FrontConfig::default(), &engine);
    let mut client = FrontClient::connect(&transport, &addr, 1).expect("connect");
    client.ping().expect("ping");
    for id in 0..20 {
        client
            .txn(&insert_op(id), Duration::from_secs(5))
            .expect("commit");
    }
    assert_eq!(engine.executed.lock().len(), 20);
    assert_eq!(metrics.requests_admitted(), 20);
    assert_eq!(metrics.requests_shed(), 0);
    assert_eq!(metrics.sessions_accepted(), 1);
    server.shutdown();
    assert_eq!(metrics.sessions_closed(), 1);
}

#[test]
fn burst_sheds_typed_overloaded_and_never_hangs() {
    // One slow worker, one permit, a 2-deep queue, and a tight age
    // watermark: a 12-client burst must drown the gate.
    let engine = SlowEngine::new(Duration::from_millis(30));
    let cfg = FrontConfig {
        workers: 1,
        permits: 1,
        queue_depth: 2,
        max_queue_age: Duration::from_millis(40),
        permit_budget: Duration::from_millis(10),
        ..FrontConfig::default()
    };
    let (transport, server, addr, metrics) = start_tcp(cfg, &engine);
    let t0 = Instant::now();
    let outcomes: Vec<DbResult<Timestamp>> = std::thread::scope(|scope| {
        let transport = &transport;
        let addr = &addr;
        (0..12)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = FrontClient::connect(transport, addr, c).expect("connect");
                    client.txn(&insert_op(c as i64), Duration::from_secs(10))
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    // Liveness: every client got an answer promptly — shed or committed —
    // never a stalled socket.
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "burst took {:?}",
        t0.elapsed()
    );
    let committed = outcomes.iter().filter(|r| r.is_ok()).count();
    let shed = outcomes
        .iter()
        .filter(|r| matches!(r, Err(e) if e.is_overloaded()))
        .count();
    assert_eq!(
        committed + shed,
        12,
        "unexpected outcome class: {outcomes:?}"
    );
    assert!(shed > 0, "burst never shed: {outcomes:?}");
    assert!(committed >= 1);
    // The typed shed carries its hint through the wire hop.
    let hint = outcomes.iter().find_map(|r| match r {
        Err(e) if e.is_overloaded() => e.retry_after_ms(),
        _ => None,
    });
    assert_eq!(hint, Some(FrontConfig::default().retry_after_ms));
    assert!(metrics.requests_shed() as usize >= shed);
    server.shutdown();
}

#[test]
fn expired_deadline_rejects_before_execution() {
    // Worker busy for 80 ms; a request with a 15 ms budget queued behind it
    // must be rejected as a timeout without ever executing.
    let engine = SlowEngine::new(Duration::from_millis(80));
    let cfg = FrontConfig {
        workers: 1,
        permits: 1,
        queue_depth: 16,
        max_queue_age: Duration::from_secs(10),
        permit_budget: Duration::from_secs(10),
        ..FrontConfig::default()
    };
    let (transport, server, addr, metrics) = start_tcp(cfg, &engine);
    let slow = std::thread::spawn({
        let transport = TcpTransport::new(Metrics::new());
        let addr = addr.clone();
        move || {
            let mut c = FrontClient::connect(&transport, &addr, 0).expect("connect");
            c.txn(&insert_op(100), Duration::from_secs(10))
        }
    });
    std::thread::sleep(Duration::from_millis(20)); // let the slow txn occupy the worker
    let mut c = FrontClient::connect(&transport, &addr, 1).expect("connect");
    let err = c
        .txn(&insert_op(200), Duration::from_millis(15))
        .expect_err("must reject");
    assert!(err.is_timeout(), "got {err}");
    assert!(slow.join().expect("slow client").is_ok());
    assert_eq!(metrics.deadline_rejects(), 1);
    assert_eq!(
        engine.executed.lock().as_slice(),
        &[100],
        "rejected request must never execute"
    );
    server.shutdown();
}

#[test]
fn graceful_drain_completes_admitted_requests() {
    let engine = SlowEngine::new(Duration::from_millis(40));
    let cfg = FrontConfig {
        workers: 2,
        permits: 2,
        queue_depth: 16,
        max_queue_age: Duration::from_secs(10),
        permit_budget: Duration::from_secs(10),
        ..FrontConfig::default()
    };
    let (_transport, server, addr, metrics) = start_tcp(cfg, &engine);
    let clients: Vec<_> = (0..4)
        .map(|c| {
            std::thread::spawn({
                let transport = TcpTransport::new(Metrics::new());
                let addr = addr.clone();
                move || {
                    let mut cl = FrontClient::connect(&transport, &addr, c).expect("connect");
                    cl.txn(&insert_op(c as i64), Duration::from_secs(10))
                }
            })
        })
        .collect();
    // Wait until all four requests are off their sockets (queued or
    // executing), then pull the plug.
    let t0 = Instant::now();
    while (metrics.requests_admitted() + server.queue_depth() as u64) < 4 {
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "requests never arrived"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let took = server.shutdown();
    for c in clients {
        let res = c.join().expect("client thread");
        assert!(res.is_ok(), "admitted request dropped by drain: {res:?}");
    }
    assert_eq!(engine.executed.lock().len(), 4);
    assert!(metrics.drain_micros() > 0);
    assert!(took > Duration::ZERO);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Shed-only retry with seeded backoff commits every acked id exactly
    /// once, across arbitrary shed/retry interleavings induced by tiny
    /// capacities — and an acked id is always present in the engine.
    #[test]
    fn retry_commits_every_acked_id(
        clients in 1usize..4,
        txns in 1usize..6,
        queue_depth in 1usize..4,
        workers in 1usize..3,
        work_ms in 0u64..4,
    ) {
        let engine = SlowEngine::new(Duration::from_millis(work_ms));
        let cfg = FrontConfig {
            workers,
            permits: workers,
            queue_depth,
            max_queue_age: Duration::from_millis(10),
            permit_budget: Duration::from_millis(5),
            ..FrontConfig::default()
        };
        let metrics = Metrics::new();
        let net = harbor_net::inmem::InMemNetwork::new(metrics.clone());
        let listener = net.listen("front").expect("bind");
        let server = FrontServer::start(cfg, listener, engine.handler(), metrics)
            .expect("start");
        let driver_cfg = harbor_workload::DriverConfig {
            clients,
            txns_per_client: txns,
            deadline: Duration::from_secs(5),
            retry: harbor_common::RetryPolicy::new(
                12,
                Duration::from_millis(1),
                Duration::from_millis(20),
                0xF007 ^ (clients as u64) << 8 ^ txns as u64,
            ),
        };
        let report = harbor_workload::run_front_clients(
            &net,
            "front",
            &driver_cfg,
            |c, n| {
                let id = (c as i64) * 1000 + n as i64;
                (id, insert_op(id))
            },
        ).expect("driver");
        server.shutdown();
        let executed = engine.executed.lock();
        // Exactly-once: shed-only retry may never double-execute.
        let mut uniq = executed.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), executed.len(), "double execution: {:?}", &*executed);
        // Acked ⇒ present.
        for id in &report.acked {
            prop_assert!(executed.contains(id), "acked id {} missing", id);
        }
        prop_assert_eq!(report.acked.len() as u64, report.sample.committed);
    }
}

// Keep DbError in scope for the typed-shed assertions even if rustc decides
// the direct uses above are enough.
#[allow(dead_code)]
fn _taxonomy_witness(e: &DbError) -> bool {
    e.is_overloaded()
}
