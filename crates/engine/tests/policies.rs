//! Engine-level policy tests: the write-ahead-logging rule, the FORCE
//! paging policy, and the checkpoint soundness bound for transactions whose
//! inserts straddle a segment boundary.

use harbor_common::{FieldType, SiteId, StorageConfig, Timestamp, TransactionId, Value};
use harbor_engine::{Engine, EngineOptions, StepLogging};
use harbor_storage::PagePolicy;
use std::path::PathBuf;
use std::sync::Arc;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("harbor-engine-policy-tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tid(n: u64) -> TransactionId {
    TransactionId::from_parts(SiteId(0), n)
}

fn fields() -> Vec<(String, FieldType)> {
    vec![
        ("id".into(), FieldType::Int64),
        ("v".into(), FieldType::Int32),
    ]
}

fn row(id: i64) -> Vec<Value> {
    vec![Value::Int64(id), Value::Int32(id as i32)]
}

#[test]
fn wal_rule_forces_log_before_page_writeback() {
    let dir = temp_dir("wal-rule");
    let e = Engine::open(
        &dir,
        EngineOptions::aries(SiteId(0), StorageConfig::for_tests()),
    )
    .unwrap();
    let def = e.create_table("t", fields()).unwrap();
    let t = tid(1);
    e.begin(t).unwrap();
    e.insert(t, def.id, row(1)).unwrap();
    // Nothing committed, nothing forced: the update record is buffered.
    let wal = e.wal().unwrap();
    let unforced_before = wal.end().0 - wal.durable_end().0;
    assert!(unforced_before > 0, "update record should be buffered");
    // Flushing the dirty page must drag the log to disk first (STEAL +
    // WAL rule): afterwards the tail is durable.
    e.pool().flush_all().unwrap();
    assert_eq!(
        wal.end(),
        wal.durable_end(),
        "page write-back must force the log through the page LSN"
    );
    e.abort(t, StepLogging::FORCE).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn force_policy_flushes_touched_pages_at_commit() {
    let dir = temp_dir("force-policy");
    let opts = EngineOptions {
        policy: PagePolicy::no_steal_force(),
        ..EngineOptions::harbor(SiteId(0), StorageConfig::for_tests())
    };
    let e = Engine::open(&dir, opts).unwrap();
    let def = e.create_table("t", fields()).unwrap();
    let t = tid(1);
    e.begin(t).unwrap();
    e.insert(t, def.id, row(1)).unwrap();
    assert!(!e.pool().dirty_pages().is_empty());
    e.commit(t, Timestamp(3), StepLogging::OFF).unwrap();
    assert!(
        e.pool().dirty_pages().is_empty(),
        "FORCE policy must write back the transaction's pages at commit"
    );
    // And the data is durably correct: reopen without any recovery.
    drop(e);
    let e = Engine::open(
        &dir,
        EngineOptions::harbor(SiteId(0), StorageConfig::for_tests()),
    )
    .unwrap();
    let def = e.table_def("t").unwrap();
    let hits = e.index(def.id).unwrap().lookup(e.pool(), 1).unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(
        e.read_tuple(hits[0]).unwrap().insertion_ts().unwrap(),
        Timestamp(3)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A transaction inserts into segment N, a new segment is created by other
/// inserts, and only then does the first transaction commit. The checkpoint
/// must keep its Phase-1 scan start at segment N — otherwise a crash would
/// leave an invisible uncommitted tuple (or a tuple committed after the
/// checkpoint) stranded on disk where Phase 1 never looks.
#[test]
fn checkpoint_scan_start_covers_straddling_transactions() {
    let dir = temp_dir("straddle");
    let mut storage = StorageConfig::for_tests();
    storage.segment_pages = 1; // one page per segment: easy to straddle
    let e = Engine::open(&dir, EngineOptions::harbor(SiteId(0), storage)).unwrap();
    let def = e.create_table("t", fields()).unwrap();
    let table = e.pool().table(def.id).unwrap();
    // The slow transaction fills the current last segment completely (so
    // later traffic moves on without contending for its page locks).
    let per_page = harbor_storage::slots_per_page(table.tuple_size());
    let slow = tid(1);
    e.begin(slow).unwrap();
    for i in 0..per_page as i64 {
        e.insert(slow, def.id, row(1_000 + i)).unwrap();
    }
    let seg_at_insert = table.last_segment().0;
    // Competing committed traffic rolls the table into later segments.
    let filler = tid(2);
    e.begin(filler).unwrap();
    for i in 0..(per_page * 2) as i64 {
        e.insert(filler, def.id, row(i)).unwrap();
    }
    e.commit(filler, Timestamp(10), StepLogging::OFF).unwrap();
    assert!(table.last_segment().0 > seg_at_insert, "segments rolled");
    // Checkpoint while `slow` is still pending: the recorded scan-start
    // segment must not exceed the segment `slow` inserted into.
    e.checkpoint().unwrap();
    let start = e.checkpointer().scan_start(def.id);
    assert!(
        start <= seg_at_insert,
        "scan start {start} skips the straddling transaction's segment {seg_at_insert}"
    );
    e.commit(slow, Timestamp(11), StepLogging::OFF).unwrap();
    // After the straddler finishes, a fresh checkpoint advances the bound
    // to the (new) last segment.
    e.checkpoint().unwrap();
    assert_eq!(e.checkpointer().scan_start(def.id), table.last_segment().0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_transactions_on_disjoint_tables_commit_independently() {
    let dir = temp_dir("concurrent");
    let e = Engine::open(
        &dir,
        EngineOptions::harbor(SiteId(0), StorageConfig::for_tests()),
    )
    .unwrap();
    let defs: Vec<_> = (0..4)
        .map(|i| e.create_table(&format!("t{i}"), fields()).unwrap())
        .collect();
    let _keep: &Arc<Engine> = &e;
    std::thread::scope(|scope| {
        for (i, def) in defs.iter().enumerate() {
            let e = &e;
            let id = def.id;
            scope.spawn(move || {
                let t = tid(10 + i as u64);
                e.begin(t).unwrap();
                for k in 0..50 {
                    e.insert(t, id, row(k)).unwrap();
                }
                e.commit(t, Timestamp(5 + i as u64), StepLogging::OFF)
                    .unwrap();
            });
        }
    });
    for def in &defs {
        let hits = e.index(def.id).unwrap().lookup(e.pool(), 7).unwrap();
        assert_eq!(hits.len(), 1);
    }
    assert_eq!(e.metrics().commits(), 4);
    assert_eq!(e.locks().held_count(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}
