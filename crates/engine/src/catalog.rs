//! The per-site table catalog: table names, ids, and user schemas,
//! persisted in a small file so a restarted site can reopen its heaps.

use harbor_common::lockrank::{self, Rank};
use harbor_common::{DbError, DbResult, FieldType, TableId, TupleDesc};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Definition of one stored table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableDef {
    pub id: TableId,
    pub name: String,
    /// User-visible fields; the stored schema prepends the version columns.
    pub user_fields: Vec<(String, FieldType)>,
}

impl TableDef {
    /// The stored schema (with reserved version columns).
    pub fn stored_desc(&self) -> TupleDesc {
        TupleDesc::with_version_columns(
            self.user_fields
                .iter()
                .map(|(n, t)| (n.as_str(), *t))
                .collect(),
        )
    }
}

/// Persistent catalog for one site.
pub struct Catalog {
    path: PathBuf,
    tables: Mutex<BTreeMap<u32, TableDef>>,
}

impl Catalog {
    pub fn open(path: impl AsRef<Path>) -> DbResult<Self> {
        let path = path.as_ref().to_path_buf();
        let tables = match std::fs::read(&path) {
            Ok(bytes) => decode(&bytes)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => BTreeMap::new(),
            Err(e) => return Err(e.into()),
        };
        Ok(Catalog {
            path,
            tables: Mutex::new(tables),
        })
    }

    /// Registers a new table and persists the catalog. The first user field
    /// must be an `Int64` — it is the unique tuple identifier recovery keys
    /// on (§5.3).
    pub fn add(&self, name: &str, user_fields: Vec<(String, FieldType)>) -> DbResult<TableDef> {
        if user_fields.is_empty() || user_fields[0].1 != FieldType::Int64 {
            return Err(DbError::Schema(
                "the first user field must be an int64 tuple identifier".into(),
            ));
        }
        let _rank = lockrank::acquire(Rank::Catalog);
        let mut tables = self.tables.lock();
        if tables.values().any(|t| t.name == name) {
            return Err(DbError::Schema(format!("table {name:?} already exists")));
        }
        let id = TableId(tables.keys().next_back().map(|k| k + 1).unwrap_or(1));
        let def = TableDef {
            id,
            name: name.to_string(),
            user_fields,
        };
        tables.insert(id.0, def.clone());
        self.save(&tables)?;
        Ok(def)
    }

    pub fn by_name(&self, name: &str) -> Option<TableDef> {
        self.tables
            .lock()
            .values()
            .find(|t| t.name == name)
            .cloned()
    }

    pub fn by_id(&self, id: TableId) -> Option<TableDef> {
        let _rank = lockrank::acquire(Rank::Catalog);
        self.tables.lock().get(&id.0).cloned()
    }

    pub fn all(&self) -> Vec<TableDef> {
        let _rank = lockrank::acquire(Rank::Catalog);
        self.tables.lock().values().cloned().collect()
    }

    fn save(&self, tables: &BTreeMap<u32, TableDef>) -> DbResult<()> {
        let tmp = self.path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&encode(tables))?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        Ok(())
    }
}

fn encode(tables: &BTreeMap<u32, TableDef>) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"HBCT");
    out.extend_from_slice(&(tables.len() as u32).to_le_bytes());
    for def in tables.values() {
        out.extend_from_slice(&def.id.0.to_le_bytes());
        put_str(&mut out, &def.name);
        out.extend_from_slice(&(def.user_fields.len() as u32).to_le_bytes());
        for (name, ty) in &def.user_fields {
            put_str(&mut out, name);
            out.push(ty.tag());
            let width = match ty {
                FieldType::FixedStr(n) => *n,
                _ => 0,
            };
            out.extend_from_slice(&width.to_le_bytes());
        }
    }
    out
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn decode(bytes: &[u8]) -> DbResult<BTreeMap<u32, TableDef>> {
    let mut cur = Cursor { bytes, at: 0 };
    if cur.take(4)? != b"HBCT" {
        return Err(DbError::corrupt("bad catalog magic"));
    }
    let n = cur.u32()?;
    let mut out = BTreeMap::new();
    for _ in 0..n {
        let id = TableId(cur.u32()?);
        let name = cur.string()?;
        let nf = cur.u32()? as usize;
        let mut user_fields = Vec::with_capacity(nf);
        for _ in 0..nf {
            let fname = cur.string()?;
            let tag = cur.u8()?;
            let width = cur.u16()?;
            let ty = match tag {
                0 => FieldType::Int32,
                1 => FieldType::Int64,
                2 => FieldType::Time,
                3 => FieldType::FixedStr(width),
                t => return Err(DbError::corrupt(format!("bad field type tag {t}"))),
            };
            user_fields.push((fname, ty));
        }
        out.insert(
            id.0,
            TableDef {
                id,
                name,
                user_fields,
            },
        );
    }
    Ok(out)
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> DbResult<&'a [u8]> {
        if self.at + n > self.bytes.len() {
            return Err(DbError::corrupt("truncated catalog"));
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> DbResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> DbResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> DbResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn string(&mut self) -> DbResult<String> {
        let n = self.u32()? as usize;
        let s = self.take(n)?;
        String::from_utf8(s.to_vec()).map_err(|_| DbError::corrupt("bad utf-8 in catalog"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("harbor-catalog-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn fields() -> Vec<(String, FieldType)> {
        vec![
            ("id".into(), FieldType::Int64),
            ("qty".into(), FieldType::Int32),
            ("name".into(), FieldType::FixedStr(12)),
        ]
    }

    #[test]
    fn add_and_reopen() {
        let path = temp("basic");
        let cat = Catalog::open(&path).unwrap();
        let def = cat.add("sales", fields()).unwrap();
        assert_eq!(def.id, TableId(1));
        let def2 = cat.add("returns", fields()).unwrap();
        assert_eq!(def2.id, TableId(2));
        drop(cat);
        let cat = Catalog::open(&path).unwrap();
        assert_eq!(cat.all().len(), 2);
        let back = cat.by_name("sales").unwrap();
        assert_eq!(back, def);
        assert_eq!(back.stored_desc().len(), 5);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_duplicate_names_and_bad_key() {
        let path = temp("dups");
        let cat = Catalog::open(&path).unwrap();
        cat.add("t", fields()).unwrap();
        assert!(cat.add("t", fields()).is_err());
        assert!(cat.add("u", vec![("x".into(), FieldType::Int32)]).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn lookup_misses_return_none() {
        let path = temp("miss");
        let cat = Catalog::open(&path).unwrap();
        assert!(cat.by_name("nope").is_none());
        assert!(cat.by_id(TableId(9)).is_none());
        let _ = std::fs::remove_file(&path);
    }
}
