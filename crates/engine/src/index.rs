//! In-memory primary-key index: tuple id → record ids of all versions.
//!
//! The thesis assumes "an index exists on tuple id, which is usually the
//! primary key" (§5.3) and recovers indices "as a side effect of adding or
//! deleting tuples from the object during recovery" (§5.1). We keep the
//! index in memory, maintained by the engine's mutation paths, and rebuild
//! it lazily by a single sequential scan after a restart — recovery itself
//! never consults it (the recovery queries are written as batch scans), so
//! the rebuild cost never pollutes the recovery-time measurements.
//!
//! A key maps to *all* versions of the tuple (an update creates a second
//! tuple with the same id); readers filter by visibility.

use harbor_common::TableId;
use harbor_common::{DbResult, RecordId};
use harbor_storage::BufferPool;
use parking_lot::Mutex;
use std::collections::HashMap;

struct Inner {
    built: bool,
    map: HashMap<i64, Vec<RecordId>>,
}

/// Primary-key index for one table.
pub struct KeyIndex {
    table: TableId,
    /// Byte offset of the key field within the fixed-width tuple encoding
    /// (after the two 8-byte timestamps).
    key_offset: usize,
    inner: Mutex<Inner>,
}

/// Reads the `i64` key at `key_offset` from raw tuple bytes.
fn key_of(bytes: &[u8], key_offset: usize) -> i64 {
    i64::from_le_bytes(bytes[key_offset..key_offset + 8].try_into().unwrap())
}

impl KeyIndex {
    /// A fresh (empty, built) index for a new table.
    pub fn fresh(table: TableId, key_offset: usize) -> Self {
        KeyIndex {
            table,
            key_offset,
            inner: Mutex::new(Inner {
                built: true,
                map: HashMap::new(),
            }),
        }
    }

    /// A cold index for a reopened table; built on first lookup.
    pub fn cold(table: TableId, key_offset: usize) -> Self {
        KeyIndex {
            table,
            key_offset,
            inner: Mutex::new(Inner {
                built: false,
                map: HashMap::new(),
            }),
        }
    }

    pub fn is_built(&self) -> bool {
        self.inner.lock().built
    }

    /// Extracts the key from encoded tuple bytes.
    pub fn key_from_bytes(&self, bytes: &[u8]) -> i64 {
        key_of(bytes, self.key_offset)
    }

    /// Registers a version. No-op while cold (the eventual build scan will
    /// see the tuple on its page).
    pub fn insert(&self, key: i64, rid: RecordId) {
        let mut g = self.inner.lock();
        if !g.built {
            return;
        }
        let e = g.map.entry(key).or_default();
        if !e.contains(&rid) {
            e.push(rid);
        }
    }

    /// Unregisters a version (physical removal).
    pub fn remove(&self, key: i64, rid: RecordId) {
        let mut g = self.inner.lock();
        if !g.built {
            return;
        }
        if let Some(e) = g.map.get_mut(&key) {
            e.retain(|r| *r != rid);
            if e.is_empty() {
                g.map.remove(&key);
            }
        }
    }

    /// All versions of `key`, building the index first if cold.
    pub fn lookup(&self, pool: &BufferPool, key: i64) -> DbResult<Vec<RecordId>> {
        let mut g = self.inner.lock();
        if !g.built {
            self.build_locked(pool, &mut g)?;
        }
        let rids = g.map.get(&key).cloned().unwrap_or_default();
        if rids.is_empty() {
            pool.metrics().add_index_misses(1);
        } else {
            pool.metrics().add_index_hits(1);
        }
        Ok(rids)
    }

    /// Forces a (re)build by sequential scan.
    pub fn rebuild(&self, pool: &BufferPool) -> DbResult<()> {
        let mut g = self.inner.lock();
        g.built = false;
        g.map.clear();
        self.build_locked(pool, &mut g)
    }

    /// Drops the contents and marks the index cold (crash simulation /
    /// before recovery).
    pub fn invalidate(&self) {
        let mut g = self.inner.lock();
        g.built = false;
        g.map.clear();
    }

    /// Builds by walking occupancy words over the raw slot region — the
    /// batched path: one bitmap load per 64 slots and a direct key read at
    /// the fixed offset, instead of a per-row `page.read` with its
    /// occupancy/bounds re-checks.
    fn build_locked(&self, pool: &BufferPool, g: &mut Inner) -> DbResult<()> {
        let table = pool.table(self.table)?;
        let mut map: HashMap<i64, Vec<RecordId>> = HashMap::new();
        for pid in table.all_page_ids() {
            pool.with_page(None, pid, |page| {
                let tsize = page.tuple_size();
                let data = page.slot_data();
                for chunk in 0..page.slot_count().div_ceil(64) {
                    let mut occ = page.occupancy_word(chunk);
                    while occ != 0 {
                        let slot = chunk * 64 + occ.trailing_zeros() as usize;
                        occ &= occ - 1;
                        let key = key_of(&data[slot * tsize..(slot + 1) * tsize], self.key_offset);
                        map.entry(key)
                            .or_default()
                            .push(RecordId::new(pid, slot as u16));
                    }
                }
                Ok(())
            })?;
        }
        g.map = map;
        g.built = true;
        pool.metrics().add_index_rebuilds(1);
        Ok(())
    }

    /// Number of distinct keys (tests).
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
