//! Per-transaction in-memory state (thesis §4.1, §6.1.4).
//!
//! A worker keeps, for each update transaction, an **insertion list** and a
//! **deletion list** of record ids. At commit it assigns the commit time to
//! the listed tuples' timestamp fields; to roll back it removes the newly
//! inserted tuples — no undo information is required because updates and
//! deletes never overwrite previously written data.

use harbor_common::{RecordId, TableId, Timestamp};
use harbor_wal::Lsn;
use std::collections::HashMap;

/// Local state machine of Fig 4-5 (pending → prepared → prepared-to-commit
/// → committed, with aborted reachable from the first two).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LocalTxnStatus {
    Pending,
    Prepared,
    PreparedToCommit(Timestamp),
    Committing(Timestamp),
    Aborting,
}

/// In-memory bookkeeping for one transaction on one site.
#[derive(Debug)]
pub struct TxnState {
    pub status: LocalTxnStatus,
    /// Lower bound on this transaction's eventual commit time, if known.
    /// Set from the PREPARE message and tightened by PREPARE-TO-COMMIT /
    /// COMMIT; lets checkpoints pick a `T` no in-flight commit can undercut.
    pub commit_bound: Option<Timestamp>,
    /// Tuples inserted by this transaction, with their primary keys
    /// (assign insertion time at commit; physically remove — and unindex —
    /// on abort).
    pub insertions: Vec<(RecordId, i64)>,
    /// Tuples deleted by this transaction (assign deletion time at commit;
    /// nothing to undo on abort — deletion timestamps are only written at
    /// commit, §4.1).
    pub deletions: Vec<RecordId>,
    /// Head of this transaction's log-record chain (log-based mode only).
    pub last_lsn: Lsn,
    /// Lowest segment index this transaction inserted into, per table —
    /// feeds the checkpoint's Phase-1 scan-start bound.
    pub min_insert_segment: HashMap<TableId, u32>,
}

impl TxnState {
    pub fn new() -> Self {
        TxnState {
            status: LocalTxnStatus::Pending,
            commit_bound: None,
            insertions: Vec::new(),
            deletions: Vec::new(),
            last_lsn: Lsn::NONE,
            min_insert_segment: HashMap::new(),
        }
    }

    pub fn note_insert(&mut self, rid: RecordId, key: i64, segment: u32) {
        self.insertions.push((rid, key));
        self.min_insert_segment
            .entry(rid.page.table)
            .and_modify(|s| *s = (*s).min(segment))
            .or_insert(segment);
    }

    pub fn note_delete(&mut self, rid: RecordId) {
        self.deletions.push(rid);
    }

    /// Tightens the commit-time lower bound (never loosens it).
    pub fn bound_commit_time(&mut self, bound: Timestamp) {
        match self.commit_bound {
            Some(b) if b >= bound => {}
            _ => self.commit_bound = Some(bound),
        }
    }
}

impl Default for TxnState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harbor_common::PageId;

    #[test]
    fn insert_tracking_records_min_segment() {
        let mut st = TxnState::new();
        let t = TableId(1);
        st.note_insert(RecordId::new(PageId::new(t, 5), 0), 100, 2);
        st.note_insert(RecordId::new(PageId::new(t, 3), 0), 101, 1);
        st.note_insert(RecordId::new(PageId::new(TableId(2), 1), 0), 102, 7);
        assert_eq!(st.min_insert_segment[&t], 1);
        assert_eq!(st.min_insert_segment[&TableId(2)], 7);
        assert_eq!(st.insertions.len(), 3);
    }

    #[test]
    fn commit_bound_only_tightens() {
        let mut st = TxnState::new();
        st.bound_commit_time(Timestamp(10));
        st.bound_commit_time(Timestamp(5));
        assert_eq!(st.commit_bound, Some(Timestamp(10)));
        st.bound_commit_time(Timestamp(20));
        assert_eq!(st.commit_bound, Some(Timestamp(20)));
    }
}
