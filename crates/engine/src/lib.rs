//! The versioned transaction engine: the layer between the distributed
//! commit protocols and the storage substrate (thesis §6.1.4, "Versioning
//! and Timestamp Management").
//!
//! One [`Engine`] instance is one site's volatile brain: it owns the buffer
//! pool, lock manager, catalog, primary-key indexes and per-transaction
//! insertion/deletion lists. Dropping it without flushing *is* the crash
//! model — only what reached the heap files, the checkpoint record, and (in
//! baseline mode) the forced prefix of the WAL survives.

pub mod catalog;
pub mod deletion_log;
pub mod engine;
pub mod index;
pub mod txn;

pub use catalog::{Catalog, TableDef};
pub use deletion_log::DeletionLog;
pub use engine::{Engine, EngineOptions, RecoveredInserter, StepLogging, KEY_OFFSET};
pub use index::KeyIndex;
pub use txn::{LocalTxnStatus, TxnState};

#[cfg(test)]
mod tests {
    use super::*;
    use harbor_common::{FieldType, SiteId, StorageConfig, Timestamp, TransactionId, Value};
    use std::path::PathBuf;
    use std::sync::Arc;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("harbor-engine-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tid(n: u64) -> TransactionId {
        TransactionId::from_parts(SiteId(0), n)
    }

    fn fields() -> Vec<(String, FieldType)> {
        vec![
            ("id".into(), FieldType::Int64),
            ("qty".into(), FieldType::Int32),
        ]
    }

    fn harbor_engine(name: &str) -> (Arc<Engine>, PathBuf) {
        let dir = temp_dir(name);
        let e = Engine::open(
            &dir,
            EngineOptions::harbor(SiteId(0), StorageConfig::for_tests()),
        )
        .unwrap();
        (e, dir)
    }

    fn aries_engine(dir: &PathBuf) -> Arc<Engine> {
        Engine::open(
            dir,
            EngineOptions::aries(SiteId(0), StorageConfig::for_tests()),
        )
        .unwrap()
    }

    fn row(id: i64, qty: i32) -> Vec<Value> {
        vec![Value::Int64(id), Value::Int32(qty)]
    }

    #[test]
    fn insert_commit_assigns_timestamps() {
        let (e, dir) = harbor_engine("commit");
        let def = e.create_table("sales", fields()).unwrap();
        let t = tid(1);
        e.begin(t).unwrap();
        let rid = e.insert(t, def.id, row(1, 10)).unwrap();
        assert_eq!(
            e.read_tuple(rid).unwrap().insertion_ts().unwrap(),
            Timestamp::UNCOMMITTED
        );
        e.commit(t, Timestamp(5), StepLogging::OFF).unwrap();
        let tup = e.read_tuple(rid).unwrap();
        assert_eq!(tup.insertion_ts().unwrap(), Timestamp(5));
        assert_eq!(tup.deletion_ts().unwrap(), Timestamp::ZERO);
        assert_eq!(e.local_now(), Timestamp(6));
        // Locks were released.
        assert_eq!(e.locks().held_count(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delete_assigns_deletion_time_at_commit_only() {
        let (e, dir) = harbor_engine("delete");
        let def = e.create_table("sales", fields()).unwrap();
        let t1 = tid(1);
        e.begin(t1).unwrap();
        let rid = e.insert(t1, def.id, row(1, 10)).unwrap();
        e.commit(t1, Timestamp(5), StepLogging::OFF).unwrap();
        let t2 = tid(2);
        e.begin(t2).unwrap();
        e.delete(t2, rid).unwrap();
        // Before commit, nothing on the page changed.
        assert_eq!(
            e.read_tuple(rid).unwrap().deletion_ts().unwrap(),
            Timestamp::ZERO
        );
        e.commit(t2, Timestamp(7), StepLogging::OFF).unwrap();
        assert_eq!(
            e.read_tuple(rid).unwrap().deletion_ts().unwrap(),
            Timestamp(7)
        );
        // Segment annotations track the delete.
        let table = e.pool().table(def.id).unwrap();
        assert_eq!(table.segments()[0].tmax_delete, Timestamp(7));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn update_is_delete_plus_insert() {
        let (e, dir) = harbor_engine("update");
        let def = e.create_table("sales", fields()).unwrap();
        let t1 = tid(1);
        e.begin(t1).unwrap();
        let rid = e.insert(t1, def.id, row(1, 10)).unwrap();
        e.commit(t1, Timestamp(5), StepLogging::OFF).unwrap();
        let t2 = tid(2);
        e.begin(t2).unwrap();
        let rid2 = e.update(t2, rid, row(1, 99)).unwrap();
        e.commit(t2, Timestamp(8), StepLogging::OFF).unwrap();
        let old = e.read_tuple(rid).unwrap();
        let new = e.read_tuple(rid2).unwrap();
        assert_eq!(old.deletion_ts().unwrap(), Timestamp(8));
        assert_eq!(new.insertion_ts().unwrap(), Timestamp(8));
        assert_eq!(new.user_values()[1], Value::Int32(99));
        // The index holds both versions under key 1.
        let versions = e.index(def.id).unwrap().lookup(e.pool(), 1).unwrap();
        assert_eq!(versions.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn logless_abort_rolls_back_via_insertion_list() {
        let (e, dir) = harbor_engine("abort");
        let def = e.create_table("sales", fields()).unwrap();
        let t1 = tid(1);
        e.begin(t1).unwrap();
        let kept = e.insert(t1, def.id, row(1, 10)).unwrap();
        e.commit(t1, Timestamp(5), StepLogging::OFF).unwrap();
        let t2 = tid(2);
        e.begin(t2).unwrap();
        e.insert(t2, def.id, row(2, 20)).unwrap();
        e.delete(t2, kept).unwrap();
        e.abort(t2, StepLogging::OFF).unwrap();
        // Inserted tuple gone, deletion never materialized.
        let tup = e.read_tuple(kept).unwrap();
        assert_eq!(tup.deletion_ts().unwrap(), Timestamp::ZERO);
        assert!(e
            .index(def.id)
            .unwrap()
            .lookup(e.pool(), 2)
            .unwrap()
            .is_empty());
        assert_eq!(e.metrics().aborts(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_respects_inflight_commit_bounds() {
        let (e, dir) = harbor_engine("ckpt-bound");
        let def = e.create_table("sales", fields()).unwrap();
        // Committed up to time 10.
        let t1 = tid(1);
        e.begin(t1).unwrap();
        e.insert(t1, def.id, row(1, 1)).unwrap();
        e.commit(t1, Timestamp(10), StepLogging::OFF).unwrap();
        // A prepared transaction with commit bound 8 clamps the checkpoint
        // to 7 even though time 10 is fully applied.
        let t2 = tid(2);
        e.begin(t2).unwrap();
        e.insert(t2, def.id, row(2, 2)).unwrap();
        e.prepare(t2, Timestamp(8), StepLogging::OFF).unwrap();
        let t = e.checkpoint().unwrap();
        assert_eq!(t, Timestamp(7));
        // After it commits, the checkpoint advances.
        e.commit(t2, Timestamp(11), StepLogging::OFF).unwrap();
        let t = e.checkpoint().unwrap();
        assert_eq!(t, Timestamp(11));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn poisoned_transactions_vote_no() {
        let (e, dir) = harbor_engine("poison");
        let def = e.create_table("sales", fields()).unwrap();
        let t = tid(1);
        e.begin(t).unwrap();
        e.insert(t, def.id, row(1, 1)).unwrap();
        e.poison(t);
        assert!(e.prepare(t, Timestamp(1), StepLogging::OFF).is_err());
        e.abort(t, StepLogging::OFF).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn aries_crash_recovery_round_trip() {
        let dir = temp_dir("aries-rt");
        let committed_rid;
        {
            let e = aries_engine(&dir);
            let def = e.create_table("sales", fields()).unwrap();
            let t1 = tid(1);
            e.begin(t1).unwrap();
            committed_rid = e.insert(t1, def.id, row(1, 10)).unwrap();
            e.prepare(t1, Timestamp(4), StepLogging::FORCE).unwrap();
            e.commit(t1, Timestamp(5), StepLogging::FORCE).unwrap();
            // A loser: inserted, logged, never committed.
            let t2 = tid(2);
            e.begin(t2).unwrap();
            e.insert(t2, def.id, row(2, 20)).unwrap();
            e.wal().unwrap().flush_all().unwrap();
            // Crash: drop without flushing pages.
        }
        {
            let e = aries_engine(&dir);
            let report = e.aries_restart().unwrap();
            assert!(report.redone > 0);
            assert_eq!(report.undone, 1);
            let tup = e.read_tuple(committed_rid).unwrap();
            assert_eq!(tup.insertion_ts().unwrap(), Timestamp(5));
            assert_eq!(tup.user_values()[0], Value::Int64(1));
            // The loser's tuple is gone: only key 1 is indexed.
            let def = e.table_def("sales").unwrap();
            assert_eq!(
                e.index(def.id).unwrap().lookup(e.pool(), 2).unwrap().len(),
                0
            );
            assert_eq!(
                e.index(def.id).unwrap().lookup(e.pool(), 1).unwrap().len(),
                1
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn aries_logged_abort_uses_clrs() {
        let dir = temp_dir("aries-abort");
        let e = aries_engine(&dir);
        let def = e.create_table("sales", fields()).unwrap();
        let t = tid(1);
        e.begin(t).unwrap();
        let rid = e.insert(t, def.id, row(1, 10)).unwrap();
        e.abort(t, StepLogging::FORCE).unwrap();
        assert!(e.read_tuple(rid).is_err(), "tuple physically removed");
        let recs = e.wal().unwrap().scan(harbor_wal::Lsn::ZERO).unwrap();
        assert!(recs.len() >= 4, "Begin, Update, Abort, CLR, End");
        assert!(matches!(
            recs.last().unwrap().1.payload,
            harbor_wal::LogPayload::End { .. }
        ));
        assert!(recs
            .iter()
            .any(|(_, r)| matches!(r.payload, harbor_wal::LogPayload::Clr { .. })));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_primitives_round_trip() {
        let (e, dir) = harbor_engine("recovery-prims");
        let def = e.create_table("sales", fields()).unwrap();
        let tup = harbor_common::Tuple::versioned(Timestamp(3), Timestamp::ZERO, row(7, 70));
        let rid = e.insert_recovered(def.id, &tup).unwrap();
        let table = e.pool().table(def.id).unwrap();
        assert_eq!(table.segments()[0].tmin_insert, Timestamp(3));
        e.set_deletion(rid, Timestamp(9)).unwrap();
        assert_eq!(
            e.read_tuple(rid).unwrap().deletion_ts().unwrap(),
            Timestamp(9)
        );
        assert_eq!(table.segments()[0].tmax_delete, Timestamp(9));
        // Undelete (Phase 1).
        e.set_deletion(rid, Timestamp::ZERO).unwrap();
        assert_eq!(
            e.read_tuple(rid).unwrap().deletion_ts().unwrap(),
            Timestamp::ZERO
        );
        e.remove_physical(rid).unwrap();
        assert!(e.read_tuple(rid).is_err());
        assert!(e
            .index(def.id)
            .unwrap()
            .lookup(e.pool(), 7)
            .unwrap()
            .is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_preserves_catalog_and_data() {
        let dir = temp_dir("reopen");
        let rid;
        {
            let e = Engine::open(
                &dir,
                EngineOptions::harbor(SiteId(0), StorageConfig::for_tests()),
            )
            .unwrap();
            let def = e.create_table("sales", fields()).unwrap();
            let t = tid(1);
            e.begin(t).unwrap();
            rid = e.insert(t, def.id, row(1, 10)).unwrap();
            e.commit(t, Timestamp(5), StepLogging::OFF).unwrap();
            e.checkpoint().unwrap();
        }
        {
            let e = Engine::open(
                &dir,
                EngineOptions::harbor(SiteId(0), StorageConfig::for_tests()),
            )
            .unwrap();
            let def = e.table_def("sales").unwrap();
            let tup = e.read_tuple(rid).unwrap();
            assert_eq!(tup.user_values()[1], Value::Int32(10));
            // Cold index rebuilds on first use.
            let hits = e.index(def.id).unwrap().lookup(e.pool(), 1).unwrap();
            assert_eq!(hits, vec![rid]);
            assert_eq!(e.checkpointer().global(), Timestamp(5));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn transaction_isolation_between_writers() {
        let (e, dir) = harbor_engine("isolation");
        let def = e.create_table("sales", fields()).unwrap();
        let t1 = tid(1);
        e.begin(t1).unwrap();
        let rid = e.insert(t1, def.id, row(1, 10)).unwrap();
        e.commit(t1, Timestamp(2), StepLogging::OFF).unwrap();
        let t2 = tid(2);
        let t3 = tid(3);
        e.begin(t2).unwrap();
        e.begin(t3).unwrap();
        e.delete(t2, rid).unwrap();
        // t3 cannot delete the same tuple: page X lock held by t2.
        assert!(e.delete(t3, rid).is_err());
        e.abort(t2, StepLogging::OFF).unwrap();
        // After t2 aborts, t3 can.
        e.delete(t3, rid).unwrap();
        e.commit(t3, Timestamp(3), StepLogging::OFF).unwrap();
        assert_eq!(
            e.read_tuple(rid).unwrap().deletion_ts().unwrap(),
            Timestamp(3)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
