//! The versioned transaction engine for one site (thesis §6.1.4).
//!
//! Wraps the buffer pool with the timestamp/versioning layer:
//!
//! * `insert` writes the tuple immediately with an `UNCOMMITTED` insertion
//!   timestamp and records it in the transaction's insertion list;
//! * `delete` takes the exclusive page lock and records the tuple in the
//!   deletion list — *no page change happens until commit*, because the
//!   deletion timestamp is unknown before then (§4.1);
//! * `commit` assigns the coordinator-supplied commit time to every listed
//!   tuple in place, then releases locks;
//! * `abort` physically removes the inserted tuples (from the insertion
//!   list when logless; by walking the undo chain with CLRs when the
//!   log-based baseline is active).
//!
//! The engine is recovery-mechanism-agnostic at this level: with
//! `logging = true` it maintains a full ARIES write-ahead log (the
//! baseline); with `logging = false` it maintains no log at all and relies
//! on HARBOR's checkpoint + replica-query recovery, driven by the `harbor`
//! crate through the recovery primitives at the bottom of this file.

use crate::catalog::{Catalog, TableDef};
use crate::deletion_log::DeletionLog;
use crate::index::KeyIndex;
use crate::txn::{LocalTxnStatus, TxnState};
use harbor_common::codec::Encoder;
use harbor_common::{
    DbError, DbResult, FieldType, Metrics, RecordId, SiteId, StorageConfig, TableId, Timestamp,
    TransactionId, Tuple, Value,
};
use harbor_storage::lock::DeadlockPolicy;
use harbor_storage::{
    BufferPool, Checkpointer, DiskFaultPlan, LockManager, LockMode, PagePolicy, PoolRecovery,
    SegmentedHeapFile,
};
use harbor_wal::aries::{self, AriesReport};
use harbor_wal::record::{CkptTxnState, LogPayload, LogRecord, RedoOp, TsField};
use harbor_wal::{GroupCommit, LogManager, Lsn};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Byte offset of the primary key within an encoded tuple (after the two
/// 8-byte version timestamps).
pub const KEY_OFFSET: usize = 16;

/// Logging behaviour for one commit-protocol step at this site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepLogging {
    /// Append a log record for this step.
    pub write: bool,
    /// Force the log through the record before returning (the "FW" of the
    /// protocol figures).
    pub force: bool,
}

impl StepLogging {
    /// No log activity (the optimized protocols).
    pub const OFF: StepLogging = StepLogging {
        write: false,
        force: false,
    };
    /// Plain (unforced) write.
    pub const WRITE: StepLogging = StepLogging {
        write: true,
        force: false,
    };
    /// Forced write.
    pub const FORCE: StepLogging = StepLogging {
        write: true,
        force: true,
    };
}

/// Construction options for an [`Engine`].
#[derive(Clone, Debug)]
pub struct EngineOptions {
    pub site: SiteId,
    pub storage: StorageConfig,
    /// `true` = maintain the ARIES write-ahead log (baseline mode).
    pub logging: bool,
    pub group_commit: GroupCommit,
    pub policy: PagePolicy,
    /// Deadlock resolution: the thesis' timeouts, or the waits-for-graph
    /// detector (extension).
    pub deadlock: DeadlockPolicy,
    /// Seeded disk-fault plan armed on every heap file of the site (chaos
    /// harness). `None` = pristine disks.
    pub disk_faults: Option<Arc<DiskFaultPlan>>,
}

impl EngineOptions {
    pub fn harbor(site: SiteId, storage: StorageConfig) -> Self {
        EngineOptions {
            site,
            storage,
            logging: false,
            group_commit: GroupCommit::enabled(),
            policy: PagePolicy::steal_no_force(),
            deadlock: DeadlockPolicy::Timeout,
            disk_faults: None,
        }
    }

    pub fn aries(site: SiteId, storage: StorageConfig) -> Self {
        EngineOptions {
            site,
            storage,
            logging: true,
            group_commit: GroupCommit::enabled(),
            policy: PagePolicy::steal_no_force(),
            deadlock: DeadlockPolicy::Timeout,
            disk_faults: None,
        }
    }

    /// Arms a seeded disk-fault plan on every heap file of the site.
    pub fn with_disk_faults(mut self, plan: Arc<DiskFaultPlan>) -> Self {
        self.disk_faults = Some(plan);
        self
    }
}

/// The per-site storage + transaction engine.
pub struct Engine {
    site: SiteId,
    dir: PathBuf,
    opts: EngineOptions,
    metrics: Metrics,
    locks: Arc<LockManager>,
    pool: Arc<BufferPool>,
    wal: Option<Arc<LogManager>>,
    checkpointer: Arc<Checkpointer>,
    catalog: Catalog,
    txns: Mutex<HashMap<TransactionId, TxnState>>,
    /// Commits apply timestamps under a read guard; checkpoints take the
    /// write guard while choosing `T` and snapshotting dirty pages, so the
    /// set of included commits is well-defined.
    commit_gate: RwLock<()>,
    /// Largest commit time fully applied at this site.
    applied_clock: AtomicU64,
    indexes: Mutex<HashMap<TableId, Arc<KeyIndex>>>,
    /// Per-table deletion logs (the §5.2-footnote deletion vector).
    deletion_logs: Mutex<HashMap<TableId, Arc<DeletionLog>>>,
    /// Transactions poisoned to vote NO at prepare (fault injection).
    poisoned: Mutex<HashSet<TransactionId>>,
}

impl Engine {
    /// Opens (or initializes) a site's engine rooted at `dir`. Does not run
    /// restart recovery — call [`Engine::aries_restart`] (baseline) or drive
    /// HARBOR recovery from the `harbor` crate.
    pub fn open(dir: impl AsRef<Path>, opts: EngineOptions) -> DbResult<Arc<Engine>> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let metrics = Metrics::new();
        let locks = Arc::new(LockManager::with_policy(
            opts.storage.lock_timeout,
            opts.deadlock,
            metrics.clone(),
        ));
        let pool = Arc::new(BufferPool::new(
            opts.storage.buffer_pool_pages,
            locks.clone(),
            opts.policy,
            metrics.clone(),
        ));
        let wal = if opts.logging {
            let wal = Arc::new(LogManager::open(
                dir.join("wal.log"),
                opts.group_commit,
                opts.storage.disk,
                metrics.clone(),
            )?);
            pool.attach_wal(wal.clone());
            Some(wal)
        } else {
            None
        };
        let checkpointer = Arc::new(Checkpointer::open(
            dir.join("checkpoint"),
            opts.storage.disk,
        )?);
        let catalog = Catalog::open(dir.join("catalog"))?;
        let engine = Engine {
            site: opts.site,
            dir: dir.clone(),
            metrics,
            locks,
            pool,
            wal,
            applied_clock: AtomicU64::new(checkpointer.global().0),
            checkpointer,
            catalog,
            txns: Mutex::new(HashMap::new()),
            commit_gate: RwLock::new(()),
            indexes: Mutex::new(HashMap::new()),
            deletion_logs: Mutex::new(HashMap::new()),
            poisoned: Mutex::new(HashSet::new()),
            opts,
        };
        for def in engine.catalog.all() {
            engine.open_heap(&def, /*cold_index=*/ true)?;
        }
        Ok(Arc::new(engine))
    }

    fn table_path(&self, id: TableId) -> PathBuf {
        self.dir.join(format!("t{}.tbl", id.0))
    }

    fn open_heap(&self, def: &TableDef, cold_index: bool) -> DbResult<()> {
        let path = self.table_path(def.id);
        let heap = if path.exists() {
            SegmentedHeapFile::open(
                &path,
                def.id,
                def.stored_desc(),
                self.opts.storage.segment_pages,
                self.opts.storage.disk,
                self.metrics.clone(),
            )?
        } else {
            SegmentedHeapFile::create(
                &path,
                def.id,
                def.stored_desc(),
                self.opts.storage.segment_pages,
                self.opts.storage.disk,
                self.metrics.clone(),
            )?
        };
        if let Some(plan) = &self.opts.disk_faults {
            heap.arm_disk_faults(plan.clone());
        }
        self.pool.register_table(Arc::new(heap));
        let idx = if cold_index {
            KeyIndex::cold(def.id, KEY_OFFSET)
        } else {
            KeyIndex::fresh(def.id, KEY_OFFSET)
        };
        self.indexes.lock().insert(def.id, Arc::new(idx));
        let dlog = if cold_index {
            DeletionLog::cold(def.id)
        } else {
            DeletionLog::fresh(def.id)
        };
        self.deletion_logs.lock().insert(def.id, Arc::new(dlog));
        Ok(())
    }

    /// Creates a table. The first user field must be the `Int64` tuple id.
    pub fn create_table(
        &self,
        name: &str,
        user_fields: Vec<(String, FieldType)>,
    ) -> DbResult<TableDef> {
        let def = self.catalog.add(name, user_fields)?;
        self.open_heap(&def, /*cold_index=*/ false)?;
        Ok(def)
    }

    pub fn table_def(&self, name: &str) -> Option<TableDef> {
        self.catalog.by_name(name)
    }

    pub fn table_def_by_id(&self, id: TableId) -> Option<TableDef> {
        self.catalog.by_id(id)
    }

    pub fn tables(&self) -> Vec<TableDef> {
        self.catalog.all()
    }

    pub fn site(&self) -> SiteId {
        self.site
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    pub fn locks(&self) -> &Arc<LockManager> {
        &self.locks
    }

    pub fn wal(&self) -> Option<&Arc<LogManager>> {
        self.wal.as_ref()
    }

    pub fn is_logging(&self) -> bool {
        self.wal.is_some()
    }

    pub fn checkpointer(&self) -> &Arc<Checkpointer> {
        &self.checkpointer
    }

    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The site's disk-fault plan, if one was armed at open.
    pub fn disk_fault_plan(&self) -> Option<Arc<DiskFaultPlan>> {
        self.opts.disk_faults.clone()
    }

    /// The table's deletion log (§5.2-footnote deletion vector).
    pub fn deletion_log(&self, table: TableId) -> DbResult<Arc<DeletionLog>> {
        self.deletion_logs
            .lock()
            .get(&table)
            .cloned()
            .ok_or(DbError::NoSuchTable(table))
    }

    pub fn index(&self, table: TableId) -> DbResult<Arc<KeyIndex>> {
        self.indexes
            .lock()
            .get(&table)
            .cloned()
            .ok_or(DbError::NoSuchTable(table))
    }

    /// This site's view of "now": one past the largest applied commit time.
    pub fn local_now(&self) -> Timestamp {
        Timestamp(self.applied_clock.load(Ordering::SeqCst) + 1)
    }

    /// Advances the applied clock (workers learn times from coordinators).
    pub fn advance_applied_clock(&self, t: Timestamp) {
        self.applied_clock.fetch_max(t.0, Ordering::SeqCst);
    }

    // ------------------------------------------------------------------
    // Transaction lifecycle
    // ------------------------------------------------------------------

    /// Registers a new transaction.
    pub fn begin(&self, tid: TransactionId) -> DbResult<()> {
        let mut txns = self.txns.lock();
        if txns.contains_key(&tid) {
            return Err(DbError::protocol(format!("{tid} already begun")));
        }
        let mut st = TxnState::new();
        if let Some(wal) = &self.wal {
            st.last_lsn = wal.append(&LogRecord::new(tid, Lsn::NONE, LogPayload::Begin));
        }
        txns.insert(tid, st);
        Ok(())
    }

    pub fn txn_status(&self, tid: TransactionId) -> Option<LocalTxnStatus> {
        self.txns.lock().get(&tid).map(|s| s.status)
    }

    pub fn active_txns(&self) -> Vec<TransactionId> {
        self.txns.lock().keys().copied().collect()
    }

    /// Marks `tid` to vote NO at its next prepare (fault injection for the
    /// abort paths of the commit protocols).
    pub fn poison(&self, tid: TransactionId) {
        self.poisoned.lock().insert(tid);
    }

    /// Appends an `Update` log record for `tid`, maintaining its chain.
    fn log_update(&self, tid: TransactionId, op: &RedoOp) -> Lsn {
        let wal = self.wal.as_ref().expect("log_update requires logging");
        let mut txns = self.txns.lock();
        let st = txns.get_mut(&tid).expect("logged op for unknown txn");
        let lsn = wal.append(&LogRecord::new(
            tid,
            st.last_lsn,
            LogPayload::Update(op.clone()),
        ));
        st.last_lsn = lsn;
        lsn
    }

    /// Encodes a stored tuple for `table`.
    fn encode_tuple(&self, table: &SegmentedHeapFile, tuple: &Tuple) -> DbResult<Vec<u8>> {
        let mut enc = Encoder::with_capacity(table.tuple_size());
        tuple.write_fixed(table.desc(), &mut enc)?;
        Ok(enc.into_bytes().to_vec())
    }

    /// Inserts a tuple for `tid` with an `UNCOMMITTED` insertion timestamp.
    pub fn insert(
        &self,
        tid: TransactionId,
        table_id: TableId,
        user_values: Vec<Value>,
    ) -> DbResult<RecordId> {
        let table = self.pool.table(table_id)?;
        let key = user_values
            .first()
            .ok_or_else(|| DbError::Schema("empty tuple".into()))?
            .as_i64()?;
        let tuple = Tuple::versioned(Timestamp::UNCOMMITTED, Timestamp::ZERO, user_values);
        let bytes = self.encode_tuple(&table, &tuple)?;
        let rid = if self.wal.is_some() {
            let mut logger = |op: &RedoOp| self.log_update(tid, op);
            self.pool
                .insert_tuple_bytes_logged(Some(tid), table_id, &bytes, Some(&mut logger))?
        } else {
            self.pool.insert_tuple_bytes(Some(tid), table_id, &bytes)?
        };
        self.index(table_id)?.insert(key, rid);
        let seg = table
            .segment_of_page(rid.page.page_no)
            .map(|s| s.0)
            .unwrap_or(0);
        let mut txns = self.txns.lock();
        let st = txns.get_mut(&tid).ok_or(DbError::UnknownTransaction(tid))?;
        st.note_insert(rid, key, seg);
        Ok(rid)
    }

    /// Registers a deletion: exclusive page lock now, deletion timestamp at
    /// commit (§4.1 — "there is no reason for the database to write
    /// uncommitted deletions").
    pub fn delete(&self, tid: TransactionId, rid: RecordId) -> DbResult<()> {
        self.pool.lock_page(tid, rid.page, LockMode::Exclusive)?;
        // Validate under the lock: tuple exists and is not already deleted.
        let (ins, del) = self.pool.with_page(None, rid.page, |p| {
            Ok((
                p.timestamp(rid.slot, TsField::Insertion)?,
                p.timestamp(rid.slot, TsField::Deletion)?,
            ))
        })?;
        if del != Timestamp::ZERO {
            return Err(DbError::Constraint(format!("{rid} is already deleted")));
        }
        let mut txns = self.txns.lock();
        let st = txns.get_mut(&tid).ok_or(DbError::UnknownTransaction(tid))?;
        if ins.is_uncommitted() && !st.insertions.iter().any(|(r, _)| *r == rid) {
            return Err(DbError::Internal(format!(
                "{rid} is uncommitted and not owned by {tid}"
            )));
        }
        if st.deletions.contains(&rid) {
            return Err(DbError::Constraint(format!("{rid} deleted twice by {tid}")));
        }
        st.note_delete(rid);
        Ok(())
    }

    /// Updates a tuple: a deletion of the old version plus an insertion of
    /// the new one (§3.3).
    pub fn update(
        &self,
        tid: TransactionId,
        rid: RecordId,
        new_user_values: Vec<Value>,
    ) -> DbResult<RecordId> {
        self.delete(tid, rid)?;
        self.insert(tid, rid.page.table, new_user_values)
    }

    /// Reads the stored tuple at `rid` (lock-free; callers needing
    /// transactional isolation lock the page first).
    pub fn read_tuple(&self, rid: RecordId) -> DbResult<Tuple> {
        let table = self.pool.table(rid.page.table)?;
        let bytes = self.pool.read_tuple_bytes(None, rid)?;
        let mut dec = harbor_common::codec::Decoder::new(&bytes);
        Tuple::read_fixed(table.desc(), &mut dec)
    }

    // ------------------------------------------------------------------
    // Commit processing (driven by the distributed protocols)
    // ------------------------------------------------------------------

    /// First-phase vote. `commit_bound` is the coordinator's clock when it
    /// sent PREPARE — the eventual commit time cannot be below it, which
    /// checkpoints rely on. An `Err` is a NO vote; the caller then aborts.
    pub fn prepare(
        &self,
        tid: TransactionId,
        commit_bound: Timestamp,
        log: StepLogging,
    ) -> DbResult<()> {
        if self.poisoned.lock().remove(&tid) {
            return Err(DbError::Constraint(format!(
                "{tid} failed constraint check"
            )));
        }
        let mut txns = self.txns.lock();
        let st = txns.get_mut(&tid).ok_or(DbError::UnknownTransaction(tid))?;
        if st.status != LocalTxnStatus::Pending {
            return Err(DbError::protocol(format!(
                "prepare in state {:?}",
                st.status
            )));
        }
        st.status = LocalTxnStatus::Prepared;
        st.bound_commit_time(commit_bound);
        if let (Some(wal), true) = (&self.wal, log.write) {
            let rec = LogRecord::new(
                tid,
                st.last_lsn,
                LogPayload::Prepare {
                    coordinator: tid.coordinator(),
                },
            );
            st.last_lsn = wal.append(&rec);
            let lsn = st.last_lsn;
            drop(txns);
            if log.force {
                wal.force(lsn)?;
            }
        }
        Ok(())
    }

    /// Enters the prepared-to-commit state with the assigned commit time
    /// (3PC second phase).
    pub fn prepare_to_commit(
        &self,
        tid: TransactionId,
        commit_time: Timestamp,
        log: StepLogging,
    ) -> DbResult<()> {
        let mut txns = self.txns.lock();
        let st = txns.get_mut(&tid).ok_or(DbError::UnknownTransaction(tid))?;
        match st.status {
            LocalTxnStatus::Prepared | LocalTxnStatus::PreparedToCommit(_) => {}
            s => {
                return Err(DbError::protocol(format!(
                    "prepare-to-commit in state {s:?}"
                )))
            }
        }
        st.status = LocalTxnStatus::PreparedToCommit(commit_time);
        st.bound_commit_time(commit_time);
        if let (Some(wal), true) = (&self.wal, log.write) {
            let rec = LogRecord::new(
                tid,
                st.last_lsn,
                LogPayload::PrepareToCommit { commit_time },
            );
            st.last_lsn = wal.append(&rec);
            let lsn = st.last_lsn;
            drop(txns);
            if log.force {
                wal.force(lsn)?;
            }
        }
        Ok(())
    }

    /// Commits: assigns `commit_time` to every tuple in the insertion and
    /// deletion lists, writes the commit record per `log`, honours a FORCE
    /// paging policy, releases locks and forgets the transaction.
    pub fn commit(
        &self,
        tid: TransactionId,
        commit_time: Timestamp,
        log: StepLogging,
    ) -> DbResult<()> {
        let (insertions, deletions) = {
            let mut txns = self.txns.lock();
            let st = txns.get_mut(&tid).ok_or(DbError::UnknownTransaction(tid))?;
            st.status = LocalTxnStatus::Committing(commit_time);
            st.bound_commit_time(commit_time);
            (st.insertions.clone(), st.deletions.clone())
        };
        {
            let _gate = self.commit_gate.read();
            for (rid, _) in &insertions {
                self.set_ts_logged(tid, *rid, TsField::Insertion, commit_time)?;
            }
            for rid in &deletions {
                self.set_ts_logged(tid, *rid, TsField::Deletion, commit_time)?;
                if let Ok(dlog) = self.deletion_log(rid.page.table) {
                    dlog.note(*rid, commit_time);
                }
            }
            self.applied_clock
                .fetch_max(commit_time.0, Ordering::SeqCst);
        }
        if let (Some(wal), true) = (&self.wal, log.write) {
            let last = self
                .txns
                .lock()
                .get(&tid)
                .map(|s| s.last_lsn)
                .unwrap_or(Lsn::NONE);
            let lsn = wal.append(&LogRecord::new(
                tid,
                last,
                LogPayload::Commit { commit_time },
            ));
            if let Some(st) = self.txns.lock().get_mut(&tid) {
                st.last_lsn = lsn;
            }
            if log.force {
                wal.force(lsn)?;
            }
        }
        if self.pool.policy().force {
            let mut pages: Vec<_> = insertions
                .iter()
                .map(|(r, _)| r.page)
                .chain(deletions.iter().map(|r| r.page))
                .collect();
            pages.sort();
            pages.dedup();
            for pid in pages {
                self.pool.flush_page(pid)?;
            }
        }
        if let Some(wal) = &self.wal {
            let last = self
                .txns
                .lock()
                .get(&tid)
                .map(|s| s.last_lsn)
                .unwrap_or(Lsn::NONE);
            wal.append(&LogRecord::new(
                tid,
                last,
                LogPayload::End {
                    outcome: harbor_wal::TxnOutcome::Committed,
                },
            ));
        }
        self.txns.lock().remove(&tid);
        self.locks.release_all(tid);
        self.metrics.add_commits(1);
        Ok(())
    }

    fn set_ts_logged(
        &self,
        tid: TransactionId,
        rid: RecordId,
        field: TsField,
        ts: Timestamp,
    ) -> DbResult<()> {
        if self.wal.is_some() {
            let mut logger = |op: &RedoOp| self.log_update(tid, op);
            self.pool
                .set_timestamp_logged(Some(tid), rid, field, ts, Some(&mut logger))
        } else {
            self.pool.set_timestamp(Some(tid), rid, field, ts)
        }
    }

    /// Aborts: rolls back the transaction's changes, releases locks and
    /// forgets it. Logless rollback uses the insertion list; the log-based
    /// baseline walks the undo chain writing CLRs.
    pub fn abort(&self, tid: TransactionId, log: StepLogging) -> DbResult<()> {
        let (insertions, deletions_empty, last_lsn) = {
            let mut txns = self.txns.lock();
            let Some(st) = txns.get_mut(&tid) else {
                // Unknown transaction: nothing to roll back (workers that
                // crashed and recovered answer "abort" for unknown txns).
                return Ok(());
            };
            st.status = LocalTxnStatus::Aborting;
            (st.insertions.clone(), st.deletions.is_empty(), st.last_lsn)
        };
        if insertions.is_empty() && deletions_empty {
            // Read-only: "the coordinator merely needs to notify the
            // workers to release any system resources and locks" (§4.3) —
            // no log records, no rollback work.
            self.txns.lock().remove(&tid);
            self.locks.release_all(tid);
            self.metrics.add_aborts(1);
            return Ok(());
        }
        if let Some(wal) = &self.wal {
            if log.write {
                let lsn = wal.append(&LogRecord::new(tid, last_lsn, LogPayload::Abort));
                if log.force {
                    wal.force(lsn)?;
                }
            }
            self.undo_chain(tid, last_lsn)?;
        } else {
            // Logless rollback: remove newly inserted tuples; deletions need
            // no undo because their timestamps were never written (§4.1).
            for (rid, _) in insertions.iter().rev() {
                self.pool.remove_tuple(Some(tid), *rid)?;
            }
        }
        for (rid, key) in &insertions {
            if let Ok(idx) = self.index(rid.page.table) {
                idx.remove(*key, *rid);
            }
        }
        if let Some(wal) = &self.wal {
            let last = self
                .txns
                .lock()
                .get(&tid)
                .map(|s| s.last_lsn)
                .unwrap_or(last_lsn);
            wal.append(&LogRecord::new(
                tid,
                last,
                LogPayload::End {
                    outcome: harbor_wal::TxnOutcome::Aborted,
                },
            ));
        }
        self.txns.lock().remove(&tid);
        self.locks.release_all(tid);
        self.metrics.add_aborts(1);
        Ok(())
    }

    /// Walks one transaction's log chain backwards, applying inverses and
    /// writing CLRs (normal-processing rollback under the baseline).
    fn undo_chain(&self, tid: TransactionId, from: Lsn) -> DbResult<()> {
        let wal = self.wal.as_ref().expect("undo requires logging");
        let mut cursor = from;
        while !cursor.is_none() {
            let (rec, _) = wal.read_record(cursor)?;
            match rec.payload {
                LogPayload::Update(op) => {
                    let inverse = op.inverse();
                    let clr_lsn = {
                        let mut txns = self.txns.lock();
                        let st = txns.get_mut(&tid).ok_or(DbError::UnknownTransaction(tid))?;
                        let lsn = wal.append(&LogRecord::new(
                            tid,
                            st.last_lsn,
                            LogPayload::Clr {
                                redo: inverse.clone(),
                                undo_next: rec.prev_lsn,
                            },
                        ));
                        st.last_lsn = lsn;
                        lsn
                    };
                    self.pool.apply_redo(&inverse, clr_lsn)?;
                    cursor = rec.prev_lsn;
                }
                LogPayload::Clr { undo_next, .. } => cursor = undo_next,
                _ => cursor = rec.prev_lsn,
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Checkpointing
    // ------------------------------------------------------------------

    /// Runs one HARBOR checkpoint (Fig 3-2). Picks the largest safe `T`:
    /// the applied clock, clamped below every in-flight commit bound. Also
    /// records, per table, the lowest segment that may hold uncommitted
    /// tuples (Phase 1's scan start). Returns the checkpoint time.
    pub fn checkpoint(&self) -> DbResult<Timestamp> {
        if self.checkpointer.is_suspended() {
            return Ok(self.checkpointer.global());
        }
        let (t, snapshot, scan_start) = {
            let _gate = self.commit_gate.write();
            let mut t = self.local_now().prev();
            // harbor-lint: allow(lock-across-blocking) — the checkpoint must freeze commits (gate) while snapshotting txn state; gate→txns is the only nesting order anywhere
            let txns = self.txns.lock();
            let mut min_seg: HashMap<TableId, u32> = HashMap::new();
            for st in txns.values() {
                if let Some(b) = st.commit_bound {
                    t = t.min(b.prev());
                }
                for (table, seg) in &st.min_insert_segment {
                    min_seg
                        .entry(*table)
                        .and_modify(|s| *s = (*s).min(*seg))
                        .or_insert(*seg);
                }
            }
            drop(txns);
            let snapshot = self.pool.dirty_pages();
            let mut scan_start = Vec::new();
            for id in self.pool.table_ids() {
                let table = self.pool.table(id)?;
                let last = table.last_segment().0;
                let s = min_seg.get(&id).copied().unwrap_or(last).min(last);
                scan_start.push((id, s));
            }
            (t, snapshot, scan_start)
        };
        // Note: the flush must happen even when `t` has not advanced past
        // the recorded checkpoint — dirty pages can carry data with *old*
        // commit timestamps (bulk loads, recovery copies), and the existing
        // checkpoint's durability contract covers them.
        self.checkpointer.checkpoint(
            &self.pool,
            t.max(self.checkpointer.global()),
            snapshot,
            scan_start,
        )
    }

    /// Appends an ARIES fuzzy checkpoint record and updates the master
    /// record (baseline mode).
    pub fn log_checkpoint(&self) -> DbResult<()> {
        let Some(wal) = &self.wal else {
            return Err(DbError::internal("log_checkpoint requires logging"));
        };
        let att = {
            let txns = self.txns.lock();
            txns.iter()
                .map(|(tid, st)| {
                    let state = match st.status {
                        LocalTxnStatus::Pending => CkptTxnState::Active,
                        LocalTxnStatus::Prepared | LocalTxnStatus::PreparedToCommit(_) => {
                            CkptTxnState::Prepared
                        }
                        LocalTxnStatus::Committing(_) => CkptTxnState::Committing,
                        LocalTxnStatus::Aborting => CkptTxnState::Aborting,
                    };
                    (*tid, state, st.last_lsn)
                })
                .collect()
        };
        let dpt = self.pool.dirty_pages_with_reclsn();
        let ckpt_tid = TransactionId::from_parts(self.site, 0);
        let lsn = wal.append(&LogRecord::new(
            ckpt_tid,
            Lsn::NONE,
            LogPayload::Checkpoint { att, dpt },
        ));
        wal.force(lsn)?;
        wal.write_master(lsn)?;
        Ok(())
    }

    /// Runs ARIES restart recovery over the local log (baseline mode),
    /// registering in-doubt transactions and invalidating indexes.
    pub fn aries_restart(&self) -> DbResult<AriesReport> {
        let Some(wal) = &self.wal else {
            return Err(DbError::internal("aries_restart requires logging"));
        };
        let mut storage = PoolRecovery(&self.pool);
        let report = aries::recover(wal, &mut storage)?;
        let mut txns = self.txns.lock();
        for tid in &report.in_doubt {
            let mut st = TxnState::new();
            st.status = LocalTxnStatus::Prepared;
            txns.insert(*tid, st);
        }
        drop(txns);
        for idx in self.indexes.lock().values() {
            idx.invalidate();
        }
        for dlog in self.deletion_logs.lock().values() {
            dlog.invalidate();
        }
        Ok(report)
    }

    // ------------------------------------------------------------------
    // Recovery primitives (used by HARBOR's three-phase algorithm)
    // ------------------------------------------------------------------

    /// Physically inserts an already-committed tuple (recovery Phases 2/3:
    /// `INSERT LOCALLY` copies replica data without timestamp
    /// reassignment). Updates segment annotations and the index.
    pub fn insert_recovered(&self, table_id: TableId, tuple: &Tuple) -> DbResult<RecordId> {
        let table = self.pool.table(table_id)?;
        let ins = tuple.insertion_ts()?;
        let del = tuple.deletion_ts()?;
        if !ins.is_valid_commit_time() {
            return Err(DbError::internal(
                "insert_recovered requires a committed insertion timestamp",
            ));
        }
        let bytes = self.encode_tuple(&table, tuple)?;
        let rid = self.pool.insert_tuple_bytes(None, table_id, &bytes)?;
        table.note_insert_commit(rid.page.page_no, ins);
        if del.is_valid_commit_time() {
            table.note_delete(rid.page.page_no, del);
            self.deletion_log(table_id)?.note(rid, del);
        }
        let key = self.index(table_id)?.key_from_bytes(&bytes);
        self.index(table_id)?.insert(key, rid);
        Ok(rid)
    }

    /// A per-thread recovered-tuple inserter for `table_id`: same semantics
    /// as [`insert_recovered`](Self::insert_recovered), but appends through
    /// a private [`harbor_storage::BulkAppender`] page cursor so several
    /// parallel Phase-2 appliers don't contend on the shared insert hint or
    /// page latches, and caches the table/index/deletion-log lookups.
    pub fn recovered_inserter(&self, table_id: TableId) -> DbResult<RecoveredInserter<'_>> {
        Ok(RecoveredInserter {
            engine: self,
            table: self.pool.table(table_id)?,
            appender: self.pool.bulk_appender(table_id)?,
            index: self.index(table_id)?,
            dlog: self.deletion_log(table_id)?,
        })
    }

    /// Physically removes a tuple (recovery Phase 1's `DELETE LOCALLY`).
    pub fn remove_physical(&self, rid: RecordId) -> DbResult<()> {
        let old_del = self.pool.read_timestamp(rid, TsField::Deletion)?;
        let bytes = self.pool.remove_tuple(None, rid)?;
        if let Ok(idx) = self.index(rid.page.table) {
            let key = idx.key_from_bytes(&bytes);
            idx.remove(key, rid);
        }
        if let Ok(dlog) = self.deletion_log(rid.page.table) {
            dlog.unnote(rid, old_del);
        }
        Ok(())
    }

    /// Overwrites a deletion timestamp in place (Phase 1's undelete writes
    /// zero; Phases 2/3 copy the buddy's deletion times).
    pub fn set_deletion(&self, rid: RecordId, ts: Timestamp) -> DbResult<()> {
        let old = self.pool.read_timestamp(rid, TsField::Deletion)?;
        self.pool.set_timestamp(None, rid, TsField::Deletion, ts)?;
        if let Ok(dlog) = self.deletion_log(rid.page.table) {
            dlog.unnote(rid, old);
            dlog.note(rid, ts);
        }
        Ok(())
    }
}

/// See [`Engine::recovered_inserter`].
pub struct RecoveredInserter<'a> {
    engine: &'a Engine,
    table: Arc<SegmentedHeapFile>,
    appender: harbor_storage::BulkAppender,
    index: Arc<KeyIndex>,
    dlog: Arc<DeletionLog>,
}

impl RecoveredInserter<'_> {
    /// Physically inserts an already-committed tuple (recovery Phase 2's
    /// `INSERT LOCALLY`), latch-only.
    pub fn insert(&mut self, tuple: &Tuple) -> DbResult<RecordId> {
        let ins = tuple.insertion_ts()?;
        let del = tuple.deletion_ts()?;
        if !ins.is_valid_commit_time() {
            return Err(DbError::internal(
                "insert_recovered requires a committed insertion timestamp",
            ));
        }
        let bytes = self.engine.encode_tuple(&self.table, tuple)?;
        let rid = self.appender.insert(&bytes)?;
        self.table.note_insert_commit(rid.page.page_no, ins);
        if del.is_valid_commit_time() {
            self.table.note_delete(rid.page.page_no, del);
            self.dlog.note(rid, del);
        }
        let key = self.index.key_from_bytes(&bytes);
        self.index.insert(key, rid);
        Ok(rid)
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("site", &self.site)
            .field("dir", &self.dir)
            .field("logging", &self.is_logging())
            .finish()
    }
}
