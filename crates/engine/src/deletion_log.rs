//! The deletion-vector alternative from the §5.2 footnote.
//!
//! The thesis observes that recovery queries with `deletion_time > T`
//! predicates must sequentially scan every segment whose `Tmax-deletion`
//! postdates `T`, and sketches "a separate deletion vector with the deletion
//! times" that recovery could scan instead — trading a little runtime
//! bookkeeping for recovery time. This module implements that idea as a
//! per-table **deletion log**: an ordered map `deletion_time → record ids`,
//! maintained whenever a deletion timestamp is written and consulted by the
//! worker's remote-scan fast path for `ids_and_deletions_only` recovery
//! queries. The ablation bench (`ablations.rs` #4) measures what it buys.
//!
//! Like the primary-key index, the log is volatile: it reopens *cold* after
//! a restart and rebuilds lazily with one `SEE DELETED` scan, so recovery
//! on the crashed site never depends on it — only the (live) recovery
//! buddies answer deletion queries, and their logs are warm.

use harbor_common::{DbResult, RecordId, TableId, Timestamp};
use harbor_storage::BufferPool;
use harbor_wal::record::TsField;
use parking_lot::Mutex;
use std::collections::BTreeMap;

struct Inner {
    built: bool,
    /// deletion time → tuples deleted at that time.
    by_time: BTreeMap<u64, Vec<RecordId>>,
}

/// Per-table ordered log of deletion timestamps.
pub struct DeletionLog {
    table: TableId,
    inner: Mutex<Inner>,
}

impl DeletionLog {
    /// Fresh (empty, authoritative) log for a newly created table.
    pub fn fresh(table: TableId) -> Self {
        DeletionLog {
            table,
            inner: Mutex::new(Inner {
                built: true,
                by_time: BTreeMap::new(),
            }),
        }
    }

    /// Cold log for a reopened table; rebuilt on first use.
    pub fn cold(table: TableId) -> Self {
        DeletionLog {
            table,
            inner: Mutex::new(Inner {
                built: false,
                by_time: BTreeMap::new(),
            }),
        }
    }

    pub fn is_built(&self) -> bool {
        self.inner.lock().built
    }

    /// Records that `rid` was deleted at `ts`. No-op while cold.
    pub fn note(&self, rid: RecordId, ts: Timestamp) {
        if !ts.is_valid_commit_time() {
            return;
        }
        let mut g = self.inner.lock();
        if !g.built {
            return;
        }
        let e = g.by_time.entry(ts.0).or_default();
        if !e.contains(&rid) {
            e.push(rid);
        }
    }

    /// Removes a record (undelete in recovery Phase 1, or physical removal
    /// of the tuple). No-op while cold.
    pub fn unnote(&self, rid: RecordId, ts: Timestamp) {
        if !ts.is_valid_commit_time() {
            return;
        }
        let mut g = self.inner.lock();
        if !g.built {
            return;
        }
        if let Some(e) = g.by_time.get_mut(&ts.0) {
            e.retain(|r| *r != rid);
            if e.is_empty() {
                g.by_time.remove(&ts.0);
            }
        }
    }

    /// All `(rid, deletion_time)` pairs with `deletion_time > after`,
    /// rebuilding first if cold. This is the recovery fast path: its cost
    /// is proportional to the number of *deletions*, not to the segments
    /// they touched.
    pub fn deleted_after(
        &self,
        pool: &BufferPool,
        after: Timestamp,
    ) -> DbResult<Vec<(RecordId, Timestamp)>> {
        let mut g = self.inner.lock();
        if !g.built {
            self.build_locked(pool, &mut g)?;
        }
        Ok(g.by_time
            .range(after.0 + 1..)
            .flat_map(|(ts, rids)| rids.iter().map(|r| (*r, Timestamp(*ts))))
            .collect())
    }

    /// Drops contents and marks cold (crash simulation / ARIES restart).
    pub fn invalidate(&self) {
        let mut g = self.inner.lock();
        g.built = false;
        g.by_time.clear();
    }

    fn build_locked(&self, pool: &BufferPool, g: &mut Inner) -> DbResult<()> {
        let table = pool.table(self.table)?;
        let mut by_time: BTreeMap<u64, Vec<RecordId>> = BTreeMap::new();
        for pid in table.all_page_ids() {
            pool.with_page(None, pid, |page| {
                for slot in page.occupied_slots() {
                    let del = page.timestamp(slot, TsField::Deletion)?;
                    if del.is_valid_commit_time() {
                        by_time
                            .entry(del.0)
                            .or_default()
                            .push(RecordId::new(pid, slot));
                    }
                }
                Ok(())
            })?;
        }
        g.by_time = by_time;
        g.built = true;
        Ok(())
    }

    /// Total recorded deletions (tests).
    pub fn len(&self) -> usize {
        self.inner.lock().by_time.values().map(|v| v.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
