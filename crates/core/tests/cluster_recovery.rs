//! End-to-end cluster tests: distributed transactions under all four commit
//! protocols, crash + HARBOR recovery, crash + ARIES recovery, and recovery
//! concurrent with update traffic (the Fig 6-7 scenario in miniature).

use harbor::{Cluster, ClusterConfig, TransportKind};
use harbor_common::{SiteId, Timestamp, Value};
use harbor_dist::{ProtocolKind, UpdateRequest};
use harbor_exec::Expr;
use std::path::PathBuf;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("harbor-cluster-tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn row(id: i64, v: i32) -> Vec<Value> {
    vec![Value::Int64(id), Value::Int32(v)]
}

fn ids_of(rows: &[harbor_common::Tuple]) -> Vec<i64> {
    let mut v: Vec<i64> = rows.iter().map(|t| t.get(2).as_i64().unwrap()).collect();
    v.sort();
    v
}

#[test]
fn insert_transactions_commit_under_every_protocol() {
    for protocol in ProtocolKind::ALL {
        let dir = temp_dir(&format!("all-protocols-{protocol:?}"));
        let cluster = Cluster::build(&dir, ClusterConfig::for_tests(protocol)).unwrap();
        for i in 0..10 {
            cluster.insert_one("sales", row(i, i as i32 * 10)).unwrap();
        }
        let rows = cluster.read_latest("sales").unwrap();
        assert_eq!(rows.len(), 10, "{protocol:?}");
        assert_eq!(ids_of(&rows), (0..10).collect::<Vec<i64>>());
        // Both replicas hold the data.
        for site in cluster.worker_sites() {
            let e = cluster.engine(site).unwrap();
            let def = e.table_def("sales").unwrap();
            let hits = e.index(def.id).unwrap().lookup(e.pool(), 5).unwrap();
            assert_eq!(hits.len(), 1, "{protocol:?} at {site}");
        }
        drop(cluster);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn deletes_and_updates_replicate() {
    let dir = temp_dir("dml");
    let cluster = Cluster::build(&dir, ClusterConfig::for_tests(ProtocolKind::Opt3pc)).unwrap();
    for i in 0..6 {
        cluster.insert_one("sales", row(i, 1)).unwrap();
    }
    // Delete ids >= 4 (stored tuple: key is column 2).
    cluster
        .run_txn(vec![UpdateRequest::DeleteWhere {
            table: "sales".into(),
            pred: Expr::col(2).ge(Expr::lit(4i64)),
        }])
        .unwrap();
    // Update id 2 by key.
    let t_update = cluster
        .run_txn(vec![UpdateRequest::UpdateByKey {
            table: "sales".into(),
            key: 2,
            set: vec![(1, Value::Int32(99))],
        }])
        .unwrap();
    let rows = cluster.read_latest("sales").unwrap();
    assert_eq!(ids_of(&rows), vec![0, 1, 2, 3]);
    let two: Vec<_> = rows
        .iter()
        .filter(|t| t.get(2).as_i64().unwrap() == 2)
        .collect();
    assert_eq!(two[0].get(3), &Value::Int32(99));
    // Time travel: before the update, id 2 still has v = 1.
    let before = cluster.read_historical("sales", t_update.prev()).unwrap();
    let two: Vec<_> = before
        .iter()
        .filter(|t| t.get(2).as_i64().unwrap() == 2)
        .collect();
    assert_eq!(two[0].get(3), &Value::Int32(1));
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_no_vote_aborts_the_transaction_everywhere() {
    for protocol in [ProtocolKind::Trad2pc, ProtocolKind::Opt3pc] {
        let dir = temp_dir(&format!("abort-{protocol:?}"));
        let cluster = Cluster::build(&dir, ClusterConfig::for_tests(protocol)).unwrap();
        cluster.insert_one("sales", row(1, 1)).unwrap();
        // Poison the transaction at one worker: it votes NO.
        let tid = cluster.coordinator().begin().unwrap();
        cluster
            .coordinator()
            .update(
                tid,
                UpdateRequest::Insert {
                    table: "sales".into(),
                    values: row(2, 2),
                },
            )
            .unwrap();
        let victim = cluster.worker_sites()[0];
        cluster.engine(victim).unwrap().poison(tid);
        assert!(cluster.coordinator().commit(tid).is_err());
        // The poisoned insert is nowhere.
        let rows = cluster.read_latest("sales").unwrap();
        assert_eq!(ids_of(&rows), vec![1], "{protocol:?}");
        for site in cluster.worker_sites() {
            let e = cluster.engine(site).unwrap();
            let def = e.table_def("sales").unwrap();
            assert!(e
                .index(def.id)
                .unwrap()
                .lookup(e.pool(), 2)
                .unwrap()
                .is_empty());
            assert_eq!(e.locks().held_count(), 0, "locks leaked at {site}");
        }
        drop(cluster);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn harbor_recovery_after_quiesced_inserts() {
    let dir = temp_dir("harbor-quiesced");
    let cluster = Cluster::build(&dir, ClusterConfig::for_tests(ProtocolKind::Opt3pc)).unwrap();
    // Phase A: inserts reach both workers, then checkpoint everywhere.
    for i in 0..20 {
        cluster.insert_one("sales", row(i, i as i32)).unwrap();
    }
    for site in cluster.worker_sites() {
        cluster.engine(site).unwrap().checkpoint().unwrap();
    }
    // Phase B: more inserts, a delete, and an update — none checkpointed.
    for i in 20..35 {
        cluster.insert_one("sales", row(i, i as i32)).unwrap();
    }
    cluster
        .run_txn(vec![UpdateRequest::DeleteWhere {
            table: "sales".into(),
            pred: Expr::col(2).eq(Expr::lit(3i64)),
        }])
        .unwrap();
    cluster
        .run_txn(vec![UpdateRequest::UpdateByKey {
            table: "sales".into(),
            key: 7,
            set: vec![(1, Value::Int32(777))],
        }])
        .unwrap();
    let expect = cluster.read_latest("sales").unwrap();
    // Crash worker 1 and recover it from worker 2.
    let victim = SiteId(1);
    cluster.crash_worker(victim).unwrap();
    // The cluster still serves reads and writes while the site is down.
    cluster.insert_one("sales", row(100, 100)).unwrap();
    let report = cluster.recover_worker_harbor(victim).unwrap();
    assert!(report.tuples_copied() > 0);
    // The recovered site answers queries identically to the survivor.
    let now = cluster.coordinator().authority().now().prev();
    for site in cluster.worker_sites() {
        let e = cluster.engine(site).unwrap();
        let def = e.table_def("sales").unwrap();
        let mut scan = harbor_exec::SeqScan::new(
            e.pool().clone(),
            def.id,
            harbor_exec::ReadMode::Historical(now),
        )
        .unwrap();
        let rows = harbor_exec::collect(&mut scan).unwrap();
        let mut ids = ids_of(&rows);
        ids.sort();
        let mut expect_ids = ids_of(&expect);
        expect_ids.push(100);
        expect_ids.sort();
        assert_eq!(ids, expect_ids, "site {site}");
        // The update and delete replicated.
        let seven: Vec<_> = rows
            .iter()
            .filter(|t| t.get(2).as_i64().unwrap() == 7)
            .collect();
        assert_eq!(seven[0].get(3), &Value::Int32(777), "site {site}");
        assert!(!ids.contains(&3), "site {site}");
    }
    // New transactions include the recovered site again.
    cluster.insert_one("sales", row(101, 101)).unwrap();
    let e = cluster.engine(victim).unwrap();
    let def = e.table_def("sales").unwrap();
    assert_eq!(
        e.index(def.id)
            .unwrap()
            .lookup(e.pool(), 101)
            .unwrap()
            .len(),
        1
    );
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn aries_recovery_after_quiesced_inserts() {
    let dir = temp_dir("aries-quiesced");
    let cluster = Cluster::build(&dir, ClusterConfig::for_tests(ProtocolKind::Trad2pc)).unwrap();
    for i in 0..25 {
        cluster.insert_one("sales", row(i, i as i32)).unwrap();
    }
    let victim = SiteId(1);
    // Make sure the log is durable (commit records are forced under
    // trad-2PC) and crash before any page flush.
    cluster.crash_worker(victim).unwrap();
    let report = cluster.recover_worker_aries(victim).unwrap();
    assert!(report.redone > 0);
    let e = cluster.engine(victim).unwrap();
    let def = e.table_def("sales").unwrap();
    let mut scan = harbor_exec::SeqScan::new(
        e.pool().clone(),
        def.id,
        harbor_exec::ReadMode::Historical(Timestamp(1000)),
    )
    .unwrap();
    let rows = harbor_exec::collect(&mut scan).unwrap();
    assert_eq!(rows.len(), 25);
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_during_live_insert_traffic() {
    let dir = temp_dir("live-traffic");
    let mut cfg = ClusterConfig::for_tests(ProtocolKind::Opt3pc);
    cfg.checkpoint_every = Some(std::time::Duration::from_millis(100));
    let cluster = std::sync::Arc::new(Cluster::build(&dir, cfg).unwrap());
    for i in 0..30 {
        cluster.insert_one("sales", row(i, 0)).unwrap();
    }
    let victim = SiteId(1);
    cluster.crash_worker(victim).unwrap();
    // Background inserts keep running while the site recovers.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let cluster = cluster.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut i: i64 = 1_000;
            let mut committed = Vec::new();
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                if cluster.insert_one("sales", row(i, 0)).is_ok() {
                    committed.push(i);
                }
                i += 1;
            }
            committed
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(50));
    let report = cluster.recover_worker_harbor(victim).unwrap();
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let committed = writer.join().unwrap();
    assert!(report.tuples_copied() > 0);
    assert!(
        !committed.is_empty(),
        "writer made progress during recovery"
    );
    // Drain: one more insert after recovery.
    cluster.insert_one("sales", row(9_999, 0)).unwrap();
    // The recovered replica agrees with the survivor on all committed ids.
    let now = cluster.coordinator().authority().now().prev();
    let mut per_site: Vec<Vec<i64>> = Vec::new();
    for site in cluster.worker_sites() {
        let e = cluster.engine(site).unwrap();
        let def = e.table_def("sales").unwrap();
        let mut scan = harbor_exec::SeqScan::new(
            e.pool().clone(),
            def.id,
            harbor_exec::ReadMode::Historical(now),
        )
        .unwrap();
        per_site.push(ids_of(&harbor_exec::collect(&mut scan).unwrap()));
    }
    assert_eq!(per_site[0], per_site[1], "replicas diverged");
    for id in &committed {
        assert!(per_site[0].contains(id), "lost committed insert {id}");
    }
    assert!(per_site[0].contains(&9_999));
    cluster.shutdown();
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clusters_run_over_real_tcp() {
    let dir = temp_dir("tcp");
    let mut cfg = ClusterConfig::for_tests(ProtocolKind::Opt3pc);
    cfg.transport = TransportKind::Tcp;
    let cluster = Cluster::build(&dir, cfg).unwrap();
    for i in 0..5 {
        cluster.insert_one("sales", row(i, i as i32)).unwrap();
    }
    assert_eq!(cluster.read_latest("sales").unwrap().len(), 5);
    let victim = SiteId(2);
    cluster.crash_worker(victim).unwrap();
    let report = cluster.recover_worker_harbor(victim).unwrap();
    assert!(report.tuples_copied() >= 5);
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn current_reads_take_locks_and_see_latest_data() {
    let dir = temp_dir("current-reads");
    let cluster = Cluster::build(&dir, ClusterConfig::for_tests(ProtocolKind::Opt3pc)).unwrap();
    for i in 0..5 {
        cluster.insert_one("sales", row(i, i as i32)).unwrap();
    }
    let coordinator = cluster.coordinator();
    // A read-only transaction sees the latest committed state under locks.
    let reader = coordinator.begin().unwrap();
    let rows = coordinator.read_current(reader, "sales", |_| {}).unwrap();
    assert_eq!(rows.len(), 5);
    // While the reader holds its locks, a writer's commit cannot apply on
    // the same pages: the insert transaction times out and aborts.
    let blocked = cluster.insert_one("sales", row(100, 0));
    assert!(blocked.is_err(), "writer should block behind read locks");
    // Releasing the reader (abort = release, §4.3) unblocks writers.
    coordinator.abort(reader).unwrap();
    cluster.insert_one("sales", row(101, 0)).unwrap();
    assert_eq!(cluster.read_latest("sales").unwrap().len(), 6);
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn read_only_transactions_skip_commit_protocol_messages() {
    let dir = temp_dir("ro-cheap");
    let cluster = Cluster::build(&dir, ClusterConfig::for_tests(ProtocolKind::Trad2pc)).unwrap();
    cluster.insert_one("sales", row(1, 1)).unwrap();
    let coordinator = cluster.coordinator();
    let reader = coordinator.begin().unwrap();
    let _ = coordinator.read_current(reader, "sales", |_| {}).unwrap();
    // "For read transactions, the coordinator merely needs to notify the
    // workers to release any system resources and locks" (§4.3): no
    // forced writes happen at commit of a read-only transaction.
    let before = cluster.worker_metrics(SiteId(1)).unwrap().snapshot();
    coordinator.abort(reader).unwrap();
    let after = cluster.worker_metrics(SiteId(1)).unwrap().snapshot();
    assert_eq!(after.since(&before).forced_writes, 0);
    // Locks were released at both replicas.
    for site in cluster.worker_sites() {
        assert_eq!(cluster.engine(site).unwrap().locks().held_count(), 0);
    }
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn historical_reads_do_not_block_behind_writers() {
    let dir = temp_dir("lock-free-reads");
    let cluster = Cluster::build(&dir, ClusterConfig::for_tests(ProtocolKind::Opt3pc)).unwrap();
    for i in 0..5 {
        cluster.insert_one("sales", row(i, 0)).unwrap();
    }
    let snapshot = cluster.coordinator().authority().now().prev();
    // A pending writer holds exclusive page locks on both replicas.
    let writer = cluster.coordinator().begin().unwrap();
    cluster
        .coordinator()
        .update(
            writer,
            UpdateRequest::Insert {
                table: "sales".into(),
                values: row(99, 0),
            },
        )
        .unwrap();
    // Historical reads sail past the locks (§3.3): time-bounded check.
    let t0 = std::time::Instant::now();
    let rows = cluster.read_historical("sales", snapshot).unwrap();
    assert_eq!(rows.len(), 5);
    assert!(
        t0.elapsed() < std::time::Duration::from_millis(100),
        "historical read appears to have waited on locks"
    );
    cluster.coordinator().abort(writer).unwrap();
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
}
