//! Disk-scrub and page-repair tests: a live site detects checksum-corrupt
//! pages, heals them from a resident frame when it can, and otherwise
//! restores their contents with ranged historical queries against a buddy
//! — ending logically identical to a never-corrupted replica.

use harbor::{Cluster, ClusterConfig};
use harbor_common::config::PAGE_SIZE;
use harbor_common::{SiteId, TableId, Value};
use harbor_dist::{ProtocolKind, UpdateRequest};
use harbor_exec::{scan_rids, Expr, ReadMode};
use harbor_storage::{DiskFaultConfig, DiskFaultKind, ScanBounds, TargetedFault};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("harbor-scrub-tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn row(id: i64, v: i32) -> Vec<Value> {
    vec![Value::Int64(id), Value::Int32(v)]
}

/// Inserts `n` rows in batches so the table spans several pages.
fn load(cluster: &Cluster, n: i64) {
    for chunk in (0..n).collect::<Vec<_>>().chunks(50) {
        let ops = chunk
            .iter()
            .map(|i| UpdateRequest::Insert {
                table: "sales".into(),
                values: row(*i, *i as i32),
            })
            .collect();
        cluster.run_txn(ops).unwrap();
    }
}

/// Flips one payload bit of an on-disk page, behind the pool's back.
fn flip_bit_on_disk(dir: &std::path::Path, site: SiteId, table_file: &str, page_no: u32) {
    let path = dir.join(format!("site-{}", site.0)).join(table_file);
    let mut f = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(&path)
        .unwrap();
    let off = page_no as u64 * PAGE_SIZE as u64 + 40;
    f.seek(SeekFrom::Start(off)).unwrap();
    let mut b = [0u8; 1];
    f.read_exact(&mut b).unwrap();
    b[0] ^= 0x10;
    f.seek(SeekFrom::Start(off)).unwrap();
    f.write_all(&b).unwrap();
    f.sync_all().unwrap();
}

/// The site's full version history (insertion/deletion timestamps and all
/// fields, deleted versions included), as a sorted logical multiset.
fn version_history(cluster: &Cluster, site: SiteId) -> Vec<String> {
    let e = cluster.engine(site).unwrap();
    let def = e.table_def("sales").unwrap();
    let rows = scan_rids(
        e.pool(),
        def.id,
        ReadMode::SeeDeleted,
        ScanBounds::all(),
        |_| Ok(true),
    )
    .unwrap();
    let mut v: Vec<String> = rows.iter().map(|(_, t)| t.to_string()).collect();
    v.sort();
    v
}

/// Data pages of the site's table that currently hold tuples, checked
/// directly against the disk image.
fn occupied_disk_pages(cluster: &Cluster, site: SiteId) -> Vec<u32> {
    let e = cluster.engine(site).unwrap();
    let def = e.table_def("sales").unwrap();
    let heap = e.pool().table(def.id).unwrap();
    heap.all_page_ids()
        .iter()
        .filter(|pid| {
            heap.read_page(pid.page_no)
                .map(|p| p.occupied_slots().next().is_some())
                .unwrap_or(false)
        })
        .map(|pid| pid.page_no)
        .collect()
}

fn table_file(cluster: &Cluster, site: SiteId) -> String {
    let e = cluster.engine(site).unwrap();
    let def = e.table_def("sales").unwrap();
    format!("t{}.tbl", def.id.0)
}

/// Drops every resident frame of the table, as if the cache went cold.
fn evict_all(cluster: &Cluster, site: SiteId) {
    let e = cluster.engine(site).unwrap();
    let def = e.table_def("sales").unwrap();
    e.pool().flush_all().unwrap();
    let heap = e.pool().table(def.id).unwrap();
    e.pool().deregister_table(def.id);
    e.pool().register_table(heap);
}

#[test]
fn scrub_self_heals_from_a_resident_frame() {
    let dir = temp_dir("self-heal");
    let cluster = Cluster::build(&dir, ClusterConfig::for_tests(ProtocolKind::Opt3pc)).unwrap();
    load(&cluster, 120);
    let site = SiteId(1);
    cluster.engine(site).unwrap().pool().flush_all().unwrap();
    let pages = occupied_disk_pages(&cluster, site);
    flip_bit_on_disk(&dir, site, &table_file(&cluster, site), pages[0]);

    let report = cluster.scrub_worker(site).unwrap();
    assert_eq!(report.corrupt_pages, 1);
    assert_eq!(
        report.self_healed, 1,
        "frame is resident: no network repair"
    );
    assert_eq!(report.ranges_fetched, 0);
    assert_eq!(report.bytes_shipped, 0);

    // The disk image verifies again and a re-scrub finds nothing.
    let clean = cluster.scrub_worker(site).unwrap();
    assert_eq!(clean.corrupt_pages, 0);
    assert_eq!(
        version_history(&cluster, SiteId(1)),
        version_history(&cluster, SiteId(2))
    );
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scrub_refetches_cold_corrupt_pages_from_a_buddy() {
    let dir = temp_dir("buddy-repair");
    let cluster = Cluster::build(&dir, ClusterConfig::for_tests(ProtocolKind::Opt3pc)).unwrap();
    load(&cluster, 400);
    // Mix in deletions so repaired pages must restore deletion times too.
    cluster
        .run_txn(vec![UpdateRequest::DeleteWhere {
            table: "sales".into(),
            pred: Expr::col(2).lt(Expr::lit(30i64)),
        }])
        .unwrap();
    let site = SiteId(1);
    let reference = version_history(&cluster, SiteId(2));
    assert_eq!(version_history(&cluster, site), reference);

    evict_all(&cluster, site);
    let pages = occupied_disk_pages(&cluster, site);
    assert!(pages.len() >= 2, "load must span several pages");
    let tbl = table_file(&cluster, site);
    flip_bit_on_disk(&dir, site, &tbl, pages[0]);
    flip_bit_on_disk(&dir, site, &tbl, pages[1]);

    let report = cluster.scrub_worker(site).unwrap();
    assert_eq!(report.corrupt_pages, 2);
    assert_eq!(report.self_healed, 0, "frames were evicted");
    assert_eq!(report.pages_refetched, 2);
    assert!(report.ranges_fetched >= 1);
    assert!(report.tuples_reinserted > 0);
    assert!(report.bytes_shipped > 0);

    // The repaired site is logically identical to the untouched replica —
    // including deleted versions and their timestamps.
    assert_eq!(version_history(&cluster, site), reference);
    // The invalidated index rebuilds and serves lookups.
    let e = cluster.engine(site).unwrap();
    let def = e.table_def("sales").unwrap();
    let hits = e.index(def.id).unwrap().lookup(e.pool(), 200).unwrap();
    assert_eq!(hits.len(), 1);
    // The cluster still takes updates afterwards.
    cluster.insert_one("sales", row(1000, 1)).unwrap();
    assert_eq!(
        version_history(&cluster, SiteId(1)),
        version_history(&cluster, SiteId(2))
    );
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression for the fault-during-recovery window: a bit flip lands on a
/// page *while Phase 2 is writing it*. The corrupted image must never be
/// served as repaired state — the next scrub detects it and re-fetches
/// the page from a buddy, and the recovered site converges to the same
/// version history as a never-corrupted replica.
#[test]
fn bit_flip_during_phase2_recovery_is_detected_and_refetched() {
    let dir = temp_dir("phase2-flip");
    let mut cfg = ClusterConfig::for_tests(ProtocolKind::Opt3pc);
    // The first write of data page 1 while the plan is armed lands with
    // one bit inverted — and the plan is armed only around recovery.
    cfg.disk_faults = Some(DiskFaultConfig::targeted_only(
        7,
        vec![TargetedFault {
            table: TableId(1),
            page: 1,
            ordinal: 0,
            kind: DiskFaultKind::BitFlip,
        }],
    ));
    let cluster = Cluster::build(&dir, cfg).unwrap();
    load(&cluster, 200);
    let site = SiteId(1);
    {
        let def = cluster.engine(site).unwrap().table_def("sales").unwrap();
        assert_eq!(def.id, TableId(1), "targeted fault must name the table");
    }
    cluster.crash_worker(site).unwrap();
    // Commits the crashed site misses; Phase 2 re-fetches them.
    for i in 0..50 {
        cluster
            .insert_one("sales", row(1000 + i, i as i32))
            .unwrap();
    }
    cluster.disk_fault_plan(site).unwrap().set_enabled(true);
    cluster.recover_worker_harbor(site).unwrap();
    cluster.disk_fault_plan(site).unwrap().set_enabled(false);
    assert_eq!(
        cluster.disk_faults_injected(),
        1,
        "the targeted flip must have fired during recovery"
    );

    // The flip sits latent on disk under a clean resident frame. Once the
    // cache goes cold the corruption is live — scrub must catch it and
    // restore the page over the network, not trust the disk image.
    evict_all(&cluster, site);
    let report = cluster.scrub_worker(site).unwrap();
    assert!(report.corrupt_pages >= 1, "flip not detected: {report:?}");
    assert_eq!(report.self_healed, 0, "cache was cold");
    assert!(report.pages_refetched >= 1);
    assert_eq!(
        version_history(&cluster, site),
        version_history(&cluster, SiteId(2)),
        "repaired site must match a never-corrupted replica"
    );
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression for the zone-map vs disk-fault plane: a torn write that
/// kills a page's checksum trailer must also invalidate the page's
/// zone-map entry, so admission fast paths never trust timestamp bounds
/// for a page whose disk image no longer verifies.
#[test]
fn torn_page_invalidates_its_zone_map_entry() {
    let dir = temp_dir("zone-invalidate");
    let cluster = Cluster::build(&dir, ClusterConfig::for_tests(ProtocolKind::Opt3pc)).unwrap();
    load(&cluster, 400);
    let site = SiteId(1);
    // Flush stores zone entries under the frame latch, then the cache
    // goes cold so the next read must trust the disk image.
    evict_all(&cluster, site);
    let pages = occupied_disk_pages(&cluster, site);
    let e = cluster.engine(site).unwrap();
    let def = e.table_def("sales").unwrap();
    let heap = e.pool().table(def.id).unwrap();
    assert!(
        heap.zone_entry(pages[0]).is_some(),
        "flush must have built a zone entry for an occupied page"
    );

    flip_bit_on_disk(&dir, site, &table_file(&cluster, site), pages[0]);
    assert!(
        heap.read_page(pages[0]).is_err(),
        "flipped bit must fail checksum verification"
    );
    assert!(
        heap.zone_entry(pages[0]).is_none(),
        "corrupt page must drop its zone-map entry"
    );

    // Scrub restores the page from a buddy; the site converges and the
    // zone map repopulates lazily on the next flush of the healed frame.
    let report = cluster.scrub_worker(site).unwrap();
    assert_eq!(report.corrupt_pages, 1);
    assert_eq!(
        version_history(&cluster, site),
        version_history(&cluster, SiteId(2))
    );
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scrub_without_a_live_buddy_reports_unrecoverable() {
    let dir = temp_dir("no-buddy");
    let cluster = Cluster::build(&dir, ClusterConfig::for_tests(ProtocolKind::Opt3pc)).unwrap();
    load(&cluster, 400);
    let site = SiteId(1);
    evict_all(&cluster, site);
    let pages = occupied_disk_pages(&cluster, site);
    flip_bit_on_disk(&dir, site, &table_file(&cluster, site), pages[0]);
    cluster.crash_worker(SiteId(2)).unwrap();

    let err = cluster.scrub_worker(site).unwrap_err();
    assert!(
        !err.is_timeout() && !err.is_disconnect(),
        "a failed repair is not a liveness problem: {err}"
    );
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
}
