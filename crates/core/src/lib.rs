//! # HARBOR — High Availability and Replication-Based Online Recovery
//!
//! A from-scratch Rust reproduction of Edmond Lau's HARBOR (MIT, 2006; the
//! system behind "An Integrated Approach to Recovery and High Availability
//! in an Updatable, Distributed Data Warehouse"): an updatable, replicated
//! data warehouse whose crash recovery is performed not from a log but by
//! *querying remote replicas* for missing updates.
//!
//! The big idea: a highly available warehouse already replicates data
//! (K-safety) and already supports lock-free *historical queries* over its
//! versioned, timestamped tuples. Put together, a crashed site can:
//!
//! 1. roll its local state back to its last checkpoint (two local queries);
//! 2. catch up to a high water mark by historical queries against live
//!    replicas — with **no locks**, so the system is never quiesced;
//! 3. close the final gap under short table read locks, join the pending
//!    transactions via the coordinator's update queues, and come online.
//!
//! Because no worker needs a recovery log, the commit protocols can drop
//! their forced log writes: the optimized 3PC variant runs with **no log
//! and no forced writes at all**, which is where the paper's 10× latency
//! win over traditional 2PC comes from.
//!
//! ## Crate map
//!
//! * [`cluster`] — the quickstart facade: build a coordinator + N workers,
//!   run transactions, crash and recover sites.
//! * [`recovery`] — the three-phase recovery algorithm itself.
//! * Substrates live in sibling crates: `harbor-storage` (segmented heap
//!   files, buffer pool, lock manager), `harbor-engine` (versioned
//!   transactions), `harbor-exec` (operators, historical reads),
//!   `harbor-wal` (the ARIES baseline), `harbor-net` (TCP/in-mem
//!   transports), `harbor-dist` (the four commit protocols).
//!
//! ## Quickstart
//!
//! ```no_run
//! use harbor::{Cluster, ClusterConfig, TableSpec};
//! use harbor_dist::ProtocolKind;
//! use harbor_common::Value;
//!
//! let cfg = ClusterConfig::for_tests(ProtocolKind::Opt3pc);
//! let cluster = Cluster::build("/tmp/harbor-demo", cfg).unwrap();
//! cluster.insert_one("sales", vec![Value::Int64(1), Value::Int32(10)]).unwrap();
//! let site = cluster.worker_sites()[0];
//! cluster.crash_worker(site).unwrap();
//! let report = cluster.recover_worker_harbor(site).unwrap();
//! println!("recovered in {:?}", report.total);
//! ```

pub mod chaos_harness;
pub mod cluster;
pub mod recovery;
pub mod supervisor;

pub use chaos_harness::{ChaosRunConfig, ChaosRunReport};
pub use cluster::{Cluster, ClusterConfig, TableSpec, TransportKind, TxnRouter, COORDINATOR_SITE};
pub use recovery::{
    recover_object, recover_site, scrub_site, ObjectReport, RecoveryConfig, RecoveryContext,
    RecoveryFailPoint, RecoveryReport, ScrubReport,
};
pub use supervisor::{Repair, ReplicationSupervisor, SupervisorConfig, SupervisorHandle};
