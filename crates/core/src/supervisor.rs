//! The replication supervisor: watches for site deaths and automatically
//! re-creates lost replicas so every object returns to its K floor without
//! an operator in the loop.
//!
//! The repair primitive *is* the recovery machinery — a crashed member is
//! brought back with the three-phase protocol
//! ([`Cluster::recover_worker_harbor`]); an object whose host left the
//! membership entirely is re-replicated onto a surviving spare
//! ([`Cluster::replicate_table_to`], Phase-2/3 bootstrap against live
//! buddies). Failed repairs retry under seeded jittered exponential
//! backoff (the same [`RetryPolicy`] schedule the RPC layer uses), so a
//! chaos run with a pinned seed replays the identical repair trace.
//! Admission throttling keeps repair I/O from starving the commit path:
//! while the coordinator has more in-flight transactions than the
//! configured ceiling, the supervisor yields its tick.

use crate::cluster::Cluster;
use harbor_common::{RetryPolicy, SiteId};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Supervisor policy knobs.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Cadence of the background loop (and the unit a backoff delay is
    /// converted into for the synchronous, tick-driven chaos harness).
    pub tick: Duration,
    /// Admission throttle: when the coordinator holds more in-flight
    /// transactions than this, the supervisor skips its tick entirely so
    /// re-replication can never starve the commit path.
    pub max_inflight: usize,
    /// Seeded retry schedule for failed repairs of one target. Attempts
    /// past `backoff.attempts` keep retrying at the capped delay — the
    /// supervisor never gives up on a deficit, it only slows down.
    pub backoff: RetryPolicy,
}

impl SupervisorConfig {
    /// Deterministic defaults for tests and the chaos harness.
    pub fn for_tests(seed: u64) -> Self {
        SupervisorConfig {
            tick: Duration::from_millis(20),
            max_inflight: 8,
            backoff: RetryPolicy::new(
                6,
                Duration::from_millis(20),
                Duration::from_millis(500),
                seed,
            ),
        }
    }
}

/// One repair the supervisor decided to run.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Repair {
    /// A placed member crashed: bring every object on it back with
    /// three-phase recovery.
    RecoverSite(SiteId),
    /// An object is below its floor and a surviving member has room:
    /// bootstrap a brand-new replica there.
    Replicate { table: String, target: SiteId },
}

/// Shared live counters (the background thread owns the supervisor; these
/// are the observable surface).
#[derive(Default, Debug)]
pub struct SupervisorStats {
    pub ticks: AtomicU64,
    pub throttled: AtomicU64,
    pub repairs: AtomicU64,
    pub failures: AtomicU64,
}

struct BackoffState {
    attempt: u32,
    due_tick: u64,
}

/// Tick-driven repair loop state. Drive it synchronously with
/// [`tick`](Self::tick) (the chaos harness does, for determinism) or in a
/// background thread via [`Cluster::start_supervisor`].
pub struct ReplicationSupervisor {
    cfg: SupervisorConfig,
    /// Per-table live-copy floor, captured from the placement catalog when
    /// the supervisor attached: the replica count it defends.
    floors: BTreeMap<String, usize>,
    /// Per-target retry state; removed on success or when the deficit
    /// disappears.
    backoff: BTreeMap<Repair, BackoffState>,
    stats: Arc<SupervisorStats>,
}

impl ReplicationSupervisor {
    /// Captures each table's current placed-copy count as its floor.
    pub fn new(cfg: SupervisorConfig, cluster: &Cluster) -> Self {
        let snap = cluster.placement().snapshot();
        let mut floors = BTreeMap::new();
        for table in snap.table_names() {
            if let Ok(sites) = snap.sites_for(&table) {
                floors.insert(table, sites.len());
            }
        }
        ReplicationSupervisor {
            cfg,
            floors,
            backoff: BTreeMap::new(),
            stats: Arc::new(SupervisorStats::default()),
        }
    }

    pub fn stats(&self) -> &Arc<SupervisorStats> {
        &self.stats
    }

    /// One supervision step at logical time `tick_no`: scan for deficits,
    /// run at most one repair (bounding interference with foreground
    /// traffic), honour per-target backoff. Returns the repair that
    /// *succeeded* this tick, if any.
    pub fn tick(&mut self, cluster: &Cluster, tick_no: u64) -> Option<Repair> {
        self.stats.ticks.fetch_add(1, Ordering::Relaxed);
        if cluster.coordinator().inflight_txns() > self.cfg.max_inflight {
            self.stats.throttled.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let repair = self.plan(cluster)?;
        if let Some(b) = self.backoff.get(&repair) {
            if tick_no < b.due_tick {
                return None; // not due yet
            }
        }
        let result = match &repair {
            Repair::RecoverSite(site) => cluster.recover_worker_harbor(*site).map(|_| ()),
            Repair::Replicate { table, target } => cluster.replicate_table_to(table, *target),
        };
        match result {
            Ok(()) => {
                self.backoff.remove(&repair);
                self.stats.repairs.fetch_add(1, Ordering::Relaxed);
                cluster.coordinator().metrics().add_auto_repairs(1);
                Some(repair)
            }
            Err(_) => {
                self.stats.failures.fetch_add(1, Ordering::Relaxed);
                // Past the schedule's last attempt the delay stays capped:
                // the supervisor slows down but never abandons a deficit.
                let attempt = self
                    .backoff
                    .get(&repair)
                    .map(|b| b.attempt.min(self.cfg.backoff.attempts))
                    .unwrap_or(0);
                let due_tick = tick_no + self.delay_ticks(attempt);
                self.backoff.insert(
                    repair,
                    BackoffState {
                        attempt: attempt.saturating_add(1),
                        due_tick,
                    },
                );
                None
            }
        }
    }

    /// Converts a backoff delay into whole ticks (at least one).
    fn delay_ticks(&self, attempt: u32) -> u64 {
        let delay = self.cfg.backoff.delay(attempt);
        let unit = self.cfg.tick.as_nanos().max(1);
        delay.as_nanos().div_ceil(unit).max(1) as u64
    }

    /// Picks the most urgent deficit, deterministically (sorted tables,
    /// lowest-numbered sites). Preference order per the self-healing
    /// contract: re-create lost replicas on surviving spares first, fall
    /// back to recovering the crashed host when no spare exists (the
    /// common fully-replicated case).
    fn plan(&self, cluster: &Cluster) -> Option<Repair> {
        let snap = cluster.placement().snapshot();
        let mut tables = snap.table_names();
        tables.sort();
        let members = snap.member_sites(); // sorted
        let joining = snap.joining_copies();
        for table in tables {
            let floor = match self.floors.get(&table) {
                Some(f) => *f,
                None => continue, // created after attach: not defended
            };
            let hosts = match snap.sites_for(&table) {
                Ok(h) => h,
                Err(_) => continue,
            };
            let live_current = hosts
                .iter()
                .filter(|s| {
                    !cluster.is_crashed(**s)
                        && cluster.worker(**s).is_ok()
                        && !joining.contains(&(table.clone(), **s))
                })
                .count();
            if live_current >= floor {
                continue;
            }
            // A surviving member with room gets a fresh replica.
            if let Some(spare) = members.iter().find(|s| {
                !hosts.contains(*s) && !cluster.is_crashed(**s) && cluster.worker(**s).is_ok()
            }) {
                return Some(Repair::Replicate {
                    table,
                    target: *spare,
                });
            }
            // No spare: recover the lowest crashed host in place.
            if let Some(dead) = hosts.iter().find(|s| cluster.is_crashed(**s)) {
                return Some(Repair::RecoverSite(*dead));
            }
            // Deficit but nothing actionable (e.g. hosts gone from the
            // membership and no spare): leave it flagged degraded.
        }
        None
    }
}

/// Handle to a background supervisor thread; stops and joins on drop.
pub struct SupervisorHandle {
    stop: Arc<AtomicBool>,
    stats: Arc<SupervisorStats>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl SupervisorHandle {
    pub fn stats(&self) -> &Arc<SupervisorStats> {
        &self.stats
    }

    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for SupervisorHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

impl Cluster {
    /// Spawns the replication supervisor in a background thread: every
    /// `cfg.tick` it scans for under-replicated objects and repairs at
    /// most one, with seeded backoff on failure. The returned handle stops
    /// and joins the thread on drop.
    pub fn start_supervisor(
        self: &Arc<Self>,
        cfg: SupervisorConfig,
    ) -> harbor_common::DbResult<SupervisorHandle> {
        let tick = cfg.tick;
        let mut sup = ReplicationSupervisor::new(cfg, self);
        let stats = sup.stats().clone();
        let stop = Arc::new(AtomicBool::new(false));
        let cluster = self.clone();
        let stop2 = stop.clone();
        let thread = std::thread::Builder::new()
            .name("harbor-repl-supervisor".into())
            .spawn(move || {
                let mut tick_no = 0u64;
                while !stop2.load(Ordering::SeqCst) {
                    let _ = sup.tick(&cluster, tick_no);
                    tick_no += 1;
                    std::thread::sleep(tick);
                }
            })
            .map_err(|e| {
                harbor_common::DbError::internal(format!("spawn supervisor thread: {e}"))
            })?;
        Ok(SupervisorHandle {
            stop,
            stats,
            thread: Some(thread),
        })
    }
}
