//! HARBOR's three-phase, replica-query recovery algorithm (thesis Ch. 5).
//!
//! For each database object `rec` on the failed site:
//!
//! * **Phase 1** (local, §5.2): delete every tuple inserted after the last
//!   checkpoint or left uncommitted on disk, and undelete every tuple whose
//!   deletion timestamp postdates the checkpoint. After this, `rec` reflects
//!   exactly the transactions committed at or before `T_checkpoint`.
//! * **Phase 2** (remote, lock-free, §5.3): pick a high water mark
//!   `HWM = now - 1` and run *historical* queries against the recovery
//!   buddies to copy (a) deletion times applied to pre-checkpoint tuples in
//!   `(T_checkpoint, HWM]` and (b) whole tuples inserted in that window.
//!   Because historical queries take no locks, the system is never
//!   quiesced. The phase records a per-object checkpoint and repeats if the
//!   clock has run far past the HWM.
//! * **Phase 3** (remote, locked, §5.4): take table-granularity read locks
//!   on every recovery object, catch up from the HWM to the current time
//!   with ordinary `SEE DELETED` queries, announce "`rec` coming online" to
//!   the coordinator (which forwards queued updates of pending transactions
//!   so the site joins them, Fig 5-4), and finally release the locks.
//!
//! All remote reads stream in batches; the local halves are batch scans so
//! recovery time never depends on a (possibly cold) primary-key index.

use crossbeam::channel;
use harbor_common::config::{
    DEFAULT_MAX_BUDDY_FANOUT, DEFAULT_MAX_PHASE2_RANGES, DEFAULT_MIN_RANGE_PAGES,
    DEFAULT_PHASE2_APPLIERS,
};
use harbor_common::{
    retry_with, DbError, DbResult, PageId, RetryPolicy, SiteId, TableId, Timestamp, TransactionId,
    Tuple,
};
use harbor_dist::{
    rpc_deadline, rpc_liveness, scan_range_rpc_streaming, scan_rpc_streaming_deadline,
    segment_bounds_rpc, with_read_retries, Placement, RecoveryObject, RemoteScan, Request,
    Response, WireReadMode, DEFAULT_READ_RETRIES, DEFAULT_RETRY_BACKOFF,
};
use harbor_engine::Engine;
use harbor_exec::{scan_rids, ReadMode};
use harbor_net::{Channel, Transport};
use harbor_storage::{Page, ScanBounds};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fault-injection points inside the recovery algorithm (drives the §5.5
/// failure-during-recovery scenarios in tests and benches).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RecoveryFailPoint {
    #[default]
    None,
    /// Crash after Phase 1 completes (local state at the checkpoint).
    AfterPhase1,
    /// Crash after the Phase 2 historical catch-up (object checkpoint
    /// written; restart should resume from it, §5.5.1).
    AfterPhase2,
    /// Crash during Phase 3 while holding the remote table read locks —
    /// the buddies must detect the death and override the locks (§5.5.1).
    WhileHoldingLocks,
}

/// Tuning knobs for recovery.
#[derive(Clone, Debug)]
pub struct RecoveryConfig {
    /// Re-run Phase 2 if the clock has advanced more than this many ticks
    /// past the HWM when the phase completes (§5.3: "if the HWM differs
    /// from the current time by more than some system-configurable
    /// threshold, Phase 2 can be repeated").
    pub phase2_repeat_threshold: u64,
    /// Upper bound on Phase 2 rounds (safety net under sustained load).
    pub max_phase2_rounds: u32,
    /// How long to keep retrying the Phase 3 table-lock acquisition
    /// (deadlocks resolve by timeout and retry, §5.4.1).
    pub lock_retry_for: Duration,
    /// Recover multiple objects in parallel (§5.1) or serially — the
    /// comparison of Figs 6-4/6-5.
    pub parallel_objects: bool,
    /// Segment-parallel Phase 2: partition the catch-up window into
    /// per-segment-range recovery queries (derived from the buddy's §4.2
    /// directory bounds), scatter them across every live buddy, and pipe
    /// the streams through a bounded channel into a local applier pool.
    /// `false` reproduces the thesis' serial single-buddy Phase 2.
    pub parallel_segments: bool,
    /// Local applier threads draining the Phase-2 pipeline. Each owns a
    /// private bulk appender so concurrent applies never contend on a
    /// page latch.
    pub phase2_appliers: usize,
    /// Upper bound on how many buddies the ranged queries fan out across
    /// (primary buddy plus alternates from the K-safety catalog).
    pub max_buddy_fanout: usize,
    /// Upper bound on ranges per Phase-2 query pair; segment cuts beyond
    /// this are merged so tiny segments don't degrade into per-segment
    /// round trips.
    pub max_phase2_ranges: usize,
    /// Minimum buddy-side volume (pages) per range: adjacent segments
    /// merge into one ranged query until their combined page count reaches
    /// this, so small catch-ups don't pay per-range round trips.
    pub min_range_pages: u64,
    /// Per-frame liveness deadline on every network interaction with a
    /// buddy. A buddy that stops producing bytes for this long — including
    /// a partitioned peer whose socket never closes — is treated as dead
    /// ([`harbor_common::DbError::SiteUnavailable`]), which triggers the
    /// same range-reassignment path as a closed connection.
    pub net_deadline: Duration,
    /// Fault injection (tests only).
    pub fail_point: RecoveryFailPoint,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            phase2_repeat_threshold: 64,
            max_phase2_rounds: 4,
            lock_retry_for: Duration::from_secs(30),
            parallel_objects: true,
            parallel_segments: true,
            phase2_appliers: DEFAULT_PHASE2_APPLIERS,
            max_buddy_fanout: DEFAULT_MAX_BUDDY_FANOUT,
            max_phase2_ranges: DEFAULT_MAX_PHASE2_RANGES,
            min_range_pages: DEFAULT_MIN_RANGE_PAGES,
            net_deadline: harbor_dist::DEFAULT_RPC_DEADLINE,
            fail_point: RecoveryFailPoint::None,
        }
    }
}

/// One ranged Phase-2 fetch: which buddy served `(lo, hi]`, how much it
/// shipped, and how long the fetch took (Fig 6-6's per-range breakdown).
#[derive(Clone, Debug)]
pub struct RangeTiming {
    pub buddy: SiteId,
    pub lo: Timestamp,
    pub hi: Timestamp,
    pub tuples: u64,
    pub elapsed: Duration,
}

/// Timing/volume breakdown for one recovered object (Fig 6-6's
/// decomposition).
#[derive(Clone, Debug, Default)]
pub struct ObjectReport {
    pub table: String,
    pub phase1: Duration,
    /// Phase 2 remote SELECT + local UPDATE of deletion times.
    pub phase2_deletes: Duration,
    /// Phase 2 remote SELECT + local INSERT of new tuples.
    pub phase2_inserts: Duration,
    pub phase3: Duration,
    pub phase1_removed: u64,
    pub phase1_undeleted: u64,
    pub deletions_copied: u64,
    pub tuples_copied: u64,
    pub phase2_rounds: u32,
    pub checkpoint: Timestamp,
    pub hwm: Timestamp,
    /// Per-range fetch timings from the segment-parallel Phase 2 (empty
    /// when `parallel_segments` is off or the plan degenerates to one
    /// unranged query).
    pub range_timings: Vec<RangeTiming>,
    /// Ranges that had to be handed to another buddy because their first
    /// owner died mid-stream (§5.5).
    pub ranges_reassigned: u64,
}

/// Whole-site recovery summary.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    pub objects: Vec<ObjectReport>,
    pub total: Duration,
}

impl RecoveryReport {
    pub fn phase1(&self) -> Duration {
        self.objects.iter().map(|o| o.phase1).sum()
    }

    pub fn phase2_deletes(&self) -> Duration {
        self.objects.iter().map(|o| o.phase2_deletes).sum()
    }

    pub fn phase2_inserts(&self) -> Duration {
        self.objects.iter().map(|o| o.phase2_inserts).sum()
    }

    pub fn phase3(&self) -> Duration {
        self.objects.iter().map(|o| o.phase3).sum()
    }

    pub fn tuples_copied(&self) -> u64 {
        self.objects.iter().map(|o| o.tuples_copied).sum()
    }

    pub fn ranges_fetched(&self) -> u64 {
        self.objects
            .iter()
            .map(|o| o.range_timings.len() as u64)
            .sum()
    }

    pub fn ranges_reassigned(&self) -> u64 {
        self.objects.iter().map(|o| o.ranges_reassigned).sum()
    }
}

/// Everything the recovering site needs to reach the rest of the cluster.
pub struct RecoveryContext {
    pub engine: Arc<Engine>,
    pub site: SiteId,
    pub placement: Placement,
    pub transport: Arc<dyn Transport>,
    /// Sites currently known to be down (excluded from buddy selection).
    pub down: HashSet<SiteId>,
    pub config: RecoveryConfig,
}

impl RecoveryContext {
    fn connect(&self, site: SiteId) -> DbResult<Box<dyn Channel>> {
        let addr = self.placement.address(site)?;
        self.transport.connect(addr)
    }

    fn connect_coordinator(&self) -> DbResult<Box<dyn Channel>> {
        self.transport.connect(self.placement.coordinator_addr()?)
    }

    /// Asks the timestamp authority for the current time. Idempotent, so a
    /// transient timeout or dropped connection gets bounded retries.
    fn cluster_now(&self) -> DbResult<Timestamp> {
        let reply = with_read_retries(None, DEFAULT_READ_RETRIES, DEFAULT_RETRY_BACKOFF, || {
            let mut chan = self.connect_coordinator()?;
            rpc_deadline(chan.as_mut(), &Request::GetTime, self.config.net_deadline)
        })?;
        match reply {
            Response::Time { now } => Ok(now),
            other => Err(DbError::protocol(format!("bad GetTime reply {other:?}"))),
        }
    }
}

/// Recovers every object on the site; returns the per-object breakdown.
/// The engine must already be open (Phase 0 = reopening heap files); the
/// site's worker server should be serving so it can receive forwarded
/// updates while joining pending transactions.
pub fn recover_site(ctx: &RecoveryContext) -> DbResult<RecoveryReport> {
    let start = Instant::now();
    // §5.2: periodically scheduled checkpoints are disabled during recovery.
    ctx.engine.checkpointer().set_suspended(true);
    let tables: Vec<String> = ctx
        .placement
        .objects_on(ctx.site)
        .into_iter()
        .map(|(name, _)| name)
        .filter(|name| ctx.engine.table_def(name).is_some())
        .collect();
    let mut objects = Vec::new();
    if ctx.config.parallel_objects && tables.len() > 1 {
        // Each object proceeds through its three phases at its own pace
        // (§5.1: "multiple rec objects ... recovered in parallel").
        let results: Vec<DbResult<ObjectReport>> = std::thread::scope(|scope| {
            let handles: Vec<_> = tables
                .iter()
                .map(|t| {
                    let t = t.clone();
                    scope.spawn(move || recover_object(ctx, &t))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(DbError::internal("per-object recovery worker panicked"))
                    })
                })
                .collect()
        });
        for r in results {
            objects.push(r?);
        }
    } else {
        for t in &tables {
            objects.push(recover_object(ctx, t)?);
        }
    }
    // All objects done: promote the global checkpoint to the weakest
    // per-object time and resume normal checkpointing (§5.3).
    let min_ckpt = objects
        .iter()
        .map(|o| o.checkpoint)
        .min()
        .unwrap_or(Timestamp::ZERO);
    ctx.engine.checkpointer().finish_recovery(min_ckpt)?;
    // Advance the local clock so post-recovery checkpoints cover what was
    // copied.
    ctx.engine.advance_applied_clock(min_ckpt);
    Ok(RecoveryReport {
        objects,
        total: start.elapsed(),
    })
}

/// Recovers one database object through all three phases.
pub fn recover_object(ctx: &RecoveryContext, table_name: &str) -> DbResult<ObjectReport> {
    let def = ctx
        .engine
        .table_def(table_name)
        .ok_or_else(|| DbError::Schema(format!("unknown table {table_name:?}")))?;
    let mut report = ObjectReport {
        table: table_name.to_string(),
        ..Default::default()
    };
    let t_ckpt = ctx.engine.checkpointer().for_table(def.id);
    report.checkpoint = t_ckpt;

    // ---------------- Phase 1: restore to the last checkpoint ----------
    let t0 = Instant::now();
    let (removed, undeleted) = phase1(ctx, def.id, t_ckpt)?;
    report.phase1 = t0.elapsed();
    report.phase1_removed = removed;
    report.phase1_undeleted = undeleted;
    if ctx.config.fail_point == RecoveryFailPoint::AfterPhase1 {
        return Err(DbError::SiteDown("injected crash after phase 1".into()));
    }

    // ---------------- Phase 2: historical catch-up (repeatable) --------
    let plan = ctx
        .placement
        .recovery_plan(ctx.site, table_name, &ctx.down)?;
    let mut ckpt = t_ckpt;
    let mut hwm;
    loop {
        report.phase2_rounds += 1;
        hwm = ctx.cluster_now()?.prev();
        let t0 = Instant::now();
        let deletions = if ctx.config.parallel_segments {
            phase2_deletions_parallel(ctx, def.id, &plan, ckpt, hwm, &mut report)?
        } else {
            phase2_deletions(ctx, def.id, &plan, ckpt, hwm)?
        };
        report.phase2_deletes += t0.elapsed();
        report.deletions_copied += deletions;
        let t0 = Instant::now();
        let copied = if ctx.config.parallel_segments {
            phase2_inserts_parallel(ctx, def.id, &plan, ckpt, hwm, &mut report)?
        } else {
            phase2_inserts(ctx, def.id, &plan, ckpt, hwm)?
        };
        report.phase2_inserts += t0.elapsed();
        report.tuples_copied += copied;
        // Object-specific checkpoint: rec is consistent up to the HWM.
        ctx.engine.checkpointer().checkpoint_object(def.id, hwm)?;
        ctx.engine.pool().flush_all()?;
        ckpt = hwm;
        let now = ctx.cluster_now()?;
        let lag = now.0.saturating_sub(hwm.0);
        if lag <= ctx.config.phase2_repeat_threshold
            || report.phase2_rounds >= ctx.config.max_phase2_rounds
        {
            break;
        }
    }
    report.hwm = hwm;
    if ctx.config.fail_point == RecoveryFailPoint::AfterPhase2 {
        return Err(DbError::SiteDown("injected crash after phase 2".into()));
    }

    // ---------------- Phase 3: locked catch-up + join pending ----------
    let t0 = Instant::now();
    let final_time = phase3(ctx, def.id, table_name, &plan, hwm, &mut report)?;
    report.phase3 = t0.elapsed();
    report.checkpoint = final_time;
    ctx.engine
        .checkpointer()
        .checkpoint_object(def.id, final_time)?;
    Ok(report)
}

/// Phase 1 (§5.2): two local queries against the object.
fn phase1(ctx: &RecoveryContext, table: TableId, t_ckpt: Timestamp) -> DbResult<(u64, u64)> {
    let engine = &ctx.engine;
    let scan_start = engine.checkpointer().scan_start(table);
    // DELETE LOCALLY FROM rec SEE DELETED
    //   WHERE insertion_time > T_checkpoint OR insertion_time = uncommitted
    let bounds = ScanBounds {
        ins_after: Some(t_ckpt),
        uncommitted_from_segment: Some(scan_start),
        ..Default::default()
    };
    let victims = scan_rids(engine.pool(), table, ReadMode::SeeDeleted, bounds, |t| {
        let ins = t.insertion_ts()?;
        Ok(ins.is_uncommitted() || ins > t_ckpt)
    })?;
    let removed = victims.len() as u64;
    for (rid, _) in victims {
        engine.remove_physical(rid)?;
    }
    // UPDATE LOCALLY rec SET deletion_time = 0 SEE DELETED
    //   WHERE deletion_time > T_checkpoint
    let bounds = ScanBounds::deleted_after(t_ckpt);
    let victims = scan_rids(engine.pool(), table, ReadMode::SeeDeleted, bounds, |t| {
        Ok(t.deletion_ts()? > t_ckpt)
    })?;
    let undeleted = victims.len() as u64;
    for (rid, _) in victims {
        engine.set_deletion(rid, Timestamp::ZERO)?;
    }
    Ok((removed, undeleted))
}

/// Phase 2, first half (§5.3): copy deletion times applied after the
/// checkpoint to tuples inserted at or before it. Returns how many.
fn phase2_deletions(
    ctx: &RecoveryContext,
    table: TableId,
    plan: &[RecoveryObject],
    ckpt: Timestamp,
    hwm: Timestamp,
) -> DbResult<u64> {
    // SELECT REMOTELY tuple_id, deletion_time FROM recovery_object
    //   SEE DELETED HISTORICAL WITH TIME hwm
    //   WHERE recovery_predicate AND insertion_time <= T_checkpoint
    //     AND deletion_time > T_checkpoint
    let mut pairs: HashMap<i64, Timestamp> = HashMap::new();
    for obj in plan {
        let mut chan = ctx.connect(obj.buddy)?;
        let mut scan = RemoteScan::new(&obj.table, WireReadMode::SeeDeletedHistorical(hwm));
        scan.predicate = obj.predicate.clone();
        scan.ins_at_or_before = Some(ckpt);
        scan.del_after = Some(ckpt);
        scan.ids_and_deletions_only = true;
        scan_rpc_streaming_deadline(chan.as_mut(), &scan, ctx.config.net_deadline, |batch| {
            for t in batch {
                let id = t.get(0).as_i64()?;
                let del = t.get(1).as_time()?;
                pairs.insert(id, del);
            }
            Ok(())
        })?;
    }
    apply_deletion_pairs(ctx, table, &pairs)
}

/// For each `(tuple_id, del_time)` pair, updates the live local version:
///   UPDATE LOCALLY rec SET deletion_time = del_time SEE DELETED
///     WHERE tuple_id = tup_id AND deletion_time = 0
/// Implemented as one batch scan (an index lookup per pair in the thesis;
/// batching keeps recovery independent of index warmth).
fn apply_deletion_pairs(
    ctx: &RecoveryContext,
    table: TableId,
    pairs: &HashMap<i64, Timestamp>,
) -> DbResult<u64> {
    if pairs.is_empty() {
        return Ok(0);
    }
    let engine = &ctx.engine;
    let victims = scan_rids(
        engine.pool(),
        table,
        ReadMode::SeeDeleted,
        ScanBounds::all(),
        |t| {
            if t.deletion_ts()? != Timestamp::ZERO {
                return Ok(false); // "AND deletion_time = 0": newest version
            }
            let id = t.get(2).as_i64()?;
            Ok(pairs.contains_key(&id))
        },
    )?;
    let mut applied = 0u64;
    for (rid, tup) in victims {
        let id = tup.get(2).as_i64()?;
        if let Some(del) = pairs.get(&id) {
            engine.set_deletion(rid, *del)?;
            applied += 1;
        }
    }
    Ok(applied)
}

/// Phase 2, second half (§5.3): copy whole tuples inserted in
/// `(T_checkpoint, HWM]`. Returns how many.
fn phase2_inserts(
    ctx: &RecoveryContext,
    table: TableId,
    plan: &[RecoveryObject],
    ckpt: Timestamp,
    hwm: Timestamp,
) -> DbResult<u64> {
    // INSERT LOCALLY INTO rec (SELECT REMOTELY * FROM recovery_object
    //   SEE DELETED HISTORICAL WITH TIME hwm
    //   WHERE recovery_predicate AND insertion_time > T_checkpoint
    //     AND insertion_time <= hwm)
    let engine = &ctx.engine;
    let mut copied = 0u64;
    for obj in plan {
        let mut chan = ctx.connect(obj.buddy)?;
        let mut scan = RemoteScan::new(&obj.table, WireReadMode::SeeDeletedHistorical(hwm));
        scan.predicate = obj.predicate.clone();
        scan.ins_after = Some(ckpt);
        scan_rpc_streaming_deadline(chan.as_mut(), &scan, ctx.config.net_deadline, |batch| {
            for t in &batch {
                engine.insert_recovered(table, t)?;
            }
            copied += batch.len() as u64;
            Ok(())
        })?;
    }
    Ok(copied)
}

// ====================================================================
// Segment-parallel Phase 2: ranged queries × buddy fan-out × pipelined
// apply. The serial functions above are the reference implementation;
// everything below must produce byte-identical table contents.
// ====================================================================

/// The buddies a segment-parallel Phase 2 fans ranges across: the plan's
/// primary buddy plus its live full-copy alternates (§4.3 K-safety
/// catalog), capped by `max_buddy_fanout`.
fn fanout_buddies(ctx: &RecoveryContext, obj: &RecoveryObject) -> Vec<SiteId> {
    let mut buddies = Vec::with_capacity(1 + obj.alternates.len());
    buddies.push(obj.buddy);
    buddies.extend(obj.alternates.iter().copied());
    buddies.truncate(ctx.config.max_buddy_fanout.max(1));
    buddies
}

/// Fetches the object's §4.2 segment-directory bounds from the first buddy
/// that answers (primary first, then alternates — a dead primary must not
/// stop recovery before it even starts, §5.5).
fn fetch_segment_bounds(
    ctx: &RecoveryContext,
    obj: &RecoveryObject,
) -> DbResult<Vec<(Timestamp, Timestamp, Timestamp, u64)>> {
    let mut last_err = None;
    for buddy in fanout_buddies(ctx, obj) {
        let attempt = (|| {
            let mut chan = ctx.connect(buddy)?;
            segment_bounds_rpc(chan.as_mut(), &obj.table, ctx.config.net_deadline)
        })();
        match attempt {
            Ok(bounds) => return Ok(bounds),
            Err(e) if e.is_disconnect() => last_err = Some(e),
            Err(e) => return Err(e),
        }
    }
    Err(last_err.unwrap_or_else(|| DbError::SiteDown(format!("no live buddy for {}", obj.table))))
}

/// Splits `(lo, hi]` at the segment-directory cut points falling strictly
/// inside it. Tuples timestamped in different ranges live in (mostly)
/// disjoint segment sets, so the ranged scans prune to disjoint page runs
/// and the buddy reads each page once across the whole fan-out.
///
/// Each cut carries the page count of its segment; adjacent segments merge
/// into one range until `min_pages` accumulate, so a range is always worth
/// at least that much buddy-side volume — a small catch-up degenerates to
/// one unranged query instead of paying per-range round trips. At most
/// `max_ranges` ranges are produced; surplus cuts are merged evenly.
fn derive_ranges(
    cuts: &[(Timestamp, u64)],
    lo: Timestamp,
    hi: Timestamp,
    max_ranges: usize,
    min_pages: u64,
) -> Vec<(Timestamp, Timestamp)> {
    if hi <= lo {
        return Vec::new();
    }
    // Segments whose cut is at or below `lo` hold no in-window data for
    // this axis; segments cut at or above `hi` fold into the final range.
    let mut segs: Vec<(Timestamp, u64)> = cuts.iter().copied().filter(|(t, _)| *t > lo).collect();
    segs.sort_unstable_by_key(|(t, _)| *t);
    let mut cuts: Vec<Timestamp> = Vec::new();
    let mut acc = 0u64;
    for (t, pages) in segs {
        acc += pages.max(1);
        if t < hi && acc >= min_pages {
            cuts.push(t);
            acc = 0;
        }
    }
    cuts.dedup();
    let max_ranges = max_ranges.max(1);
    if cuts.len() + 1 > max_ranges {
        let total = cuts.len();
        let keep = max_ranges - 1;
        cuts = (0..keep)
            .map(|i| cuts[(i + 1) * total / max_ranges])
            .collect();
    }
    let mut ranges = Vec::with_capacity(cuts.len() + 1);
    let mut prev = lo;
    for c in cuts {
        ranges.push((prev, c));
        prev = c;
    }
    ranges.push((prev, hi));
    ranges
}

/// One completed ranged fetch travelling down the fetch→apply pipeline.
struct FetchedRange<T> {
    #[allow(dead_code)] // drains may key off the timing; today none do
    timing: RangeTiming,
    payload: T,
}

/// The scatter-gather core shared by both Phase-2 halves: pops ranges off
/// a work queue with one fetcher thread per live buddy, buffers each range
/// fully at the fetcher (local apply is *not* idempotent, so nothing may
/// be forwarded from a range that might be retried), and pipes completed
/// ranges through a bounded channel into `appliers` drain threads — the
/// network receive of range *n+1* overlaps the local apply of range *n*.
///
/// A buddy that dies mid-stream takes its fetcher down but not the phase:
/// the broken range goes back on the queue for the survivors (§5.5).
/// Only when every buddy is gone with ranges still outstanding does the
/// phase fail.
fn scatter_gather_ranges<T, F, D>(
    ctx: &RecoveryContext,
    obj: &RecoveryObject,
    ranges: Vec<(Timestamp, Timestamp)>,
    fetch: F,
    drain: D,
    appliers: usize,
    report: &mut ObjectReport,
) -> DbResult<u64>
where
    T: Send,
    F: Fn(&mut dyn Channel, Timestamp, Timestamp) -> DbResult<(T, u64)> + Sync,
    D: Fn(channel::Receiver<FetchedRange<T>>) -> DbResult<u64> + Sync,
{
    let buddies = fanout_buddies(ctx, obj);
    let appliers = appliers.max(1);
    // A single range cannot overlap anything: skip the thread machinery
    // (spawns plus idle polling are pure overhead at small catch-up
    // volumes, e.g. the later catch-up rounds) and fetch inline, still
    // failing over across the fan-out.
    if ranges.len() == 1 {
        let (lo, hi) = ranges[0];
        let mut last_err = None;
        for (i, buddy) in buddies.iter().copied().enumerate() {
            let t0 = Instant::now();
            let result = (|| {
                let mut chan = ctx.connect(buddy)?;
                fetch(chan.as_mut(), lo, hi)
            })();
            match result {
                Ok((payload, tuples)) => {
                    ctx.engine.metrics().add_recovery_ranges_fetched(1);
                    let timing = RangeTiming {
                        buddy,
                        lo,
                        hi,
                        tuples,
                        elapsed: t0.elapsed(),
                    };
                    report.range_timings.push(timing.clone());
                    report.ranges_reassigned += i as u64;
                    let (tx, rx) = channel::bounded::<FetchedRange<T>>(1);
                    let sent = tx.send(FetchedRange { timing, payload });
                    assert!(sent.is_ok(), "bounded(1) send with receiver alive");
                    drop(tx);
                    return drain(rx);
                }
                // A buddy that died mid-stream — or answered from a
                // corrupt page of its own — loses the range to the next
                // candidate. Corruption is site-local and repairable, so
                // it must not fail the recovery (nor mark the buddy dead).
                Err(e) if e.is_disconnect() || e.is_corrupt() => {
                    ctx.engine.metrics().add_recovery_ranges_reassigned(1);
                    last_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        return Err(last_err
            .unwrap_or_else(|| DbError::SiteDown(format!("no live buddy for {}", obj.table))));
    }
    let pending = AtomicUsize::new(ranges.len());
    let reassigned = AtomicU64::new(0);
    let queue: Mutex<Vec<(Timestamp, Timestamp)>> = Mutex::new(ranges);
    let timings: Mutex<Vec<RangeTiming>> = Mutex::new(Vec::new());
    // Bounded: a fast buddy cannot buffer the whole table ahead of the
    // appliers; it parks until the pipeline drains (backpressure).
    let (tx, rx) = channel::bounded::<FetchedRange<T>>(appliers * 4);
    let (applied, fetch_err, apply_err) = std::thread::scope(|scope| {
        let (pending, reassigned) = (&pending, &reassigned);
        let (queue, timings) = (&queue, &timings);
        let (fetch, drain) = (&fetch, &drain);
        let mut applier_handles = Vec::with_capacity(appliers);
        for _ in 0..appliers {
            let rx = rx.clone();
            applier_handles.push(scope.spawn(move || drain(rx)));
        }
        drop(rx);
        let mut fetcher_handles = Vec::with_capacity(buddies.len());
        for buddy in buddies {
            let tx = tx.clone();
            fetcher_handles.push(scope.spawn(move || -> DbResult<()> {
                let mut chan: Option<Box<dyn Channel>> = None;
                loop {
                    if pending.load(Ordering::SeqCst) == 0 {
                        return Ok(()); // every range fetched somewhere
                    }
                    let task = queue.lock().pop();
                    let Some((lo, hi)) = task else {
                        // The remaining ranges are in flight at other
                        // fetchers: each either completes there or comes
                        // back to the queue when that buddy dies. Wait
                        // for one of the two — briefly, because ranged
                        // fetches are often sub-millisecond and this tail
                        // wait is on the recovery critical path.
                        std::thread::sleep(Duration::from_micros(50));
                        continue;
                    };
                    let t0 = Instant::now();
                    let result = (|| {
                        let c = match chan.as_mut() {
                            Some(c) => c,
                            None => chan.insert(ctx.connect(buddy)?),
                        };
                        fetch(c.as_mut(), lo, hi)
                    })();
                    match result {
                        Ok((payload, tuples)) => {
                            ctx.engine.metrics().add_recovery_ranges_fetched(1);
                            pending.fetch_sub(1, Ordering::SeqCst);
                            let timing = RangeTiming {
                                buddy,
                                lo,
                                hi,
                                tuples,
                                elapsed: t0.elapsed(),
                            };
                            timings.lock().push(timing.clone());
                            if tx.send(FetchedRange { timing, payload }).is_err() {
                                // Every applier is gone — one of them hit
                                // an error and the apply side reports it.
                                return Ok(());
                            }
                        }
                        Err(e) if e.is_disconnect() || e.is_corrupt() => {
                            // §5.5: the buddy died mid-stream — or served
                            // from a corrupt page, which is site-local and
                            // repairable, not a recovery failure. Nothing
                            // from the broken range was forwarded, so the
                            // whole range is safe to hand to a survivor.
                            ctx.engine.metrics().add_recovery_ranges_reassigned(1);
                            reassigned.fetch_add(1, Ordering::SeqCst);
                            queue.lock().push((lo, hi));
                            return Ok(());
                        }
                        Err(e) => return Err(e),
                    }
                }
            }));
        }
        drop(tx);
        let mut fetch_err = None;
        for h in fetcher_handles {
            let joined = h
                .join()
                .unwrap_or_else(|_| Err(DbError::internal("phase-2 fetcher panicked")));
            if let Err(e) = joined {
                fetch_err.get_or_insert(e);
            }
        }
        let mut applied = 0u64;
        let mut apply_err = None;
        for h in applier_handles {
            let joined = h
                .join()
                .unwrap_or_else(|_| Err(DbError::internal("phase-2 applier panicked")));
            match joined {
                Ok(n) => applied += n,
                Err(e) => {
                    apply_err.get_or_insert(e);
                }
            }
        }
        (applied, fetch_err, apply_err)
    });
    if let Some(e) = apply_err {
        return Err(e);
    }
    if let Some(e) = fetch_err {
        return Err(e);
    }
    if pending.load(Ordering::SeqCst) > 0 {
        return Err(DbError::SiteDown(format!(
            "every recovery buddy for {} died before phase 2 finished",
            obj.table
        )));
    }
    report.ranges_reassigned += reassigned.load(Ordering::SeqCst);
    let mut new_timings = timings.into_inner();
    report.range_timings.append(&mut new_timings);
    Ok(applied)
}

/// Segment-parallel version of [`phase2_deletions`]: the catch-up window
/// is partitioned by *deletion* time at the directory's `tmax_delete`
/// cuts. Each range runs `SEE DELETED HISTORICAL WITH TIME hi` with
/// `deletion_time > lo` — historical visibility hides deletions after
/// `hi`, so the ranges ship disjoint `del ∈ (lo, hi]` slices *and* keep
/// the buddy's deletion-log fast path (an insertion-time range would
/// defeat it). Pairs merge into one map; the local UPDATE stays a single
/// batch scan.
fn phase2_deletions_parallel(
    ctx: &RecoveryContext,
    table: TableId,
    plan: &[RecoveryObject],
    ckpt: Timestamp,
    hwm: Timestamp,
    report: &mut ObjectReport,
) -> DbResult<u64> {
    let pairs: Mutex<HashMap<i64, Timestamp>> = Mutex::new(HashMap::new());
    for obj in plan {
        let bounds = fetch_segment_bounds(ctx, obj)?;
        let cuts: Vec<(Timestamp, u64)> = bounds
            .iter()
            .map(|(_, _, tmax_del, pages)| (*tmax_del, *pages))
            .collect();
        // Deletion queries ship only (id, deletion_time) pairs and the
        // buddy's deletion log answers them without touching segments, so
        // splitting finer than the fan-out only adds round trips.
        let max_ranges = ctx
            .config
            .max_phase2_ranges
            .min(fanout_buddies(ctx, obj).len());
        let ranges = derive_ranges(&cuts, ckpt, hwm, max_ranges, ctx.config.min_range_pages);
        if ranges.is_empty() {
            continue;
        }
        scatter_gather_ranges(
            ctx,
            obj,
            ranges,
            |chan: &mut dyn Channel, lo, hi| {
                let mut scan = RemoteScan::new(&obj.table, WireReadMode::SeeDeletedHistorical(hi));
                scan.predicate = obj.predicate.clone();
                scan.ins_at_or_before = Some(ckpt);
                scan.del_after = Some(lo);
                scan.ids_and_deletions_only = true;
                let mut got: Vec<(i64, Timestamp)> = Vec::new();
                scan_rpc_streaming_deadline(chan, &scan, ctx.config.net_deadline, |batch| {
                    for t in batch {
                        got.push((t.get(0).as_i64()?, t.get(1).as_time()?));
                    }
                    Ok(())
                })?;
                let n = got.len() as u64;
                Ok((got, n))
            },
            |rx: channel::Receiver<FetchedRange<Vec<(i64, Timestamp)>>>| {
                let mut merged = 0u64;
                while let Ok(done) = rx.recv() {
                    merged += done.payload.len() as u64;
                    let mut map = pairs.lock();
                    for (id, del) in done.payload {
                        map.insert(id, del);
                    }
                }
                Ok(merged)
            },
            1, // merging pairs is trivial; one drain thread suffices
            report,
        )?;
    }
    let pairs = pairs.into_inner();
    apply_deletion_pairs(ctx, table, &pairs)
}

/// Segment-parallel version of [`phase2_inserts`]: the `(ckpt, hwm]`
/// window is partitioned by *insertion* time at the directory's
/// `tmax_insert` cuts and fetched with [`Request::ScanRange`]. Fetchers
/// buffer each range fully (inserts are not idempotent — a half-applied
/// range could not be retried elsewhere) and the applier pool writes
/// through per-thread bulk appenders, so concurrent applies never share a
/// page latch.
fn phase2_inserts_parallel(
    ctx: &RecoveryContext,
    table: TableId,
    plan: &[RecoveryObject],
    ckpt: Timestamp,
    hwm: Timestamp,
    report: &mut ObjectReport,
) -> DbResult<u64> {
    let engine = &ctx.engine;
    let mut copied = 0u64;
    for obj in plan {
        let bounds = fetch_segment_bounds(ctx, obj)?;
        let cuts: Vec<(Timestamp, u64)> = bounds
            .iter()
            .map(|(_, tmax_ins, _, pages)| (*tmax_ins, *pages))
            .collect();
        let ranges = derive_ranges(
            &cuts,
            ckpt,
            hwm,
            ctx.config.max_phase2_ranges,
            ctx.config.min_range_pages,
        );
        if ranges.is_empty() {
            continue;
        }
        copied += scatter_gather_ranges(
            ctx,
            obj,
            ranges,
            |chan: &mut dyn Channel, lo, hi| {
                let mut scan = RemoteScan::new(&obj.table, WireReadMode::SeeDeletedHistorical(hwm));
                scan.predicate = obj.predicate.clone();
                let mut buf: Vec<Tuple> = Vec::new();
                scan_range_rpc_streaming(
                    chan,
                    &scan,
                    lo,
                    hi,
                    ctx.config.net_deadline,
                    |mut batch| {
                        buf.append(&mut batch);
                        Ok(())
                    },
                )?;
                let n = buf.len() as u64;
                Ok((buf, n))
            },
            |rx: channel::Receiver<FetchedRange<Vec<Tuple>>>| {
                let mut ins = engine.recovered_inserter(table)?;
                let mut applied = 0u64;
                while let Ok(done) = rx.recv() {
                    for t in &done.payload {
                        ins.insert(t)?;
                    }
                    applied += done.payload.len() as u64;
                    engine
                        .metrics()
                        .add_recovery_tuples_applied(done.payload.len() as u64);
                }
                Ok(applied)
            },
            ctx.config.phase2_appliers,
            report,
        )?;
    }
    Ok(copied)
}

/// Phase 3 (§5.4): locked catch-up, join pending transactions, come online.
/// Returns the time the object is consistent up to.
fn phase3(
    ctx: &RecoveryContext,
    table: TableId,
    table_name: &str,
    plan: &[RecoveryObject],
    hwm: Timestamp,
    report: &mut ObjectReport,
) -> DbResult<Timestamp> {
    let engine = &ctx.engine;
    // A dedicated lock-owner transaction id for this recovery run.
    let lock_tid = TransactionId::from_parts(ctx.site, 0x0000_7ec0_0000_0000 | table.0 as u64);
    // 1) ACQUIRE REMOTELY READ LOCK ON recovery_object ON SITE buddy —
    //    retried until granted (§5.4.1). One persistent channel per buddy:
    //    the lock lives as long as the connection (a dead recoverer's locks
    //    are released by the buddy's failure detection, §5.5.1).
    let mut lock_chans: Vec<(SiteId, Box<dyn Channel>)> = Vec::new();
    for obj in plan {
        // The plan's primary buddy may have died during Phase 2 (its
        // ranges were reassigned, §5.5); Phase 3 fails over to the same
        // full-copy alternates rather than aborting the whole recovery.
        // Failover covers the *whole* lock handshake, not just connect():
        // a freshly crashed buddy may still accept a connection for one
        // scheduler slice and then sever it, and that disconnect means
        // "buddy dead", not "recovery failed".
        let mut candidates = vec![obj.buddy];
        candidates.extend(obj.alternates.iter().copied());
        let mut picked: Option<(SiteId, Box<dyn Channel>)> = None;
        let mut last_err: Option<DbError> = None;
        'candidates: for buddy in candidates {
            let mut chan = match ctx.connect(buddy) {
                Ok(chan) => chan,
                Err(e) if e.is_disconnect() => {
                    last_err = Some(e);
                    continue;
                }
                Err(e) => return Err(e),
            };
            // Deadlock timeouts at the buddy retry under a seeded, capped
            // schedule (§5.4.1) sized to the configured lock-retry budget;
            // the jitter decorrelates two recoveries contending for the
            // same table while a pinned seed still replays the same pacing.
            let policy = RetryPolicy::new(
                (ctx.config.lock_retry_for.as_millis() / 8).max(1) as u32,
                Duration::from_millis(10),
                Duration::from_millis(10),
                0x10CC_AB1E ^ u64::from(ctx.site.0),
            );
            let locked = retry_with(
                &policy,
                Some(ctx.engine.metrics()),
                |e| matches!(e, DbError::LockTimeout { .. }),
                |_| {
                    let req = Request::AcquireTableLock {
                        tid: lock_tid,
                        table: obj.table.clone(),
                    };
                    match rpc_liveness(chan.as_mut(), &req, ctx.config.net_deadline, None)? {
                        Response::Ok => Ok(()),
                        Response::Err { msg } => Err(DbError::LockTimeout {
                            txn: lock_tid,
                            what: format!("{} at {buddy} ({msg})", obj.table),
                        }),
                        other => Err(DbError::protocol(format!("bad lock reply {other:?}"))),
                    }
                },
            );
            match locked {
                Ok(()) => {
                    picked = Some((buddy, chan));
                    break 'candidates;
                }
                Err(e) if e.is_disconnect() => {
                    last_err = Some(e);
                    continue 'candidates;
                }
                Err(e) => return Err(e),
            }
        }
        let Some((buddy, chan)) = picked else {
            return Err(last_err
                .unwrap_or_else(|| DbError::SiteDown(format!("no live buddy for {}", obj.table))));
        };
        lock_chans.push((buddy, chan));
    }
    // 2) Missing deletions after the HWM:
    //    SELECT REMOTELY tuple_id, deletion_time ... SEE DELETED
    //      WHERE pred AND insertion_time <= hwm AND deletion_time > hwm
    let mut pairs: HashMap<i64, Timestamp> = HashMap::new();
    for (i, obj) in plan.iter().enumerate() {
        let chan = &mut lock_chans[i].1;
        let mut scan = RemoteScan::new(&obj.table, WireReadMode::SeeDeletedLocked(lock_tid));
        scan.predicate = obj.predicate.clone();
        scan.ins_at_or_before = Some(hwm);
        scan.del_after = Some(hwm);
        scan.ids_and_deletions_only = true;
        scan_rpc_streaming_deadline(chan.as_mut(), &scan, ctx.config.net_deadline, |batch| {
            for t in batch {
                pairs.insert(t.get(0).as_i64()?, t.get(1).as_time()?);
            }
            Ok(())
        })?;
    }
    report.deletions_copied += apply_deletion_pairs(ctx, table, &pairs)?;
    // 3) Missing insertions after the HWM:
    //    INSERT LOCALLY INTO rec (SELECT REMOTELY * ... SEE DELETED
    //      WHERE pred AND insertion_time > hwm
    //        AND insertion_time != uncommitted)
    for (i, obj) in plan.iter().enumerate() {
        let chan = &mut lock_chans[i].1;
        let mut scan = RemoteScan::new(&obj.table, WireReadMode::SeeDeletedLocked(lock_tid));
        scan.predicate = obj.predicate.clone();
        scan.ins_after = Some(hwm); // uncommitted excluded by the residual
        let mut copied = 0u64;
        scan_rpc_streaming_deadline(chan.as_mut(), &scan, ctx.config.net_deadline, |batch| {
            for t in &batch {
                engine.insert_recovered(table, t)?;
            }
            copied += batch.len() as u64;
            Ok(())
        })?;
        report.tuples_copied += copied;
    }
    if ctx.config.fail_point == RecoveryFailPoint::WhileHoldingLocks {
        // Simulated death of the recovering site: drop the lock channels
        // without releasing; the buddies' failure detection must override
        // the orphaned locks (§5.5.1).
        drop(lock_chans);
        return Err(DbError::SiteDown(
            "injected crash while holding locks".into(),
        ));
    }
    // rec now holds all committed data; checkpoint at current time - 1
    // ("the current time has not expired", §5.4.1).
    let consistent_up_to = ctx.cluster_now()?.prev();
    engine.pool().flush_all()?;
    // 4) Join pending transactions (Fig 5-4): announce to the coordinator
    //    and wait for "all done".
    let mut coord = ctx.connect_coordinator()?;
    match rpc_liveness(
        coord.as_mut(),
        &Request::RecComingOnline {
            site: ctx.site,
            table: table_name.to_string(),
        },
        ctx.config.net_deadline,
        None,
    )? {
        Response::AllDone => {}
        other => {
            return Err(DbError::protocol(format!(
                "bad RecComingOnline reply {other:?}"
            )))
        }
    }
    // 5) RELEASE REMOTELY LOCK — rec is fully online.
    for (i, obj) in plan.iter().enumerate() {
        let chan = &mut lock_chans[i].1;
        let _ = rpc_deadline(
            chan.as_mut(),
            &Request::ReleaseTableLock {
                tid: lock_tid,
                table: obj.table.clone(),
            },
            ctx.config.net_deadline,
        )?;
    }
    Ok(consistent_up_to)
}

// ====================================================================
// Disk scrub + page repair: detect checksum-corrupt pages on a *live*
// site and restore them from a recovery buddy without a full recovery.
// ====================================================================

/// What one scrub pass over a site found and fixed.
#[derive(Clone, Debug, Default)]
pub struct ScrubReport {
    /// On-disk pages whose checksums were verified.
    pub pages_scanned: u64,
    /// Pages that failed verification (or were unreadable).
    pub corrupt_pages: u64,
    /// Corrupt pages healed by rewriting a still-resident buffer frame —
    /// no network traffic.
    pub self_healed: u64,
    /// Corrupt pages zeroed and logically restored from a buddy.
    pub pages_refetched: u64,
    /// Ranged historical queries issued against buddies.
    pub ranges_fetched: u64,
    /// Tuples the diff found missing locally and re-inserted.
    pub tuples_reinserted: u64,
    /// Bytes of tuple data shipped by the repair queries.
    pub bytes_shipped: u64,
    /// Tables that fell back to a full [`recover_object`] because the
    /// corruption could not be mapped to segment ranges.
    pub full_recoveries: u64,
    pub elapsed: Duration,
}

impl ScrubReport {
    fn absorb(&mut self, other: ScrubReport) {
        self.pages_scanned += other.pages_scanned;
        self.corrupt_pages += other.corrupt_pages;
        self.self_healed += other.self_healed;
        self.pages_refetched += other.pages_refetched;
        self.ranges_fetched += other.ranges_fetched;
        self.tuples_reinserted += other.tuples_reinserted;
        self.bytes_shipped += other.bytes_shipped;
        self.full_recoveries += other.full_recoveries;
    }
}

/// Verifies every on-disk data page of every object on the site and
/// repairs the pages that fail (§4.2 directory mapping + replica queries).
///
/// Must run on a quiesced site: updates are resolved, so the replicas
/// agree on all committed state below `now`, and a historical fetch at
/// `now - 1` reconstructs exactly what a corrupt page held. The chaos
/// harness scrubs at quiesce, before crash-recovery attempts, so recovery
/// itself never trips over a corrupt buddy page.
pub fn scrub_site(ctx: &RecoveryContext) -> DbResult<ScrubReport> {
    let start = Instant::now();
    let mut report = ScrubReport::default();
    let tables: Vec<String> = ctx
        .placement
        .objects_on(ctx.site)
        .into_iter()
        .map(|(name, _)| name)
        .filter(|name| ctx.engine.table_def(name).is_some())
        .collect();
    for name in &tables {
        let object = scrub_object(ctx, name)?;
        report.absorb(object);
    }
    report.elapsed = start.elapsed();
    Ok(report)
}

/// Reads one on-disk page, retrying injected transient read errors.
/// `Ok(true)` = page verifies, `Ok(false)` = corrupt or unreadable.
fn disk_page_ok(heap: &harbor_storage::SegmentedHeapFile, page_no: u32) -> DbResult<bool> {
    let result = retry_with(
        &RetryPolicy::immediate(3),
        None,
        |e| matches!(e, DbError::Io(_)),
        |_| heap.read_page(page_no).map(|_| ()),
    );
    match result {
        Ok(()) => Ok(true),
        Err(e) if e.is_corrupt() => Ok(false),
        // A page that stays unreadable is repaired like a corrupt one.
        Err(DbError::Io(_)) => Ok(false),
        Err(e) => Err(e),
    }
}

/// Scrubs one table: verify every data page directly against the disk
/// (the buffer pool would mask a bad disk image with a resident frame),
/// then repair failures in three escalating steps — rewrite a resident
/// frame, re-fetch the segment's window from a buddy, or fall back to a
/// full object recovery.
fn scrub_object(ctx: &RecoveryContext, table_name: &str) -> DbResult<ScrubReport> {
    let engine = &ctx.engine;
    let def = engine
        .table_def(table_name)
        .ok_or_else(|| DbError::Schema(format!("unknown table {table_name:?}")))?;
    let heap = engine.pool().table(def.id)?;
    let mut report = ScrubReport::default();

    // ---- Detect: checksum every on-disk data page ----------------------
    let mut corrupt: Vec<PageId> = Vec::new();
    for pid in heap.all_page_ids() {
        report.pages_scanned += 1;
        engine.metrics().add_scrub_pages_scanned(1);
        if !disk_page_ok(&heap, pid.page_no)? {
            corrupt.push(pid);
        }
    }
    if corrupt.is_empty() {
        return Ok(report);
    }
    report.corrupt_pages = corrupt.len() as u64;

    // ---- Self-heal: a resident frame is the authoritative copy ---------
    // A write fault corrupts the disk image while the in-memory frame
    // stays intact (and often clean, so flush_page would skip it).
    // Re-writing the frame restamps the page and its checksum.
    let mut remaining: Vec<PageId> = Vec::new();
    for pid in corrupt {
        let mut healed = false;
        let mut resident = false;
        for _ in 0..4 {
            resident = engine.pool().force_rewrite(pid)?;
            if !resident {
                break;
            }
            // The rewrite itself races the fault plan; trust only the disk.
            if disk_page_ok(&heap, pid.page_no)? {
                healed = true;
                break;
            }
        }
        if healed {
            report.self_healed += 1;
            engine.metrics().add_pages_repaired(1);
        } else if resident {
            // The frame holds the only good copy of the page; quarantining
            // the disk image under it would lose the data the moment the
            // frame is evicted clean. Fail this pass instead — the caller
            // retries the scrub, and the frame keeps the tuples safe.
            return Err(DbError::Io(std::io::Error::other(format!(
                "scrub: page {} of table {} stays corrupt under rewrite",
                pid.page_no, table_name
            ))));
        } else {
            remaining.push(pid);
        }
    }
    if remaining.is_empty() {
        return Ok(report);
    }

    // ---- Map: corrupt pages -> segment insertion-time windows ----------
    // Derived from the directory *before* any page is touched: mapping a
    // page is only possible while the directory still lists it.
    let mut windows: Vec<(Timestamp, Timestamp)> = Vec::new();
    let mut unmappable = false;
    for pid in &remaining {
        match heap.segment_of_page(pid.page_no) {
            Some(seg) => {
                let meta = heap.segments()[seg.0 as usize];
                if meta.tmax_insert > Timestamp::ZERO {
                    windows.push((meta.tmin_insert.prev(), meta.tmax_insert));
                }
                // tmax == ZERO: the segment never committed anything, so
                // the page can only have held uncommitted data — zeroing
                // it *is* the repair.
            }
            None => unmappable = true,
        }
    }
    windows.sort_unstable();
    windows.dedup();

    // ---- Fetch first: pull every repair window into memory -------------
    // Nothing local is modified until the buddy data is in hand. The
    // network is the likely failure (a buddy dies mid-stream, a deadline
    // expires); failing here aborts the scrub with the corrupt pages —
    // and the tuples under them — untouched, so a later pass can retry.
    // Zeroing before fetching would turn any fetch failure into silent
    // data loss: a zeroed page verifies, so no later scrub would look at
    // it again, and catch-up recovery only re-fetches past the checkpoint.
    let prefetched: Vec<((Timestamp, Timestamp), Vec<Tuple>)> = if unmappable {
        Vec::new()
    } else {
        let hwm = ctx.cluster_now()?.prev();
        let plan = ctx
            .placement
            .recovery_plan(ctx.site, table_name, &ctx.down)?;
        merge_windows(windows)
            .into_iter()
            .map(|(lo, hi)| {
                let fetched = fetch_window(ctx, &heap, &plan, lo, hi, hwm, &mut report)?;
                Ok(((lo, hi), fetched))
            })
            .collect::<DbResult<_>>()?
    };

    // ---- Quarantine: zero the bad pages so local scans run clean -------
    let empty = Page::init(heap.tuple_size());
    for pid in &remaining {
        // The zeroing write itself may draw a fault: rewrite until the
        // disk verifies, a few immediate attempts.
        let zeroed = retry_with(
            &RetryPolicy::immediate(3),
            None,
            |e| matches!(e, DbError::Io(_)),
            |_| {
                heap.write_page(pid.page_no, &empty)?;
                if disk_page_ok(&heap, pid.page_no)? {
                    Ok(())
                } else {
                    Err(DbError::Io(std::io::Error::other(
                        "zeroing write drew a fault",
                    )))
                }
            },
        );
        match zeroed {
            Ok(()) => {}
            // Still faulting after the schedule: leave the best-effort
            // zeroed image; the reconcile pass below re-inserts its tuples.
            Err(DbError::Io(_)) => {}
            Err(e) => return Err(e),
        }
    }

    // ---- Repair ---------------------------------------------------------
    if unmappable {
        // A page the directory no longer maps cannot be repaired by
        // ranged queries; restore the whole object from the buddies.
        // (Such a page was never covered by a persisted segment, so it
        // held no committed data — zeroing it lost nothing.)
        report.full_recoveries = 1;
        recover_object(ctx, table_name)?;
        report.pages_refetched += remaining.len() as u64;
        engine.metrics().add_pages_repaired(remaining.len() as u64);
        engine.index(def.id)?.invalidate();
        engine.deletion_log(def.id)?.invalidate();
        return Ok(report);
    }
    // Reconcile: diff each fetched slice against what the local heap
    // still holds and re-insert the difference. Retried as a whole on
    // transient I/O faults — a retry recomputes the diff from current
    // local state, so a partially applied attempt never double-inserts.
    let reinserted = retry_with(
        &RetryPolicy::immediate(3),
        None,
        |e| matches!(e, DbError::Io(_)),
        |_| {
            let mut reinserted = 0u64;
            for ((lo, hi), fetched) in &prefetched {
                let missing = reconcile_window(ctx, &heap, *lo, *hi, fetched)?;
                reinserted += missing.len() as u64;
                let mut ins = engine.recovered_inserter(def.id)?;
                for t in &missing {
                    ins.insert(t)?;
                }
            }
            // The zeroed pages invalidated any record ids the index or
            // deletion log cached; both rebuild lazily from a clean scan.
            engine.index(def.id)?.invalidate();
            engine.deletion_log(def.id)?.invalidate();
            engine.pool().flush_all()?;
            Ok(reinserted)
        },
    )?;
    report.tuples_reinserted += reinserted;
    report.pages_refetched += remaining.len() as u64;
    engine.metrics().add_pages_repaired(remaining.len() as u64);
    Ok(report)
}

/// Coalesces overlapping `(lo, hi]` windows so a tuple is never fetched
/// (or diffed) twice when several corrupt pages share a segment range.
fn merge_windows(sorted: Vec<(Timestamp, Timestamp)>) -> Vec<(Timestamp, Timestamp)> {
    let mut merged: Vec<(Timestamp, Timestamp)> = Vec::new();
    for (lo, hi) in sorted {
        match merged.last_mut() {
            Some((_, phi)) if lo <= *phi => *phi = (*phi).max(hi),
            _ => merged.push((lo, hi)),
        }
    }
    merged
}

/// Diff key for one tuple version: its full encoding with the deletion
/// timestamp zeroed. A version is identified by `(id, insertion)` plus its
/// payload; the deletion time is excluded because a site scrubbed *before*
/// catch-up recovery may hold a version whose deletion it has not applied
/// yet — that version exists locally (recovery copies the deletion time
/// later), and keying on it would re-insert a duplicate.
fn version_key(
    t: &Tuple,
    desc: &harbor_common::schema::TupleDesc,
    size: usize,
) -> DbResult<Vec<u8>> {
    let mut v = t.clone();
    v.set_deletion_ts(Timestamp::ZERO);
    let mut enc = harbor_common::codec::Encoder::with_capacity(size);
    v.write_fixed(desc, &mut enc)?;
    Ok(enc.into_bytes().to_vec())
}

/// Fetches the buddies' full historical slice of one insertion-time
/// window `(lo, hi]` — every version a corrupt page in that window could
/// have held. Fails over across the buddy fan-out; a *corrupt* buddy is
/// skipped like a dead one but not treated as unreachable (the taxonomy
/// keeps `CorruptPage` site-local and repairable). Purely a read: local
/// state is untouched, so a failure here aborts the scrub losslessly.
fn fetch_window(
    ctx: &RecoveryContext,
    heap: &Arc<harbor_storage::SegmentedHeapFile>,
    plan: &[RecoveryObject],
    lo: Timestamp,
    hi: Timestamp,
    hwm: Timestamp,
    report: &mut ScrubReport,
) -> DbResult<Vec<Tuple>> {
    let engine = &ctx.engine;
    let mut out: Vec<Tuple> = Vec::new();
    for obj in plan {
        let mut served = false;
        let mut last_err: Option<DbError> = None;
        for buddy in fanout_buddies(ctx, obj) {
            let attempt = (|| -> DbResult<Vec<Tuple>> {
                let mut chan = ctx.connect(buddy)?;
                let mut scan = RemoteScan::new(&obj.table, WireReadMode::SeeDeletedHistorical(hwm));
                scan.predicate = obj.predicate.clone();
                let mut buf: Vec<Tuple> = Vec::new();
                scan_range_rpc_streaming(
                    chan.as_mut(),
                    &scan,
                    lo,
                    hi,
                    ctx.config.net_deadline,
                    |mut batch| {
                        buf.append(&mut batch);
                        Ok(())
                    },
                )?;
                Ok(buf)
            })();
            match attempt {
                Ok(mut buf) => {
                    let shipped = buf.len() as u64 * heap.tuple_size() as u64;
                    report.bytes_shipped += shipped;
                    engine.metrics().add_repair_bytes_shipped(shipped);
                    out.append(&mut buf);
                    served = true;
                    break;
                }
                Err(e) if e.is_disconnect() || e.is_corrupt() => last_err = Some(e),
                Err(e) => return Err(e),
            }
        }
        if !served {
            return Err(last_err.unwrap_or_else(|| {
                DbError::SiteDown(format!("no live buddy to repair {}", obj.table))
            }));
        }
        report.ranges_fetched += 1;
        engine.metrics().add_repair_ranges_fetched(1);
    }
    Ok(out)
}

/// Finds the tuples the zeroed pages lost inside one window: subtract
/// every version the local heap still holds (a multiset diff over
/// [`version_key`] — surviving segments may overlap the window) from the
/// prefetched buddy slice, and return the leftovers.
fn reconcile_window(
    ctx: &RecoveryContext,
    heap: &Arc<harbor_storage::SegmentedHeapFile>,
    lo: Timestamp,
    hi: Timestamp,
    fetched: &[Tuple],
) -> DbResult<Vec<Tuple>> {
    let engine = &ctx.engine;
    let desc = heap.desc().clone();
    let bounds = ScanBounds {
        ins_after: Some(lo),
        ..Default::default()
    };
    let mut have: HashMap<Vec<u8>, u64> = HashMap::new();
    let survivors = scan_rids(
        engine.pool(),
        heap.id(),
        ReadMode::SeeDeleted,
        bounds,
        |t| {
            let ins = t.insertion_ts()?;
            Ok(ins.is_valid_commit_time() && ins > lo && ins <= hi)
        },
    )?;
    for (_, t) in survivors {
        *have
            .entry(version_key(&t, &desc, heap.tuple_size())?)
            .or_insert(0) += 1;
    }
    let mut missing: Vec<Tuple> = Vec::new();
    for t in fetched {
        let key = version_key(t, &desc, heap.tuple_size())?;
        match have.get_mut(&key) {
            Some(n) if *n > 0 => *n -= 1,
            _ => missing.push(t.clone()),
        }
    }
    Ok(missing)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: u64) -> Timestamp {
        Timestamp(v)
    }

    /// Cut points with one page of weight each (volume thresholds off).
    fn c(cuts: &[u64]) -> Vec<(Timestamp, u64)> {
        cuts.iter().map(|v| (t(*v), 1)).collect()
    }

    #[test]
    fn derive_ranges_splits_at_interior_cuts() {
        let cuts = c(&[5, 30, 10, 10, 99]);
        let ranges = derive_ranges(&cuts, t(5), t(40), 32, 1);
        assert_eq!(ranges, vec![(t(5), t(10)), (t(10), t(30)), (t(30), t(40))]);
        // Every range is half-open `(lo, hi]` and they tile the window.
        assert_eq!(ranges.first().unwrap().0, t(5));
        assert_eq!(ranges.last().unwrap().1, t(40));
        for w in ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
    }

    #[test]
    fn derive_ranges_degenerates_to_one_range() {
        // No interior cuts: one range covering the whole window.
        assert_eq!(derive_ranges(&[], t(3), t(9), 32, 1), vec![(t(3), t(9))]);
        assert_eq!(
            derive_ranges(&c(&[1, 9, 12]), t(3), t(9), 32, 1),
            vec![(t(3), t(9))]
        );
        // Empty or inverted window: nothing to fetch.
        assert!(derive_ranges(&c(&[5]), t(9), t(9), 32, 1).is_empty());
        assert!(derive_ranges(&c(&[5]), t(9), t(3), 32, 1).is_empty());
    }

    #[test]
    fn derive_ranges_merges_surplus_cuts() {
        let cuts = c(&(1..100).collect::<Vec<_>>());
        let ranges = derive_ranges(&cuts, t(0), t(100), 4, 1);
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges.first().unwrap().0, t(0));
        assert_eq!(ranges.last().unwrap().1, t(100));
        for w in ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
        // max_ranges = 1 collapses to the single unranged query.
        assert_eq!(
            derive_ranges(&cuts, t(0), t(100), 1, 1),
            vec![(t(0), t(100))]
        );
    }

    #[test]
    fn derive_ranges_accumulates_page_volume() {
        // Four 4-page segments with an 8-page floor: cuts emerge only
        // every 8 accumulated pages (plus the trailing remainder range,
        // which catches inserts past the last directory entry).
        let cuts = vec![(t(10), 4), (t(20), 4), (t(30), 4), (t(40), 4)];
        let ranges = derive_ranges(&cuts, t(0), t(50), 32, 8);
        assert_eq!(ranges, vec![(t(0), t(20)), (t(20), t(40)), (t(40), t(50))]);
        // A floor larger than the whole volume: one unranged query.
        assert_eq!(
            derive_ranges(&cuts, t(0), t(50), 32, 100),
            vec![(t(0), t(50))]
        );
    }
}
