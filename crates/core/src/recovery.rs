//! HARBOR's three-phase, replica-query recovery algorithm (thesis Ch. 5).
//!
//! For each database object `rec` on the failed site:
//!
//! * **Phase 1** (local, §5.2): delete every tuple inserted after the last
//!   checkpoint or left uncommitted on disk, and undelete every tuple whose
//!   deletion timestamp postdates the checkpoint. After this, `rec` reflects
//!   exactly the transactions committed at or before `T_checkpoint`.
//! * **Phase 2** (remote, lock-free, §5.3): pick a high water mark
//!   `HWM = now - 1` and run *historical* queries against the recovery
//!   buddies to copy (a) deletion times applied to pre-checkpoint tuples in
//!   `(T_checkpoint, HWM]` and (b) whole tuples inserted in that window.
//!   Because historical queries take no locks, the system is never
//!   quiesced. The phase records a per-object checkpoint and repeats if the
//!   clock has run far past the HWM.
//! * **Phase 3** (remote, locked, §5.4): take table-granularity read locks
//!   on every recovery object, catch up from the HWM to the current time
//!   with ordinary `SEE DELETED` queries, announce "`rec` coming online" to
//!   the coordinator (which forwards queued updates of pending transactions
//!   so the site joins them, Fig 5-4), and finally release the locks.
//!
//! All remote reads stream in batches; the local halves are batch scans so
//! recovery time never depends on a (possibly cold) primary-key index.

use harbor_common::{DbResult, SiteId, TableId, Timestamp, TransactionId, DbError};
use harbor_dist::{
    rpc, scan_rpc_streaming, Placement, RecoveryObject, RemoteScan, Request, Response,
    WireReadMode,
};
use harbor_engine::Engine;
use harbor_exec::{scan_rids, ReadMode};
use harbor_net::{Channel, Transport};
use harbor_storage::ScanBounds;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fault-injection points inside the recovery algorithm (drives the §5.5
/// failure-during-recovery scenarios in tests and benches).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RecoveryFailPoint {
    #[default]
    None,
    /// Crash after Phase 1 completes (local state at the checkpoint).
    AfterPhase1,
    /// Crash after the Phase 2 historical catch-up (object checkpoint
    /// written; restart should resume from it, §5.5.1).
    AfterPhase2,
    /// Crash during Phase 3 while holding the remote table read locks —
    /// the buddies must detect the death and override the locks (§5.5.1).
    WhileHoldingLocks,
}

/// Tuning knobs for recovery.
#[derive(Clone, Debug)]
pub struct RecoveryConfig {
    /// Re-run Phase 2 if the clock has advanced more than this many ticks
    /// past the HWM when the phase completes (§5.3: "if the HWM differs
    /// from the current time by more than some system-configurable
    /// threshold, Phase 2 can be repeated").
    pub phase2_repeat_threshold: u64,
    /// Upper bound on Phase 2 rounds (safety net under sustained load).
    pub max_phase2_rounds: u32,
    /// How long to keep retrying the Phase 3 table-lock acquisition
    /// (deadlocks resolve by timeout and retry, §5.4.1).
    pub lock_retry_for: Duration,
    /// Recover multiple objects in parallel (§5.1) or serially — the
    /// comparison of Figs 6-4/6-5.
    pub parallel_objects: bool,
    /// Fault injection (tests only).
    pub fail_point: RecoveryFailPoint,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            phase2_repeat_threshold: 64,
            max_phase2_rounds: 4,
            lock_retry_for: Duration::from_secs(30),
            parallel_objects: true,
            fail_point: RecoveryFailPoint::None,
        }
    }
}

/// Timing/volume breakdown for one recovered object (Fig 6-6's
/// decomposition).
#[derive(Clone, Debug, Default)]
pub struct ObjectReport {
    pub table: String,
    pub phase1: Duration,
    /// Phase 2 remote SELECT + local UPDATE of deletion times.
    pub phase2_deletes: Duration,
    /// Phase 2 remote SELECT + local INSERT of new tuples.
    pub phase2_inserts: Duration,
    pub phase3: Duration,
    pub phase1_removed: u64,
    pub phase1_undeleted: u64,
    pub deletions_copied: u64,
    pub tuples_copied: u64,
    pub phase2_rounds: u32,
    pub checkpoint: Timestamp,
    pub hwm: Timestamp,
}

/// Whole-site recovery summary.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    pub objects: Vec<ObjectReport>,
    pub total: Duration,
}

impl RecoveryReport {
    pub fn phase1(&self) -> Duration {
        self.objects.iter().map(|o| o.phase1).sum()
    }

    pub fn phase2_deletes(&self) -> Duration {
        self.objects.iter().map(|o| o.phase2_deletes).sum()
    }

    pub fn phase2_inserts(&self) -> Duration {
        self.objects.iter().map(|o| o.phase2_inserts).sum()
    }

    pub fn phase3(&self) -> Duration {
        self.objects.iter().map(|o| o.phase3).sum()
    }

    pub fn tuples_copied(&self) -> u64 {
        self.objects.iter().map(|o| o.tuples_copied).sum()
    }
}

/// Everything the recovering site needs to reach the rest of the cluster.
pub struct RecoveryContext {
    pub engine: Arc<Engine>,
    pub site: SiteId,
    pub placement: Placement,
    pub transport: Arc<dyn Transport>,
    /// Sites currently known to be down (excluded from buddy selection).
    pub down: HashSet<SiteId>,
    pub config: RecoveryConfig,
}

impl RecoveryContext {
    fn connect(&self, site: SiteId) -> DbResult<Box<dyn Channel>> {
        let addr = self.placement.address(site)?;
        self.transport.connect(addr)
    }

    fn connect_coordinator(&self) -> DbResult<Box<dyn Channel>> {
        self.transport.connect(self.placement.coordinator_addr()?)
    }

    /// Asks the timestamp authority for the current time.
    fn cluster_now(&self) -> DbResult<Timestamp> {
        let mut chan = self.connect_coordinator()?;
        match rpc(chan.as_mut(), &Request::GetTime)? {
            Response::Time { now } => Ok(now),
            other => Err(DbError::protocol(format!("bad GetTime reply {other:?}"))),
        }
    }
}

/// Recovers every object on the site; returns the per-object breakdown.
/// The engine must already be open (Phase 0 = reopening heap files); the
/// site's worker server should be serving so it can receive forwarded
/// updates while joining pending transactions.
pub fn recover_site(ctx: &RecoveryContext) -> DbResult<RecoveryReport> {
    let start = Instant::now();
    // §5.2: periodically scheduled checkpoints are disabled during recovery.
    ctx.engine.checkpointer().set_suspended(true);
    let tables: Vec<String> = ctx
        .placement
        .objects_on(ctx.site)
        .into_iter()
        .map(|(name, _)| name)
        .filter(|name| ctx.engine.table_def(name).is_some())
        .collect();
    let mut objects = Vec::new();
    if ctx.config.parallel_objects && tables.len() > 1 {
        // Each object proceeds through its three phases at its own pace
        // (§5.1: "multiple rec objects ... recovered in parallel").
        let results: Vec<DbResult<ObjectReport>> = std::thread::scope(|scope| {
            let handles: Vec<_> = tables
                .iter()
                .map(|t| {
                    let t = t.clone();
                    scope.spawn(move || recover_object(ctx, &t))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("recovery thread")).collect()
        });
        for r in results {
            objects.push(r?);
        }
    } else {
        for t in &tables {
            objects.push(recover_object(ctx, t)?);
        }
    }
    // All objects done: promote the global checkpoint to the weakest
    // per-object time and resume normal checkpointing (§5.3).
    let min_ckpt = objects
        .iter()
        .map(|o| o.checkpoint)
        .min()
        .unwrap_or(Timestamp::ZERO);
    ctx.engine.checkpointer().finish_recovery(min_ckpt)?;
    // Advance the local clock so post-recovery checkpoints cover what was
    // copied.
    ctx.engine.advance_applied_clock(min_ckpt);
    Ok(RecoveryReport {
        objects,
        total: start.elapsed(),
    })
}

/// Recovers one database object through all three phases.
pub fn recover_object(ctx: &RecoveryContext, table_name: &str) -> DbResult<ObjectReport> {
    let def = ctx
        .engine
        .table_def(table_name)
        .ok_or_else(|| DbError::Schema(format!("unknown table {table_name:?}")))?;
    let mut report = ObjectReport {
        table: table_name.to_string(),
        ..Default::default()
    };
    let t_ckpt = ctx.engine.checkpointer().for_table(def.id);
    report.checkpoint = t_ckpt;

    // ---------------- Phase 1: restore to the last checkpoint ----------
    let t0 = Instant::now();
    let (removed, undeleted) = phase1(ctx, def.id, t_ckpt)?;
    report.phase1 = t0.elapsed();
    report.phase1_removed = removed;
    report.phase1_undeleted = undeleted;
    if ctx.config.fail_point == RecoveryFailPoint::AfterPhase1 {
        return Err(DbError::SiteDown("injected crash after phase 1".into()));
    }

    // ---------------- Phase 2: historical catch-up (repeatable) --------
    let plan = ctx
        .placement
        .recovery_plan(ctx.site, table_name, &ctx.down)?;
    let mut ckpt = t_ckpt;
    let mut hwm;
    loop {
        report.phase2_rounds += 1;
        hwm = ctx.cluster_now()?.prev();
        let t0 = Instant::now();
        let deletions = phase2_deletions(ctx, def.id, &plan, ckpt, hwm)?;
        report.phase2_deletes += t0.elapsed();
        report.deletions_copied += deletions;
        let t0 = Instant::now();
        let copied = phase2_inserts(ctx, def.id, &plan, ckpt, hwm)?;
        report.phase2_inserts += t0.elapsed();
        report.tuples_copied += copied;
        // Object-specific checkpoint: rec is consistent up to the HWM.
        ctx.engine.checkpointer().checkpoint_object(def.id, hwm)?;
        ctx.engine.pool().flush_all()?;
        ckpt = hwm;
        let now = ctx.cluster_now()?;
        let lag = now.0.saturating_sub(hwm.0);
        if lag <= ctx.config.phase2_repeat_threshold
            || report.phase2_rounds >= ctx.config.max_phase2_rounds
        {
            break;
        }
    }
    report.hwm = hwm;
    if ctx.config.fail_point == RecoveryFailPoint::AfterPhase2 {
        return Err(DbError::SiteDown("injected crash after phase 2".into()));
    }

    // ---------------- Phase 3: locked catch-up + join pending ----------
    let t0 = Instant::now();
    let final_time = phase3(ctx, def.id, table_name, &plan, hwm, &mut report)?;
    report.phase3 = t0.elapsed();
    report.checkpoint = final_time;
    ctx.engine.checkpointer().checkpoint_object(def.id, final_time)?;
    Ok(report)
}

/// Phase 1 (§5.2): two local queries against the object.
fn phase1(ctx: &RecoveryContext, table: TableId, t_ckpt: Timestamp) -> DbResult<(u64, u64)> {
    let engine = &ctx.engine;
    let scan_start = engine.checkpointer().scan_start(table);
    // DELETE LOCALLY FROM rec SEE DELETED
    //   WHERE insertion_time > T_checkpoint OR insertion_time = uncommitted
    let bounds = ScanBounds {
        ins_after: Some(t_ckpt),
        uncommitted_from_segment: Some(scan_start),
        ..Default::default()
    };
    let victims = scan_rids(engine.pool(), table, ReadMode::SeeDeleted, bounds, |t| {
        let ins = t.insertion_ts()?;
        Ok(ins.is_uncommitted() || ins > t_ckpt)
    })?;
    let removed = victims.len() as u64;
    for (rid, _) in victims {
        engine.remove_physical(rid)?;
    }
    // UPDATE LOCALLY rec SET deletion_time = 0 SEE DELETED
    //   WHERE deletion_time > T_checkpoint
    let bounds = ScanBounds::deleted_after(t_ckpt);
    let victims = scan_rids(engine.pool(), table, ReadMode::SeeDeleted, bounds, |t| {
        Ok(t.deletion_ts()? > t_ckpt)
    })?;
    let undeleted = victims.len() as u64;
    for (rid, _) in victims {
        engine.set_deletion(rid, Timestamp::ZERO)?;
    }
    Ok((removed, undeleted))
}

/// Phase 2, first half (§5.3): copy deletion times applied after the
/// checkpoint to tuples inserted at or before it. Returns how many.
fn phase2_deletions(
    ctx: &RecoveryContext,
    table: TableId,
    plan: &[RecoveryObject],
    ckpt: Timestamp,
    hwm: Timestamp,
) -> DbResult<u64> {
    // SELECT REMOTELY tuple_id, deletion_time FROM recovery_object
    //   SEE DELETED HISTORICAL WITH TIME hwm
    //   WHERE recovery_predicate AND insertion_time <= T_checkpoint
    //     AND deletion_time > T_checkpoint
    let mut pairs: HashMap<i64, Timestamp> = HashMap::new();
    for obj in plan {
        let mut chan = ctx.connect(obj.buddy)?;
        let mut scan = RemoteScan::new(&obj.table, WireReadMode::SeeDeletedHistorical(hwm));
        scan.predicate = obj.predicate.clone();
        scan.ins_at_or_before = Some(ckpt);
        scan.del_after = Some(ckpt);
        scan.ids_and_deletions_only = true;
        scan_rpc_streaming(chan.as_mut(), &scan, |batch| {
            for t in batch {
                let id = t.get(0).as_i64()?;
                let del = t.get(1).as_time()?;
                pairs.insert(id, del);
            }
            Ok(())
        })?;
    }
    apply_deletion_pairs(ctx, table, &pairs)
}

/// For each `(tuple_id, del_time)` pair, updates the live local version:
///   UPDATE LOCALLY rec SET deletion_time = del_time SEE DELETED
///     WHERE tuple_id = tup_id AND deletion_time = 0
/// Implemented as one batch scan (an index lookup per pair in the thesis;
/// batching keeps recovery independent of index warmth).
fn apply_deletion_pairs(
    ctx: &RecoveryContext,
    table: TableId,
    pairs: &HashMap<i64, Timestamp>,
) -> DbResult<u64> {
    if pairs.is_empty() {
        return Ok(0);
    }
    let engine = &ctx.engine;
    let victims = scan_rids(
        engine.pool(),
        table,
        ReadMode::SeeDeleted,
        ScanBounds::all(),
        |t| {
            if t.deletion_ts()? != Timestamp::ZERO {
                return Ok(false); // "AND deletion_time = 0": newest version
            }
            let id = t.get(2).as_i64()?;
            Ok(pairs.contains_key(&id))
        },
    )?;
    let mut applied = 0u64;
    for (rid, tup) in victims {
        let id = tup.get(2).as_i64()?;
        if let Some(del) = pairs.get(&id) {
            engine.set_deletion(rid, *del)?;
            applied += 1;
        }
    }
    Ok(applied)
}

/// Phase 2, second half (§5.3): copy whole tuples inserted in
/// `(T_checkpoint, HWM]`. Returns how many.
fn phase2_inserts(
    ctx: &RecoveryContext,
    table: TableId,
    plan: &[RecoveryObject],
    ckpt: Timestamp,
    hwm: Timestamp,
) -> DbResult<u64> {
    // INSERT LOCALLY INTO rec (SELECT REMOTELY * FROM recovery_object
    //   SEE DELETED HISTORICAL WITH TIME hwm
    //   WHERE recovery_predicate AND insertion_time > T_checkpoint
    //     AND insertion_time <= hwm)
    let engine = &ctx.engine;
    let mut copied = 0u64;
    for obj in plan {
        let mut chan = ctx.connect(obj.buddy)?;
        let mut scan = RemoteScan::new(&obj.table, WireReadMode::SeeDeletedHistorical(hwm));
        scan.predicate = obj.predicate.clone();
        scan.ins_after = Some(ckpt);
        scan_rpc_streaming(chan.as_mut(), &scan, |batch| {
            for t in &batch {
                engine.insert_recovered(table, t)?;
            }
            copied += batch.len() as u64;
            Ok(())
        })?;
    }
    Ok(copied)
}

/// Phase 3 (§5.4): locked catch-up, join pending transactions, come online.
/// Returns the time the object is consistent up to.
fn phase3(
    ctx: &RecoveryContext,
    table: TableId,
    table_name: &str,
    plan: &[RecoveryObject],
    hwm: Timestamp,
    report: &mut ObjectReport,
) -> DbResult<Timestamp> {
    let engine = &ctx.engine;
    // A dedicated lock-owner transaction id for this recovery run.
    let lock_tid = TransactionId::from_parts(ctx.site, 0x0000_7ec0_0000_0000 | table.0 as u64);
    // 1) ACQUIRE REMOTELY READ LOCK ON recovery_object ON SITE buddy —
    //    retried until granted (§5.4.1). One persistent channel per buddy:
    //    the lock lives as long as the connection (a dead recoverer's locks
    //    are released by the buddy's failure detection, §5.5.1).
    let mut lock_chans: Vec<(SiteId, Box<dyn Channel>)> = Vec::new();
    for obj in plan {
        let mut chan = ctx.connect(obj.buddy)?;
        let deadline = Instant::now() + ctx.config.lock_retry_for;
        loop {
            let req = Request::AcquireTableLock {
                tid: lock_tid,
                table: obj.table.clone(),
            };
            match rpc(chan.as_mut(), &req)? {
                Response::Ok => break,
                Response::Err { msg } => {
                    if Instant::now() >= deadline {
                        return Err(DbError::LockTimeout {
                            txn: lock_tid,
                            what: format!("{} at {} ({msg})", obj.table, obj.buddy),
                        });
                    }
                    // Deadlock timeout at the buddy: retry (§5.4.1).
                    std::thread::sleep(Duration::from_millis(10));
                }
                other => {
                    return Err(DbError::protocol(format!("bad lock reply {other:?}")))
                }
            }
        }
        lock_chans.push((obj.buddy, chan));
    }
    // 2) Missing deletions after the HWM:
    //    SELECT REMOTELY tuple_id, deletion_time ... SEE DELETED
    //      WHERE pred AND insertion_time <= hwm AND deletion_time > hwm
    let mut pairs: HashMap<i64, Timestamp> = HashMap::new();
    for (i, obj) in plan.iter().enumerate() {
        let chan = &mut lock_chans[i].1;
        let mut scan = RemoteScan::new(&obj.table, WireReadMode::SeeDeletedLocked(lock_tid));
        scan.predicate = obj.predicate.clone();
        scan.ins_at_or_before = Some(hwm);
        scan.del_after = Some(hwm);
        scan.ids_and_deletions_only = true;
        scan_rpc_streaming(chan.as_mut(), &scan, |batch| {
            for t in batch {
                pairs.insert(t.get(0).as_i64()?, t.get(1).as_time()?);
            }
            Ok(())
        })?;
    }
    report.deletions_copied += apply_deletion_pairs(ctx, table, &pairs)?;
    // 3) Missing insertions after the HWM:
    //    INSERT LOCALLY INTO rec (SELECT REMOTELY * ... SEE DELETED
    //      WHERE pred AND insertion_time > hwm
    //        AND insertion_time != uncommitted)
    for (i, obj) in plan.iter().enumerate() {
        let chan = &mut lock_chans[i].1;
        let mut scan = RemoteScan::new(&obj.table, WireReadMode::SeeDeletedLocked(lock_tid));
        scan.predicate = obj.predicate.clone();
        scan.ins_after = Some(hwm); // uncommitted excluded by the residual
        let mut copied = 0u64;
        scan_rpc_streaming(chan.as_mut(), &scan, |batch| {
            for t in &batch {
                engine.insert_recovered(table, t)?;
            }
            copied += batch.len() as u64;
            Ok(())
        })?;
        report.tuples_copied += copied;
    }
    if ctx.config.fail_point == RecoveryFailPoint::WhileHoldingLocks {
        // Simulated death of the recovering site: drop the lock channels
        // without releasing; the buddies' failure detection must override
        // the orphaned locks (§5.5.1).
        drop(lock_chans);
        return Err(DbError::SiteDown("injected crash while holding locks".into()));
    }
    // rec now holds all committed data; checkpoint at current time - 1
    // ("the current time has not expired", §5.4.1).
    let consistent_up_to = ctx.cluster_now()?.prev();
    engine.pool().flush_all()?;
    // 4) Join pending transactions (Fig 5-4): announce to the coordinator
    //    and wait for "all done".
    let mut coord = ctx.connect_coordinator()?;
    match rpc(
        coord.as_mut(),
        &Request::RecComingOnline {
            site: ctx.site,
            table: table_name.to_string(),
        },
    )? {
        Response::AllDone => {}
        other => {
            return Err(DbError::protocol(format!(
                "bad RecComingOnline reply {other:?}"
            )))
        }
    }
    // 5) RELEASE REMOTELY LOCK — rec is fully online.
    for (i, obj) in plan.iter().enumerate() {
        let chan = &mut lock_chans[i].1;
        let _ = rpc(
            chan.as_mut(),
            &Request::ReleaseTableLock {
                tid: lock_tid,
                table: obj.table.clone(),
            },
        )?;
    }
    Ok(consistent_up_to)
}
