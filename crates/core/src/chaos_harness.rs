//! Deterministic chaos soak harness: a seeded mixed workload driven through
//! a cluster whose links run over a [`harbor_net::ChaosTransport`] and whose
//! sites crash on a [`harbor_dist::CrashSchedule`], with cluster invariants
//! checked after every run.
//!
//! The harness is deliberately *serial*: one seeded RNG decides the whole
//! run — each operation, each crash, each partition, each recovery — so the
//! same seed replays the identical event schedule, and (because the chaos
//! layer's per-frame decisions are themselves seed-derived) the identical
//! fault trace. A failing seed is a reproducer, not an anecdote.
//!
//! Invariants checked at quiesce (`ChaosRunReport::violations` empty):
//!
//! 1. every *acknowledged* commit is present, with the acknowledged value,
//!    on every live replica (a commit the client saw must survive);
//! 2. all replicas are version-history equal (same `(id, v, ins, del)`
//!    version sets — the strictest equivalence short of page layout);
//! 3. no phantom rows: everything a replica holds traces back to an issued
//!    operation (a transaction that was aborted somewhere can never have
//!    committed elsewhere);
//! 4. K-safety is tracked: the minimum number of live replicas seen during
//!    the run is reported, and losing the last replica fails the run.

use crate::cluster::Cluster;
use crate::supervisor::{ReplicationSupervisor, SupervisorConfig};
use harbor_common::{DbResult, SiteId, Value};
use harbor_dist::{CrashPoint, UpdateRequest};
use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::Ordering;

/// One run's knobs. All probabilities are per-mille per operation.
#[derive(Clone, Debug)]
pub struct ChaosRunConfig {
    /// Master seed: drives the workload RNG; callers normally also build
    /// the cluster's [`harbor_net::ChaosConfig`] from it.
    pub seed: u64,
    /// Operations in the workload (inserts/updates/reads).
    pub ops: usize,
    /// Probability (‰) that an operation is preceded by a worker crash
    /// (fail-stop or an armed [`CrashPoint`], chosen by the RNG).
    pub crash_per_mille: u16,
    /// Probability (‰) that an operation is preceded by a partition.
    pub partition_per_mille: u16,
    /// Probability (‰) that an operation is preceded by a recovery attempt
    /// of one crashed site.
    pub recover_per_mille: u16,
    /// Heal an active partition after this many operations.
    pub partition_ops: usize,
    /// Never crash below this many live workers.
    pub min_live: usize,
    /// Client concurrency: each write slot of the schedule runs a *burst*
    /// of this many transactions on concurrent threads (1 = the classic
    /// serial harness). Every random draw a burst needs is taken from the
    /// run RNG *before* any thread starts, so the event schedule stays
    /// seed-deterministic; only commit interleaving varies. Bursts > 1 are
    /// what drives multiple transactions into one commit epoch.
    pub concurrent_streams: usize,
    /// Probability (‰) that an operation is preceded by a brand-new site
    /// joining under load (capped by `max_joins`). Membership draws are
    /// taken only when either membership probability is non-zero, so the
    /// classic profiles replay their historical schedules unchanged.
    pub join_per_mille: u16,
    /// Probability (‰) that an operation is preceded by a graceful
    /// decommission of a live site (guarded so every table keeps at least
    /// two other live copies and the cluster stays above `min_live`).
    pub decommission_per_mille: u16,
    /// Upper bound on sites joined during one run.
    pub max_joins: usize,
    /// Run a [`ReplicationSupervisor`] ticked synchronously after every
    /// operation (deterministic: no background thread), so kill-below-K
    /// deficits heal without the harness's own recovery events.
    pub supervisor: bool,
}

impl ChaosRunConfig {
    /// The CI soak profile: short, bounded, but with every fault class
    /// reachable.
    pub fn soak(seed: u64) -> Self {
        ChaosRunConfig {
            seed,
            ops: 120,
            crash_per_mille: 40,
            partition_per_mille: 25,
            recover_per_mille: 60,
            partition_ops: 3,
            min_live: 2,
            concurrent_streams: 1,
            join_per_mille: 0,
            decommission_per_mille: 0,
            max_joins: 0,
            supervisor: false,
        }
    }

    /// The batched-commit soak profile: the same fault classes, but write
    /// slots run 4-wide bursts so epochs form at the coordinator (pair with
    /// a 2PC cluster built with `epoch_commit` set).
    pub fn soak_batched(seed: u64) -> Self {
        ChaosRunConfig {
            concurrent_streams: 4,
            ..Self::soak(seed)
        }
    }

    /// The grow/shrink soak profile: the classic fault classes plus
    /// membership churn — sites join mid-burst, live sites decommission
    /// mid-recovery — with the replication supervisor healing
    /// kill-below-K deficits.
    pub fn soak_membership(seed: u64) -> Self {
        ChaosRunConfig {
            join_per_mille: 35,
            decommission_per_mille: 25,
            max_joins: 2,
            supervisor: true,
            ..Self::soak(seed)
        }
    }
}

/// What one chaos run did and found.
#[derive(Clone, Debug, Default)]
pub struct ChaosRunReport {
    pub committed: usize,
    pub aborted: usize,
    pub reads: usize,
    pub read_errors: usize,
    pub crashes: usize,
    pub partitions: usize,
    pub recoveries: usize,
    pub failed_recoveries: usize,
    /// Minimum live-replica count observed (K-safety floor).
    pub min_live_seen: usize,
    /// The deterministic event schedule ("op 12: crash site-2 fail-stop").
    pub schedule: Vec<String>,
    /// The chaos layer's canonical fault trace (empty when chaos is off),
    /// followed by each site's canonical disk-fault trace when the cluster
    /// was built with a [`harbor_storage::DiskFaultConfig`].
    pub fault_trace: String,
    /// Disk faults injected across all sites (0 without a fault plan).
    pub disk_faults_injected: u64,
    /// Pages checksum-scanned by the quiesce scrub.
    pub scrub_pages_scanned: u64,
    /// Corrupt pages the quiesce scrub found (and repaired).
    pub scrub_corrupt_pages: u64,
    /// Bytes fetched from buddies to repair corrupt pages.
    pub scrub_bytes_shipped: u64,
    /// Invariant violations; an empty vector is a passing run.
    pub violations: Vec<String>,
    /// Per-site read-hot-path summaries at quiesce: aggregate buffer-pool
    /// hit/miss/eviction counters, scan admission counters, zero-copy bytes
    /// shipped, and the per-shard pool breakdown (`hits/misses/evictions/
    /// resident` per shard).
    pub read_path: Vec<String>,
    /// Coordinator commit-path summary at quiesce: forced writes, physical
    /// syncs, batched syncs saved, and the epoch-size histogram.
    pub commit_path: String,
    /// Sites joined / joins rolled back during the run.
    pub joins: usize,
    pub failed_joins: usize,
    /// Sites gracefully decommissioned / refused decommissions.
    pub decommissions: usize,
    pub failed_decommissions: usize,
    /// Repairs the replication supervisor completed (0 without one).
    pub auto_repairs: u64,
    /// Supervisor ticks run / ticks skipped by the admission throttle.
    pub supervisor_ticks: u64,
    pub supervisor_throttled: u64,
    /// Coordinator membership counters at quiesce
    /// (`joins=.. decommissions=.. auto_repairs=.. backoff_retries=..`).
    pub membership: String,
}

/// Deterministic splitmix64 stream for the event schedule (the chaos layer
/// has its own, keyed per link; this one is per run).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Last client-visible knowledge about one key of the workload table.
#[derive(Clone, Debug, Default)]
struct KeyState {
    /// Value of the last *acknowledged* write, if any write was acked.
    acked: Option<i64>,
    /// Whether the row's insert was acknowledged (row must exist).
    insert_acked: bool,
    /// Whether any write to the key was ever attempted (row may exist).
    attempted: bool,
    /// Values of writes whose outcome is unknown (commit returned an error
    /// after the insert was acked — the value may or may not have stuck).
    maybe: Vec<i64>,
}

impl Cluster {
    /// Runs a seeded chaos workload against this cluster and checks the
    /// invariants at quiesce. The cluster should be built with
    /// [`crate::ClusterConfig::chaos`] set (the harness also works without
    /// chaos — then only crash-schedule faults fire) and one or more
    /// `(id Int64, v Int32)` tables, which the workload targets. With
    /// `concurrent_streams > 1` each burst lane is pinned round-robin to a
    /// table, so a cluster with as many tables as lanes gives every lane a
    /// contention-free stream (page locks otherwise serialize the burst).
    pub fn run_chaos(&self, cfg: &ChaosRunConfig) -> DbResult<ChaosRunReport> {
        let table = self.config().tables[0].name.clone();
        let burst = cfg.concurrent_streams.max(1);
        let lane_tables: Vec<String> = (0..burst)
            .map(|lane| {
                let tables = &self.config().tables;
                tables[lane % tables.len()].name.clone()
            })
            .collect();
        let mut rng = Rng(cfg.seed ^ 0xC0FFEE);
        let mut report = ChaosRunReport::default();
        let mut keys: BTreeMap<String, BTreeMap<i64, KeyState>> = BTreeMap::new();
        let all_sites = self.worker_sites();
        report.min_live_seen = all_sites.len();
        let mut partition_left = 0usize;
        // Membership churn state: joined sites take fresh, monotonically
        // increasing ids so a decommissioned id is never reused.
        let mut next_new_site: u16 = self
            .placement()
            .member_sites()
            .iter()
            .map(|s| s.0)
            .max()
            .unwrap_or(0)
            + 1;
        let mut joins_done = 0usize;
        // Ticked synchronously after each op — deterministic, unlike the
        // background thread of `Cluster::start_supervisor`.
        let mut supervisor = cfg
            .supervisor
            .then(|| ReplicationSupervisor::new(SupervisorConfig::for_tests(cfg.seed), self));
        if let Some(chaos) = self.chaos() {
            chaos.clear_trace();
            chaos.set_enabled(true);
        }
        // Disk faults are independent of network chaos: arm them for the
        // whole run (a no-op when the cluster has no fault plan).
        self.set_disk_faults_enabled(true);

        for op in 0..cfg.ops {
            // --- scheduled events -------------------------------------
            let draw = rng.below(1000) as u16;
            if draw < cfg.crash_per_mille {
                self.chaos_crash_event(op, &mut rng, cfg, &mut report);
            } else if draw < cfg.crash_per_mille + cfg.partition_per_mille {
                if partition_left == 0 && self.chaos().is_some() {
                    let live = self.live_sites();
                    if live.len() > cfg.min_live {
                        let victim = live[rng.below(live.len() as u64) as usize];
                        let name = format!("site-{}", victim.0);
                        self.chaos()
                            .unwrap()
                            .partition(&[&name], &["coordinator"], true);
                        partition_left = cfg.partition_ops;
                        report.partitions += 1;
                        report
                            .schedule
                            .push(format!("op {op}: partition {name} | coordinator"));
                    }
                }
            } else if draw < cfg.crash_per_mille + cfg.partition_per_mille + cfg.recover_per_mille {
                // Recover one crashed site (only once the net is whole —
                // recovery through an active partition is retried at
                // quiesce anyway).
                if partition_left == 0 {
                    let crashed: Vec<SiteId> = self
                        .placement()
                        .member_sites()
                        .into_iter()
                        .filter(|s| self.is_crashed(*s))
                        .collect();
                    if !crashed.is_empty() {
                        let site = crashed[rng.below(crashed.len() as u64) as usize];
                        self.try_chaos_recover(&format!("op {op}"), site, &mut report);
                    }
                }
            }
            // --- membership events (grow/shrink) -----------------------
            // Gated on non-zero probabilities so the classic profiles take
            // the exact historical draw sequence from the run RNG.
            if cfg.join_per_mille > 0 || cfg.decommission_per_mille > 0 {
                let mdraw = rng.below(1000) as u16;
                if mdraw < cfg.join_per_mille {
                    // Join a brand-new site under load. Like recovery, the
                    // bootstrap needs a clean commit state — a buddy stuck
                    // prepared-to-commit would serve catch-up scans that
                    // miss an acked commit.
                    if joins_done < cfg.max_joins
                        && partition_left == 0
                        && self.resolve_pending_txns(&format!("op {op}"), &mut report)
                    {
                        let site = SiteId(next_new_site);
                        match self.join_worker(site) {
                            Ok(_) => {
                                joins_done += 1;
                                next_new_site += 1;
                                report.joins += 1;
                                report.schedule.push(format!("op {op}: join {site} ok"));
                            }
                            Err(e) => {
                                report.failed_joins += 1;
                                report
                                    .schedule
                                    .push(format!("op {op}: join {site} failed: {e}"));
                            }
                        }
                    }
                } else if mdraw < cfg.join_per_mille + cfg.decommission_per_mille
                    && partition_left == 0
                {
                    // Gracefully decommission a live site, but only one
                    // whose removal leaves every table it hosts with at
                    // least two other live copies (so later crashes still
                    // find a recovery buddy) and the cluster above its
                    // min-live floor.
                    let live = self.live_sites();
                    if live.len() > cfg.min_live {
                        let snap = self.placement().snapshot();
                        let candidates: Vec<SiteId> = live
                            .iter()
                            .copied()
                            .filter(|s| {
                                snap.objects_on(*s).iter().all(|(t, _)| {
                                    snap.sites_for(t)
                                        .map(|hosts| {
                                            hosts
                                                .iter()
                                                .filter(|h| live.contains(h) && **h != *s)
                                                .count()
                                                >= 2
                                        })
                                        .unwrap_or(false)
                                })
                            })
                            .collect();
                        if !candidates.is_empty()
                            && self.resolve_pending_txns(&format!("op {op}"), &mut report)
                        {
                            let victim = candidates[rng.below(candidates.len() as u64) as usize];
                            match self.decommission_worker(victim) {
                                Ok(_) => {
                                    report.decommissions += 1;
                                    report
                                        .schedule
                                        .push(format!("op {op}: decommission {victim} ok"));
                                }
                                Err(e) => {
                                    report.failed_decommissions += 1;
                                    report.schedule.push(format!(
                                        "op {op}: decommission {victim} failed: {e}"
                                    ));
                                }
                            }
                        }
                    }
                }
            }

            if partition_left > 0 {
                partition_left -= 1;
                if partition_left == 0 {
                    if let Some(chaos) = self.chaos() {
                        chaos.heal();
                    }
                    report.schedule.push(format!("op {op}: heal"));
                }
            }

            // An armed crash point on the sole remaining replica would take
            // the cluster to zero live copies when it fires, and with every
            // copy down no site can ever recover (recovery needs a live
            // buddy) — disarm it instead.
            let live = self.live_sites();
            if live.len() == 1 {
                let last = live[0];
                if self
                    .crash_schedule()
                    .armed()
                    .iter()
                    .any(|(s, _)| *s == last)
                {
                    self.crash_schedule().disarm_if(last, |_| true);
                    report
                        .schedule
                        .push(format!("op {op}: disarm {last} (last live replica)"));
                }
            }

            // --- one workload operation -------------------------------
            // With `concurrent_streams > 1` a write slot becomes a burst:
            // every random draw the burst needs happens here, on the run
            // RNG, before any client thread starts — so the seed still
            // determines the full event schedule and only the commit
            // interleaving (which is what feeds epochs) is concurrent.
            let kind = rng.below(10);
            if kind < 4 {
                // Insert fresh keys (one per burst lane; lanes never share
                // a key, so outcomes can be applied lane-by-lane).
                let writes: Vec<(usize, i64, i64)> = (0..burst)
                    .map(|lane| {
                        (
                            lane,
                            (op * burst + lane) as i64,
                            rng.below(1_000_000) as i64,
                        )
                    })
                    .collect();
                for (lane, id, _) in &writes {
                    keys.entry(lane_tables[*lane].clone())
                        .or_default()
                        .entry(*id)
                        .or_default()
                        .attempted = true;
                }
                let txns: Vec<Vec<UpdateRequest>> = writes
                    .iter()
                    .map(|(lane, id, v)| {
                        vec![UpdateRequest::Insert {
                            table: lane_tables[*lane].clone(),
                            values: vec![Value::Int64(*id), Value::Int32(*v as i32)],
                        }]
                    })
                    .collect();
                for ((lane, id, v), ok) in writes.iter().zip(self.run_chaos_burst(txns)) {
                    let st = keys
                        .entry(lane_tables[*lane].clone())
                        .or_default()
                        .entry(*id)
                        .or_default();
                    if ok {
                        st.insert_acked = true;
                        st.acked = Some(*v);
                        st.maybe.clear();
                        report.committed += 1;
                    } else {
                        st.maybe.push(*v);
                        report.aborted += 1;
                    }
                }
            } else if kind < 7 {
                // Update previously inserted keys, if any. Burst lanes must
                // target *distinct* keys: two concurrent updates of one key
                // would leave "which one is visible" up to commit order,
                // which the lane-ordered bookkeeping below cannot model.
                let known: Vec<(String, i64)> = keys
                    .iter()
                    .flat_map(|(t, m)| {
                        m.iter()
                            .filter(|(_, s)| s.insert_acked)
                            .map(move |(k, _)| (t.clone(), *k))
                    })
                    .collect();
                let mut picked: Vec<(String, i64, i64)> = Vec::new();
                for _ in 0..burst {
                    if let Some((t, id)) = known.get(rng.below(known.len().max(1) as u64) as usize)
                    {
                        let v = rng.below(1_000_000) as i64;
                        if !picked.iter().any(|(pt, pk, _)| pt == t && pk == id) {
                            picked.push((t.clone(), *id, v));
                        }
                    }
                }
                let txns: Vec<Vec<UpdateRequest>> = picked
                    .iter()
                    .map(|(t, id, v)| {
                        vec![UpdateRequest::UpdateByKey {
                            table: t.clone(),
                            key: *id,
                            set: vec![(1, Value::Int32(*v as i32))],
                        }]
                    })
                    .collect();
                for ((t, id, v), ok) in picked.iter().zip(self.run_chaos_burst(txns)) {
                    if let Some(st) = keys.get_mut(t).and_then(|m| m.get_mut(id)) {
                        if ok {
                            st.acked = Some(*v);
                            st.maybe.clear();
                            report.committed += 1;
                        } else {
                            st.maybe.push(*v);
                            report.aborted += 1;
                        }
                    }
                }
            } else {
                // Historical read through the coordinator (exercises the
                // bounded-retry degradation path).
                report.reads += 1;
                let now = self.coordinator().authority().now().prev();
                if self
                    .coordinator()
                    .read_historical(&table, now, |_| {})
                    .is_err()
                {
                    report.read_errors += 1;
                }
            }

            // Reap sites that crashed themselves via the schedule, and
            // fail-stop workers the coordinator presumed dead (a severed or
            // partitioned link, §5.5.1): they may have missed commits and
            // must rejoin through recovery, not keep serving stale state.
            // Two guards keep the cluster recoverable: the last live replica
            // is never fail-stopped (with every copy down no site could ever
            // recover), and a swept site is re-synced in place so failures
            // do not accumulate until no complete copy remains.
            for site in self.reap_scheduled_crashes() {
                report.schedule.push(format!("op {op}: reaped {site}"));
            }
            for site in self.placement().member_sites() {
                if self.is_crashed(site) || !self.coordinator().is_dead(site) {
                    continue;
                }
                if self.live_sites().len() <= 1 {
                    report.schedule.push(format!(
                        "op {op}: defer fail-stop of presumed-dead {site} (last live replica)"
                    ));
                    continue;
                }
                if self.crash_worker(site).is_ok() {
                    report
                        .schedule
                        .push(format!("op {op}: fail-stop presumed-dead {site}"));
                    self.try_chaos_recover(&format!("op {op}"), site, &mut report);
                }
            }
            // The supervisor heals under the same clean-commit-state guard
            // the harness's own recoveries use.
            if let Some(sup) = supervisor.as_mut() {
                if self.resolve_pending_txns(&format!("op {op}"), &mut report) {
                    if let Some(repair) = sup.tick(self, op as u64) {
                        report
                            .schedule
                            .push(format!("op {op}: supervisor repaired {repair:?}"));
                    }
                }
            }
            report.min_live_seen = report.min_live_seen.min(self.live_sites().len());
        }

        // --- quiesce ----------------------------------------------------
        if let Some(chaos) = self.chaos() {
            chaos.heal();
            chaos.set_enabled(false);
        }
        self.set_disk_faults_enabled(false);
        // Membership may have churned mid-run: quiesce against the
        // catalog's *current* roster (joined sites included, decommissioned
        // sites gone), not the boot-time one.
        let all_sites: Vec<SiteId> = {
            let mut v = self.placement().member_sites();
            v.sort();
            v
        };
        for site in &all_sites {
            self.crash_schedule().disarm_if(*site, |_| true);
        }
        for site in self.reap_scheduled_crashes() {
            report.schedule.push(format!("quiesce: reaped {site}"));
        }
        // Quiesce can need several rounds: when every replica was presumed
        // dead, one was kept up (deferred fail-stop) to serve as the
        // recovery buddy, and can only be fail-stopped and re-synced itself
        // once a peer has rejoined.
        let mut scrubbed: HashSet<SiteId> = HashSet::new();
        for round in 0..=all_sites.len() {
            let tag = format!("quiesce[{round}]");
            let txns_clear = self.resolve_pending_txns(&tag, &mut report);
            // Scrub every live site before any recovery attempt: a corrupt
            // buddy page must be repaired before it serves catch-up scans.
            // Deferred while commit state is in doubt — the repair diff
            // must not race an insert that is still prepared locally but
            // already committed at the buddy.
            if txns_clear {
                for site in self.live_sites() {
                    if self.disk_fault_plan(site).is_none() || scrubbed.contains(&site) {
                        continue;
                    }
                    match self.scrub_worker(site) {
                        Ok(r) => {
                            scrubbed.insert(site);
                            report.scrub_pages_scanned += r.pages_scanned;
                            report.scrub_corrupt_pages += r.corrupt_pages;
                            report.scrub_bytes_shipped += r.bytes_shipped;
                            if r.corrupt_pages > 0 {
                                report.schedule.push(format!(
                                    "{tag}: scrub {site}: {} corrupt ({} healed, \
                                     {} refetched, {} full)",
                                    r.corrupt_pages,
                                    r.self_healed,
                                    r.pages_refetched,
                                    r.full_recoveries
                                ));
                            }
                        }
                        // Retried next round — a buddy may still be down.
                        Err(e) => report
                            .schedule
                            .push(format!("{tag}: scrub {site} failed: {e}")),
                    }
                }
            }
            for site in all_sites.iter().copied() {
                if !self.is_crashed(site)
                    && self.coordinator().is_dead(site)
                    && self.live_sites().len() > 1
                    && self.crash_worker(site).is_ok()
                {
                    report
                        .schedule
                        .push(format!("{tag}: fail-stop presumed-dead {site}"));
                }
            }
            let crashed: Vec<SiteId> = all_sites
                .iter()
                .copied()
                .filter(|s| self.is_crashed(*s))
                .collect();
            let stale = self
                .live_sites()
                .into_iter()
                .any(|s| self.coordinator().is_dead(s));
            if crashed.is_empty() && !stale {
                break;
            }
            for site in crashed {
                for _attempt in 0..3 {
                    if self.try_chaos_recover(&tag, site, &mut report) {
                        break;
                    }
                }
            }
        }
        for site in &all_sites {
            if self.is_crashed(*site) {
                report
                    .violations
                    .push(format!("{site} unrecoverable at quiesce"));
            } else if self.coordinator().is_dead(*site) {
                report
                    .violations
                    .push(format!("{site} still presumed dead at quiesce"));
            } else if self.disk_fault_plan(*site).is_some() && !scrubbed.contains(site) {
                // A site recovered in the final round was already scrubbed
                // inside recovery; every other live site must have come
                // through `scrub_worker` clean.
                match self.scrub_worker(*site) {
                    Ok(r) => {
                        report.scrub_pages_scanned += r.pages_scanned;
                        report.scrub_corrupt_pages += r.corrupt_pages;
                        report.scrub_bytes_shipped += r.bytes_shipped;
                    }
                    Err(e) => report
                        .violations
                        .push(format!("{site} never scrubbed clean: {e}")),
                }
            }
        }
        if let Some(chaos) = self.chaos() {
            report.fault_trace = chaos.trace_canonical();
        }
        report.disk_faults_injected = self.disk_faults_injected();
        for site in &all_sites {
            if let Some(plan) = self.disk_fault_plan(*site) {
                let t = plan.trace_canonical();
                if !t.is_empty() {
                    report.fault_trace.push_str(&format!("[disk {site}]\n{t}"));
                }
            }
        }

        // --- membership convergence -------------------------------------
        // No copy may still be mid-join at quiesce, and every member must
        // have come back live (the liveness half is covered by the crashed/
        // presumed-dead checks above, which already run over the current
        // roster). Version-history equality across each table's hosts is
        // re-checked by invariant (2) below, now including joined sites.
        for (t, site) in self.placement().joining_copies() {
            report
                .violations
                .push(format!("copy of {t:?} on {site} still joining at quiesce"));
        }
        let coord_metrics = self.coordinator().metrics().snapshot();
        report.membership = coord_metrics.membership_summary();
        report.auto_repairs = coord_metrics.auto_repairs;
        if let Some(sup) = supervisor.as_ref() {
            report.supervisor_ticks = sup.stats().ticks.load(Ordering::Relaxed);
            report.supervisor_throttled = sup.stats().throttled.load(Ordering::Relaxed);
        }

        // --- invariants -------------------------------------------------
        for (t, table_keys) in &keys {
            self.check_invariants(t, table_keys, &mut report)?;
        }
        for site in &all_sites {
            if let Ok(e) = self.engine(*site) {
                let snap = e.metrics().snapshot();
                let shards: Vec<String> = e
                    .pool()
                    .shard_stats()
                    .iter()
                    .map(|s| format!("{}h/{}m/{}e/{}r", s.hits, s.misses, s.evictions, s.resident))
                    .collect();
                report.read_path.push(format!(
                    "{site}: {} shards[{}] {}",
                    snap.read_path_summary(),
                    shards.join(" "),
                    snap.scrub_summary()
                ));
            }
        }
        report.commit_path = self
            .coordinator()
            .metrics()
            .snapshot()
            .commit_path_summary();
        Ok(report)
    }

    /// Runs one burst of transactions: inline when it is a single
    /// transaction (the classic serial harness — byte-for-byte the same
    /// schedule as before bursts existed), on scoped threads otherwise.
    /// Returns per-lane commit outcomes in lane order.
    fn run_chaos_burst(&self, txns: Vec<Vec<UpdateRequest>>) -> Vec<bool> {
        if txns.len() <= 1 {
            return txns
                .into_iter()
                .map(|ops| self.run_txn(ops).is_ok())
                .collect();
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = txns
                .into_iter()
                .map(|ops| scope.spawn(move || self.run_txn(ops).is_ok()))
                .collect();
            handles
                .into_iter()
                .map(|h| matches!(h.join(), Ok(true)))
                .collect()
        })
    }

    fn chaos_crash_event(
        &self,
        op: usize,
        rng: &mut Rng,
        cfg: &ChaosRunConfig,
        report: &mut ChaosRunReport,
    ) {
        let live = self.live_sites();
        if live.len() <= cfg.min_live {
            return;
        }
        let victim = live[rng.below(live.len() as u64) as usize];
        report.crashes += 1;
        match rng.below(3) {
            0 => {
                if self.crash_worker(victim).is_ok() {
                    report
                        .schedule
                        .push(format!("op {op}: crash {victim} fail-stop"));
                }
            }
            1 => {
                self.arm_crash(victim, CrashPoint::WorkerDuringPrepareVote);
                report
                    .schedule
                    .push(format!("op {op}: arm {victim} during-prepare-vote"));
            }
            _ => {
                self.arm_crash(victim, CrashPoint::WorkerAfterPtcAck);
                report
                    .schedule
                    .push(format!("op {op}: arm {victim} after-ptc-ack"));
            }
        }
    }

    /// Terminates every undecided distributed transaction held by a live
    /// worker via the backup-coordinator protocol (§4.3.3), visiting sites
    /// in rank order so the lowest-ranked live participant decides and the
    /// rest adopt its outcome. Returns `true` when no undecided state
    /// remains. Background auto-consensus stays off in the harness (its
    /// resolutions would race the workload's channel creation and perturb
    /// the deterministic fault trace), so this is the failure detector's
    /// stand-in, run at deterministic points: before any recovery, because
    /// a buddy holding an acked commit in the prepared-to-commit state
    /// would serve catch-up scans that silently miss it.
    fn resolve_pending_txns(&self, tag: &str, report: &mut ChaosRunReport) -> bool {
        let mut all_clear = true;
        for site in self.live_sites() {
            let Ok(worker) = self.worker(site) else {
                continue;
            };
            for tid in worker.unresolved_dist_txns() {
                match worker.resolve_by_consensus(tid) {
                    Ok(true) => report
                        .schedule
                        .push(format!("{tag}: {site} resolved txn {}", tid.0)),
                    Ok(false) => {
                        all_clear = false;
                        report
                            .schedule
                            .push(format!("{tag}: {site} could not resolve txn {}", tid.0));
                    }
                    Err(e) => {
                        all_clear = false;
                        report
                            .schedule
                            .push(format!("{tag}: {site} resolving txn {} failed: {e}", tid.0));
                    }
                }
            }
        }
        all_clear
    }

    /// One guarded recovery attempt. Undecided commit-protocol state is
    /// terminated first, and the recovery is deferred (to a later event or
    /// to quiesce) while any remains — see [`Self::resolve_pending_txns`].
    fn try_chaos_recover(&self, tag: &str, site: SiteId, report: &mut ChaosRunReport) -> bool {
        if !self.resolve_pending_txns(tag, report) {
            report.schedule.push(format!(
                "{tag}: defer recover {site}: unresolved transactions"
            ));
            return false;
        }
        match self.recover_worker_harbor(site) {
            Ok(_) => {
                report.recoveries += 1;
                report.schedule.push(format!("{tag}: recover {site} ok"));
                true
            }
            Err(e) => {
                report.failed_recoveries += 1;
                report
                    .schedule
                    .push(format!("{tag}: recover {site} failed: {e}"));
                false
            }
        }
    }

    fn live_sites(&self) -> Vec<SiteId> {
        self.worker_sites()
            .into_iter()
            .filter(|s| !self.is_crashed(*s))
            .collect()
    }

    /// The invariant battery run at quiesce; failures are appended to
    /// `report.violations` (not returned as `Err` — an invariant violation
    /// is a *finding*, an `Err` is the harness itself breaking).
    fn check_invariants(
        &self,
        table: &str,
        keys: &BTreeMap<i64, KeyState>,
        report: &mut ChaosRunReport,
    ) -> DbResult<()> {
        let live = self.live_sites();
        if live.is_empty() {
            report.violations.push("no live replicas at quiesce".into());
            return Ok(());
        }
        // (2) replicas version-history equal.
        let reference: Vec<(i64, i64, u64, u64)> = self.version_history(table, live[0])?;
        for site in live.iter().skip(1) {
            let other = self.version_history(table, *site)?;
            if other != reference {
                report.violations.push(format!(
                    "version histories diverge: {} has {} versions, {} has {}",
                    live[0],
                    reference.len(),
                    site,
                    other.len()
                ));
            }
        }
        // (1) + (3) acked commits present with acked values; no phantoms.
        // Current visible state = versions with no deletion.
        let mut state: BTreeMap<i64, Vec<i64>> = BTreeMap::new();
        for (id, v, _ins, del) in &reference {
            if *del == 0 {
                state.entry(*id).or_default().push(*v);
            }
        }
        for (id, versions) in &state {
            if versions.len() > 1 {
                report
                    .violations
                    .push(format!("key {id} visible {} times", versions.len()));
            }
        }
        for (id, st) in keys {
            let visible = state.get(id).and_then(|v| v.first().copied());
            match (st.insert_acked, visible) {
                (true, None) => report
                    .violations
                    .push(format!("acked key {id} missing from replicas")),
                (true, Some(v)) => {
                    let ok = st.acked == Some(v) || st.maybe.contains(&v);
                    if !ok {
                        report.violations.push(format!(
                            "key {id} holds {v}, client acked {:?} (maybe {:?})",
                            st.acked, st.maybe
                        ));
                    }
                }
                (false, Some(v)) => {
                    // Insert never acked: the value may only come from the
                    // indeterminate attempts.
                    if !st.maybe.contains(&v) {
                        report
                            .violations
                            .push(format!("unacked key {id} holds unexplained value {v}"));
                    }
                }
                (false, None) => {}
            }
        }
        for id in state.keys() {
            if !keys.get(id).map(|s| s.attempted).unwrap_or(false) {
                report.violations.push(format!("phantom key {id}"));
            }
        }
        // (4) K-safety floor.
        if report.min_live_seen == 0 {
            report.violations.push("all replicas lost mid-run".into());
        }
        Ok(())
    }

    /// Every version a site holds, committed or deleted, as
    /// `(id, v, ins, del)` sorted.
    fn version_history(&self, table: &str, site: SiteId) -> DbResult<Vec<(i64, i64, u64, u64)>> {
        let e = self.engine(site)?;
        let def = e
            .table_def(table)
            .ok_or_else(|| harbor_common::DbError::internal(format!("no table {table}")))?;
        let mut scan =
            harbor_exec::SeqScan::new(e.pool().clone(), def.id, harbor_exec::ReadMode::SeeDeleted)?;
        let mut out: Vec<(i64, i64, u64, u64)> = harbor_exec::collect(&mut scan)?
            .iter()
            .map(|t| {
                Ok((
                    t.get(2).as_i64()?,
                    t.get(3).as_i64()?,
                    t.get(0).as_time()?.0,
                    t.get(1).as_time()?.0,
                ))
            })
            .collect::<DbResult<_>>()?;
        out.sort_unstable();
        Ok(out)
    }
}
