//! The cluster facade: builds a coordinator plus N worker sites on one
//! transport, replicating tables across all workers (the thesis evaluation
//! topology: one coordinator, 2–3 workers, everything replicated).
//!
//! This is the crate's quickstart surface: build a cluster, run update
//! transactions, crash a worker, recover it with HARBOR or ARIES, and read
//! historically — all in a few lines (see `examples/quickstart.rs`).

use crate::recovery::{
    recover_object, recover_site, RecoveryConfig, RecoveryContext, RecoveryReport,
};
use harbor_common::{
    DbError, DbResult, FieldType, Metrics, SiteId, StorageConfig, Timestamp, Tuple, Value,
};
use harbor_dist::{
    Coordinator, CoordinatorConfig, CrashPoint, CrashSchedule, Placement, ProtocolKind,
    SharedPlacement, UpdateRequest, Worker, WorkerConfig,
};
use harbor_engine::{Engine, EngineOptions};
use harbor_net::{ChaosConfig, ChaosTransport, InMemNetwork, TcpTransport, Transport};
use harbor_storage::{DiskFaultConfig, DiskFaultPlan, PagePolicy};
use harbor_wal::aries::AriesReport;
use harbor_wal::GroupCommit;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Which transport the cluster runs on.
#[derive(Clone, Copy, Debug)]
pub enum TransportKind {
    /// In-process channels; optional injected per-message latency and
    /// finite link bandwidth (bytes/second) to model the paper's LAN.
    InMem {
        latency: Option<Duration>,
        bandwidth: Option<u64>,
    },
    /// Real loopback TCP sockets (the thesis' own model).
    Tcp,
}

/// One table to create on every worker.
#[derive(Clone, Debug)]
pub struct TableSpec {
    pub name: String,
    pub user_fields: Vec<(String, FieldType)>,
}

impl TableSpec {
    /// The evaluation schema: 16 four-byte-equivalent fields including the
    /// two timestamps (§6.2) — here the i64 key plus 13 i32 payload fields.
    pub fn paper_table(name: &str) -> Self {
        let mut fields = vec![("id".to_string(), FieldType::Int64)];
        for i in 0..13 {
            fields.push((format!("f{i}"), FieldType::Int32));
        }
        TableSpec {
            name: name.to_string(),
            user_fields: fields,
        }
    }

    /// A minimal two-column table for tests.
    pub fn small(name: &str) -> Self {
        TableSpec {
            name: name.to_string(),
            user_fields: vec![
                ("id".to_string(), FieldType::Int64),
                ("v".to_string(), FieldType::Int32),
            ],
        }
    }
}

/// Cluster construction options.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    pub protocol: ProtocolKind,
    pub num_workers: usize,
    pub storage: StorageConfig,
    pub group_commit: GroupCommit,
    /// Periodic checkpoint interval at workers (None = manual only).
    pub checkpoint_every: Option<Duration>,
    pub transport: TransportKind,
    pub tables: Vec<TableSpec>,
    /// Workers run the consensus protocol automatically on coordinator
    /// disconnect (3PC).
    pub auto_consensus: bool,
    pub recovery: RecoveryConfig,
    /// Deadlock resolution at the workers (thesis default: timeouts).
    pub deadlock: harbor_storage::DeadlockPolicy,
    /// Serve deletion recovery queries from the deletion log (§5.2
    /// footnote; ablation 4 compares on/off).
    pub use_deletion_log: bool,
    /// Rows per streamed scan batch at the workers (ablation 5).
    pub scan_batch: usize,
    /// Deterministic fault injection: when set, every inter-site link goes
    /// through a seeded [`ChaosTransport`]. The chaos layer is built
    /// *disabled* so cluster bootstrap is fault-free; tests flip it on via
    /// [`Cluster::chaos`].
    pub chaos: Option<ChaosConfig>,
    /// Deterministic disk-fault injection: when set, every worker's heap
    /// files go through a per-site [`DiskFaultPlan`] derived from this
    /// master config (see [`DiskFaultConfig::for_site`]). Plans are built
    /// *disarmed* so bootstrap is fault-free; tests flip them on via
    /// [`Cluster::set_disk_faults_enabled`]. Plans survive worker restarts,
    /// so a seed replays one byte-identical fault trace per site.
    pub disk_faults: Option<DiskFaultConfig>,
    /// Cluster-wide crash schedule probed by the coordinator and workers at
    /// the [`CrashPoint`] protocol steps.
    pub crash_schedule: Arc<CrashSchedule>,
    /// Liveness deadline for commit-protocol round trips and recovery scan
    /// frames. Must comfortably exceed the engine's lock timeout, which is
    /// a *normal* source of slow replies.
    pub rpc_deadline: Duration,
    /// Bounded retries for idempotent historical reads at the coordinator.
    pub read_retries: u32,
    /// Epoch group commit at the coordinator (2PC variants only; `None` =
    /// the serial paper-faithful commit path).
    pub epoch_commit: Option<harbor_dist::EpochCommitConfig>,
    /// Refuse updates for an object down to its last live copy (graceful
    /// degradation to read-only while the supervisor restores K). Off by
    /// default: the paper's crash-recovery experiments commit below K.
    pub degrade_read_only: bool,
}

impl ClusterConfig {
    pub fn new(protocol: ProtocolKind, num_workers: usize) -> Self {
        ClusterConfig {
            protocol,
            num_workers,
            storage: StorageConfig::default(),
            group_commit: GroupCommit::enabled(),
            checkpoint_every: None,
            transport: TransportKind::InMem {
                latency: None,
                bandwidth: None,
            },
            tables: Vec::new(),
            auto_consensus: false,
            recovery: RecoveryConfig::default(),
            deadlock: harbor_storage::DeadlockPolicy::Timeout,
            use_deletion_log: true,
            scan_batch: harbor_common::config::DEFAULT_SCAN_BATCH,
            chaos: None,
            disk_faults: None,
            crash_schedule: Arc::new(CrashSchedule::new()),
            rpc_deadline: harbor_dist::DEFAULT_RPC_DEADLINE,
            read_retries: harbor_dist::DEFAULT_READ_RETRIES,
            epoch_commit: None,
            degrade_read_only: false,
        }
    }

    /// Small storage, fast disk, two workers — unit/integration defaults.
    pub fn for_tests(protocol: ProtocolKind) -> Self {
        let mut cfg = Self::new(protocol, 2);
        cfg.storage = StorageConfig::for_tests();
        cfg.tables = vec![TableSpec::small("sales")];
        cfg
    }

    pub fn with_table(mut self, spec: TableSpec) -> Self {
        self.tables.push(spec);
        self
    }
}

struct WorkerHandle {
    worker: Arc<Worker>,
    engine: Arc<Engine>,
    metrics: Metrics,
}

/// A running cluster.
pub struct Cluster {
    cfg: ClusterConfig,
    dir: PathBuf,
    transport: Arc<dyn Transport>,
    /// The shared fault-injection layer (None when chaos is off).
    chaos: Option<Arc<ChaosTransport>>,
    /// Per-site disk-fault plans (empty when disk faults are off). Built
    /// once at `build` and reused across worker restarts so ordinals and
    /// the fault trace accumulate site-wide.
    disk_plans: HashMap<SiteId, Arc<DiskFaultPlan>>,
    /// Counts every message/byte crossing the cluster's transport.
    net_metrics: Metrics,
    /// The live placement catalog, shared with the coordinator: membership
    /// mutations made through either handle are visible to both.
    placement: SharedPlacement,
    coordinator: Arc<Coordinator>,
    workers: Mutex<HashMap<SiteId, WorkerHandle>>,
    crashed: Mutex<HashSet<SiteId>>,
    /// Optional transaction router: when set, [`Cluster::run_txn`] submits
    /// through it instead of driving the coordinator directly. The chaos
    /// soak uses this to push the workload through the front-door serving
    /// layer over real sockets without the harness drawing any extra
    /// randomness — a seed replays the same schedule routed or not.
    txn_router: Mutex<Option<TxnRouter>>,
}

/// A pluggable transaction submission path (see [`Cluster::set_txn_router`]).
pub type TxnRouter = Arc<dyn Fn(Vec<UpdateRequest>) -> DbResult<Timestamp> + Send + Sync>;

/// Site id of the coordinator.
pub const COORDINATOR_SITE: SiteId = SiteId(0);

impl Cluster {
    /// Builds and starts the cluster under `dir`.
    pub fn build(dir: impl AsRef<Path>, cfg: ClusterConfig) -> DbResult<Cluster> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let net_metrics = Metrics::new();
        let base: Arc<dyn Transport> = match cfg.transport {
            TransportKind::InMem {
                latency: Some(l),
                bandwidth: Some(b),
            } => Arc::new(InMemNetwork::with_link(net_metrics.clone(), l, b)),
            TransportKind::InMem {
                latency: Some(l),
                bandwidth: None,
            } => Arc::new(InMemNetwork::with_latency(net_metrics.clone(), l)),
            TransportKind::InMem { .. } => Arc::new(InMemNetwork::new(net_metrics.clone())),
            TransportKind::Tcp => Arc::new(TcpTransport::new(net_metrics.clone())),
        };
        // Every site talks through its own identity-carrying view of the
        // one shared chaos layer, so fault decisions and partitions are
        // keyed on logical site names, not transport addresses. Chaos
        // starts disabled: bootstrap is always fault-free.
        let chaos = cfg.chaos.clone().map(|c| {
            let ct = ChaosTransport::new(base.clone(), c, net_metrics.clone());
            ct.set_enabled(false);
            Arc::new(ct)
        });
        let site_transport = |name: &str| -> Arc<dyn Transport> {
            match &chaos {
                Some(ct) => Arc::new(ct.for_site(name)),
                None => base.clone(),
            }
        };
        let coord_transport = site_transport("coordinator");
        // Bind all listeners first so TCP port 0 resolves before the
        // address book is built.
        let coord_listener = match cfg.transport {
            TransportKind::Tcp => coord_transport.listen("127.0.0.1:0")?,
            _ => coord_transport.listen("coordinator")?,
        };
        let mut worker_listeners = Vec::new();
        for i in 1..=cfg.num_workers {
            let wt = site_transport(&format!("site-{i}"));
            let l = match cfg.transport {
                TransportKind::Tcp => wt.listen("127.0.0.1:0")?,
                _ => wt.listen(&format!("site-{i}"))?,
            };
            worker_listeners.push((SiteId(i as u16), l, wt));
        }
        let mut placement = Placement::new();
        placement.set_coordinator_addr(&coord_listener.local_addr());
        for (site, l, _) in &worker_listeners {
            placement.set_address(*site, &l.local_addr());
        }
        let worker_sites: Vec<SiteId> = worker_listeners.iter().map(|(s, _, _)| *s).collect();
        for spec in &cfg.tables {
            placement.add_replicated_table(&spec.name, &worker_sites);
        }
        let peers: HashMap<SiteId, String> = worker_listeners
            .iter()
            .map(|(s, l, _)| (*s, l.local_addr()))
            .collect();
        // Per-site disk-fault plans, disarmed until a test flips them on.
        let disk_plans: HashMap<SiteId, Arc<DiskFaultPlan>> = match &cfg.disk_faults {
            Some(base) => (1..=cfg.num_workers)
                .map(|i| {
                    let site = SiteId(i as u16);
                    (site, DiskFaultPlan::new(base.for_site(site.0)))
                })
                .collect(),
            None => HashMap::new(),
        };
        // Workers.
        let mut workers = HashMap::new();
        for (site, listener, wt) in worker_listeners {
            let wdir = dir.join(format!("site-{}", site.0));
            let engine = Self::open_engine(&wdir, site, &cfg, disk_plans.get(&site).cloned())?;
            for spec in &cfg.tables {
                if engine.table_def(&spec.name).is_none() {
                    engine.create_table(&spec.name, spec.user_fields.clone())?;
                }
            }
            let metrics = engine.metrics().clone();
            let addr = listener.local_addr();
            let worker = Worker::start_with_listener(
                engine.clone(),
                wt,
                WorkerConfig {
                    site,
                    addr: addr.clone(),
                    protocol: cfg.protocol,
                    checkpoint_every: cfg.checkpoint_every,
                    peers: peers.clone(),
                    coordinator: Some(coord_listener.local_addr()),
                    auto_consensus: cfg.auto_consensus,
                    use_deletion_log: cfg.use_deletion_log,
                    scan_batch: cfg.scan_batch,
                    crash_schedule: cfg.crash_schedule.clone(),
                },
                listener,
            )?;
            workers.insert(
                site,
                WorkerHandle {
                    worker,
                    engine,
                    metrics,
                },
            );
        }
        // Coordinator. It shares the SAME catalog handle the cluster keeps,
        // so membership changes (join/decommission/re-replication) are never
        // stale on either side.
        let placement = SharedPlacement::new(placement);
        let coordinator = Coordinator::start_with_listener(
            CoordinatorConfig {
                site: COORDINATOR_SITE,
                addr: coord_listener.local_addr(),
                protocol: cfg.protocol,
                log_dir: Some(dir.join("coordinator")),
                group_commit: cfg.group_commit,
                disk: cfg.storage.disk,
                rpc_deadline: cfg.rpc_deadline,
                read_retries: cfg.read_retries,
                crash_schedule: cfg.crash_schedule.clone(),
                epoch_commit: cfg.epoch_commit,
                degrade_read_only: cfg.degrade_read_only,
            },
            placement.clone(),
            coord_transport,
            Metrics::new(),
            coord_listener,
        )?;
        Ok(Cluster {
            cfg,
            dir,
            transport: base,
            chaos,
            disk_plans,
            net_metrics,
            placement,
            coordinator,
            workers: Mutex::new(workers),
            crashed: Mutex::new(HashSet::new()),
            txn_router: Mutex::new(None),
        })
    }

    fn open_engine(
        dir: &Path,
        site: SiteId,
        cfg: &ClusterConfig,
        disk_faults: Option<Arc<DiskFaultPlan>>,
    ) -> DbResult<Arc<Engine>> {
        let opts = EngineOptions {
            site,
            storage: cfg.storage.clone(),
            logging: cfg.protocol.workers_log(),
            group_commit: cfg.group_commit,
            policy: PagePolicy::steal_no_force(),
            deadlock: cfg.deadlock,
            disk_faults,
        };
        Engine::open(dir, opts)
    }

    pub fn coordinator(&self) -> &Arc<Coordinator> {
        &self.coordinator
    }

    /// The live, shared placement catalog (see [`SharedPlacement`]). Use
    /// [`SharedPlacement::snapshot`] for a point-in-time [`Placement`].
    pub fn placement(&self) -> &SharedPlacement {
        &self.placement
    }

    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// The fault-injection layer, when the cluster was built with
    /// [`ClusterConfig::chaos`]. Enable/partition/heal through this handle;
    /// the same seed replays the identical fault trace.
    pub fn chaos(&self) -> Option<&Arc<ChaosTransport>> {
        self.chaos.as_ref()
    }

    /// One site's disk-fault plan, when the cluster was built with
    /// [`ClusterConfig::disk_faults`].
    pub fn disk_fault_plan(&self, site: SiteId) -> Option<&Arc<DiskFaultPlan>> {
        self.disk_plans.get(&site)
    }

    /// Arms or disarms disk-fault injection on every site at once.
    /// Disarmed I/Os consume no ordinals, so the armed I/O sequence alone
    /// determines the fault trace.
    pub fn set_disk_faults_enabled(&self, on: bool) {
        for plan in self.disk_plans.values() {
            plan.set_enabled(on);
        }
    }

    /// Total disk faults injected across all sites.
    pub fn disk_faults_injected(&self) -> u64 {
        self.disk_plans.values().map(|p| p.injected()).sum()
    }

    /// The cluster-wide crash schedule (see [`CrashPoint`]).
    pub fn crash_schedule(&self) -> &Arc<CrashSchedule> {
        &self.cfg.crash_schedule
    }

    /// Arms a crash point for `site` on the shared schedule.
    pub fn arm_crash(&self, site: SiteId, point: CrashPoint) {
        self.cfg.crash_schedule.arm(site, point);
    }

    /// `site`'s identity-carrying view of the transport: chaos-wrapped when
    /// fault injection is on, the base transport otherwise.
    fn transport_as(&self, name: &str) -> Arc<dyn Transport> {
        match &self.chaos {
            Some(ct) => Arc::new(ct.for_site(name)),
            None => self.transport.clone(),
        }
    }

    /// Transport-level counters (messages/bytes for the whole cluster).
    pub fn net_metrics(&self) -> &Metrics {
        &self.net_metrics
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    pub fn worker_sites(&self) -> Vec<SiteId> {
        let mut v: Vec<SiteId> = self.workers.lock().keys().copied().collect();
        v.sort();
        v
    }

    /// The worker server handle of a live worker (consensus tests drive
    /// `resolve_by_consensus` through this).
    pub fn worker(&self, site: SiteId) -> DbResult<Arc<Worker>> {
        self.workers
            .lock()
            .get(&site)
            .map(|h| h.worker.clone())
            .ok_or_else(|| DbError::SiteDown(format!("{site} is not running")))
    }

    /// The engine of a live worker.
    pub fn engine(&self, site: SiteId) -> DbResult<Arc<Engine>> {
        self.workers
            .lock()
            .get(&site)
            .map(|h| h.engine.clone())
            .ok_or_else(|| DbError::SiteDown(format!("{site} is not running")))
    }

    /// Per-site metrics.
    pub fn worker_metrics(&self, site: SiteId) -> DbResult<Metrics> {
        self.workers
            .lock()
            .get(&site)
            .map(|h| h.metrics.clone())
            .ok_or_else(|| DbError::SiteDown(format!("{site} is not running")))
    }

    // ------------------------------------------------------------------
    // Convenience transaction helpers
    // ------------------------------------------------------------------

    /// Runs one transaction consisting of the given update requests. A
    /// failed update aborts the transaction before surfacing the error, so
    /// a fault mid-transaction can never leak an open transaction (and its
    /// locks) into the next operation.
    pub fn run_txn(&self, ops: Vec<UpdateRequest>) -> DbResult<Timestamp> {
        let router = self.txn_router.lock().clone();
        if let Some(route) = router {
            return route(ops);
        }
        let tid = self.coordinator.begin()?;
        for op in ops {
            if let Err(e) = self.coordinator.update(tid, op) {
                let _ = self.coordinator.abort(tid);
                return Err(e);
            }
        }
        self.coordinator.commit(tid)
    }

    /// Installs (or clears, with `None`) the transaction router consulted
    /// by [`Cluster::run_txn`]. Routing is transparent to the chaos
    /// harness: it changes *where* a transaction enters the system, never
    /// how many random draws the schedule makes, so pinned seeds replay
    /// byte-identically with or without a router.
    pub fn set_txn_router(&self, router: Option<TxnRouter>) {
        *self.txn_router.lock() = router;
    }

    /// Inserts one row in its own transaction.
    pub fn insert_one(&self, table: &str, values: Vec<Value>) -> DbResult<Timestamp> {
        self.run_txn(vec![UpdateRequest::Insert {
            table: table.to_string(),
            values,
        }])
    }

    /// Historical read against any live replica.
    pub fn read_historical(&self, table: &str, as_of: Timestamp) -> DbResult<Vec<Tuple>> {
        self.coordinator.read_historical(table, as_of, |_| {})
    }

    /// Latest-committed snapshot: historical read as of `now - 1`.
    pub fn read_latest(&self, table: &str) -> DbResult<Vec<Tuple>> {
        let now = self.coordinator.authority().now();
        self.read_historical(table, now.prev())
    }

    // ------------------------------------------------------------------
    // Failure and recovery
    // ------------------------------------------------------------------

    /// Fail-stop crash of one worker: all volatile state (buffer pool,
    /// locks, in-memory lists, unforced log tail) is dropped.
    pub fn crash_worker(&self, site: SiteId) -> DbResult<()> {
        let handle = self
            .workers
            .lock()
            .remove(&site)
            .ok_or_else(|| DbError::SiteDown(format!("{site} is not running")))?;
        handle.worker.crash();
        self.coordinator.mark_dead(site);
        self.crashed.lock().insert(site);
        drop(handle); // engine dropped: unflushed pages are gone
        Ok(())
    }

    pub fn is_crashed(&self, site: SiteId) -> bool {
        self.crashed.lock().contains(&site)
    }

    /// Tears down workers that crashed *themselves* through the crash
    /// schedule (a fired [`CrashPoint`] only sets the worker's shutdown
    /// flag — the site's threads cannot reap their own handle). Returns the
    /// sites reaped. Harness code calls this after driving traffic.
    pub fn reap_scheduled_crashes(&self) -> Vec<SiteId> {
        let dead: Vec<SiteId> = self
            .workers
            .lock()
            .iter()
            .filter(|(_, h)| h.worker.is_shutdown())
            .map(|(s, _)| *s)
            .collect();
        for site in &dead {
            let _ = self.crash_worker(*site);
        }
        dead
    }

    fn worker_addr(&self, site: SiteId) -> String {
        self.placement
            .address(site)
            .expect("address book covers all workers")
    }

    /// Restarts a crashed worker's engine and server without running any
    /// recovery (building block for both recovery paths).
    fn restart_worker(&self, site: SiteId) -> DbResult<Arc<Engine>> {
        if !self.crashed.lock().contains(&site) {
            return Err(DbError::internal(format!("{site} is not crashed")));
        }
        let wdir = self.dir.join(format!("site-{}", site.0));
        let engine =
            Self::open_engine(&wdir, site, &self.cfg, self.disk_plans.get(&site).cloned())?;
        let addr = self.worker_addr(site);
        let peers: HashMap<SiteId, String> = self
            .worker_sites_all()
            .into_iter()
            .map(|s| (s, self.worker_addr(s)))
            .collect();
        let worker = Worker::start(
            engine.clone(),
            self.transport_as(&format!("site-{}", site.0)),
            WorkerConfig {
                site,
                addr: addr.clone(),
                protocol: self.cfg.protocol,
                checkpoint_every: self.cfg.checkpoint_every,
                peers,
                coordinator: self.placement.coordinator_addr().ok(),
                auto_consensus: self.cfg.auto_consensus,
                use_deletion_log: self.cfg.use_deletion_log,
                scan_batch: self.cfg.scan_batch,
                crash_schedule: self.cfg.crash_schedule.clone(),
            },
        )?;
        let metrics = engine.metrics().clone();
        self.workers.insert_handle(
            site,
            WorkerHandle {
                worker,
                engine: engine.clone(),
                metrics,
            },
        );
        Ok(engine)
    }

    fn worker_sites_all(&self) -> Vec<SiteId> {
        // All placed worker sites, running or not.
        let mut v = Vec::new();
        for name in self.placement.table_names() {
            if let Ok(sites) = self.placement.sites_for(&name) {
                v.extend(sites);
            }
        }
        v.sort();
        v.dedup();
        v
    }

    /// Brings a crashed worker back online with HARBOR's three-phase
    /// replica-query recovery (the site serves forwarded updates while
    /// joining pending transactions).
    pub fn recover_worker_harbor(&self, site: SiteId) -> DbResult<RecoveryReport> {
        self.recover_worker_harbor_with(site, self.cfg.recovery.clone())
    }

    /// As [`recover_worker_harbor`](Self::recover_worker_harbor) with an
    /// explicit recovery configuration (fault injection, serial objects,
    /// Phase 2 thresholds). On error the site stays crashed — the worker
    /// server it briefly started is torn down so a later attempt can rebind.
    pub fn recover_worker_harbor_with(
        &self,
        site: SiteId,
        config: crate::recovery::RecoveryConfig,
    ) -> DbResult<RecoveryReport> {
        let engine = self.restart_worker(site)?;
        let down: HashSet<SiteId> = self.crashed.lock().clone();
        let ctx = RecoveryContext {
            engine,
            site,
            placement: self.placement.snapshot(),
            transport: self.transport_as(&format!("site-{}", site.0)),
            down: down.into_iter().filter(|s| *s != site).collect(),
            config,
        };
        let result = (|| {
            // With a disk-fault plan armed, the pages that survived the
            // crash may be checksum-corrupt; Phase 1's local restore would
            // trip over them. Scrub first so recovery starts from a
            // verified disk image.
            if self.disk_plans.contains_key(&site) {
                crate::recovery::scrub_site(&ctx)?;
            }
            recover_site(&ctx)
        })();
        match result {
            Ok(report) => {
                self.crashed.lock().remove(&site);
                // `RecComingOnline` already marked the site alive per object.
                Ok(report)
            }
            Err(e) => {
                // The recovering site "crashes" again: stop its server and
                // drop its engine so only durable state survives.
                if let Some(h) = self.workers.lock().remove(&site) {
                    h.worker.crash();
                }
                self.coordinator.mark_dead(site);
                Err(e)
            }
        }
    }

    /// Scrubs a *live* worker's disk: checksums every data page and
    /// repairs corrupt ones from buddies (see
    /// [`crate::recovery::scrub_site`]). The site must be quiesced —
    /// the chaos harness scrubs after resolving pending transactions and
    /// before any crash-recovery attempt.
    pub fn scrub_worker(&self, site: SiteId) -> DbResult<crate::recovery::ScrubReport> {
        let engine = self.engine(site)?;
        let down: HashSet<SiteId> = self.crashed.lock().clone();
        let ctx = RecoveryContext {
            engine,
            site,
            placement: self.placement.snapshot(),
            transport: self.transport_as(&format!("site-{}", site.0)),
            down: down.into_iter().filter(|s| *s != site).collect(),
            config: self.cfg.recovery.clone(),
        };
        crate::recovery::scrub_site(&ctx)
    }

    /// Brings a crashed worker back online with the ARIES baseline: local
    /// log replay only (the thesis recovery experiments quiesce update
    /// traffic, so no distributed catch-up is involved).
    pub fn recover_worker_aries(&self, site: SiteId) -> DbResult<AriesReport> {
        let engine = self.restart_worker(site)?;
        let report = engine.aries_restart()?;
        self.crashed.lock().remove(&site);
        self.coordinator.mark_alive(site);
        Ok(report)
    }

    // ------------------------------------------------------------------
    // Online membership: join, decommission, re-replication
    // ------------------------------------------------------------------

    /// Joins a brand-new site into the cluster under live update traffic:
    /// allocates a full replica of every table in the placement catalog,
    /// bootstraps each object with the segment-parallel Phase-2 catch-up
    /// against live buddies, then runs the Phase-3 lock-and-drain handshake
    /// so the new copies go current and votable. On error the site is
    /// evicted again and the cluster is exactly as before.
    pub fn join_worker(&self, site: SiteId) -> DbResult<RecoveryReport> {
        if site == COORDINATOR_SITE {
            return Err(DbError::internal("site 0 is the coordinator"));
        }
        if self.workers.lock().contains_key(&site) || self.crashed.lock().contains(&site) {
            return Err(DbError::internal(format!(
                "{site} already exists; use recover_worker_harbor for crashed sites"
            )));
        }
        let name = format!("site-{}", site.0);
        let wt = self.transport_as(&name);
        let listener = match self.cfg.transport {
            TransportKind::Tcp => wt.listen("127.0.0.1:0")?,
            _ => wt.listen(&name)?,
        };
        // Catalog first: `admit_site` registers the address, allocates a
        // joining full copy of every table, and marks the site dead so no
        // update routes to it before the per-object announcements. From
        // here on, any failure must evict to restore the old catalog.
        self.coordinator.admit_site(site, &listener.local_addr())?;
        match self.bootstrap_joined_site(site, &name, wt, listener) {
            Ok(report) => Ok(report),
            Err(e) => {
                if let Some(h) = self.workers.lock().remove(&site) {
                    h.worker.crash();
                }
                let _ = self.coordinator.evict_site(site);
                for h in self.workers.lock().values() {
                    h.worker.remove_peer(site);
                }
                Err(e)
            }
        }
    }

    /// The fallible tail of [`join_worker`](Self::join_worker): open the
    /// engine, start the worker server, and run the three-phase bootstrap.
    fn bootstrap_joined_site(
        &self,
        site: SiteId,
        name: &str,
        wt: Arc<dyn Transport>,
        listener: Box<dyn harbor_net::Listener>,
    ) -> DbResult<RecoveryReport> {
        let wdir = self.dir.join(name);
        let engine =
            Self::open_engine(&wdir, site, &self.cfg, self.disk_plans.get(&site).cloned())?;
        for spec in &self.cfg.tables {
            if engine.table_def(&spec.name).is_none() {
                engine.create_table(&spec.name, spec.user_fields.clone())?;
            }
        }
        let addr = listener.local_addr();
        let peers: HashMap<SiteId, String> = self
            .placement
            .member_sites()
            .into_iter()
            .filter_map(|s| self.placement.address(s).ok().map(|a| (s, a)))
            .collect();
        let worker = Worker::start_with_listener(
            engine.clone(),
            wt,
            WorkerConfig {
                site,
                addr: addr.clone(),
                protocol: self.cfg.protocol,
                checkpoint_every: self.cfg.checkpoint_every,
                peers,
                coordinator: self.placement.coordinator_addr().ok(),
                auto_consensus: self.cfg.auto_consensus,
                use_deletion_log: self.cfg.use_deletion_log,
                scan_batch: self.cfg.scan_batch,
                crash_schedule: self.cfg.crash_schedule.clone(),
            },
            listener,
        )?;
        let metrics = engine.metrics().clone();
        {
            let mut g = self.workers.lock();
            for h in g.values() {
                h.worker.add_peer(site, &addr);
            }
            g.insert(
                site,
                WorkerHandle {
                    worker,
                    engine: engine.clone(),
                    metrics,
                },
            );
        }
        let down: HashSet<SiteId> = self.crashed.lock().clone();
        let ctx = RecoveryContext {
            engine,
            site,
            placement: self.placement.snapshot(),
            transport: self.transport_as(name),
            down,
            config: self.cfg.recovery.clone(),
        };
        // A fresh engine's checkpoint is zero, so Phase 2 copies each
        // object's entire history — recovery *is* replica creation.
        recover_site(&ctx)
    }

    /// Gracefully removes a site: drains its role in in-flight commit
    /// epochs at the coordinator, re-homes its parts in the catalog (every
    /// table must retain at least one other full copy), stops its server,
    /// and removes it from every peer's address book. Returns the affected
    /// tables. A *crashed* site skips the drain — it holds no live role.
    pub fn decommission_worker(&self, site: SiteId) -> DbResult<Vec<String>> {
        let affected = if self.crashed.lock().contains(&site) {
            let affected = self.coordinator.evict_site(site)?;
            self.crashed.lock().remove(&site);
            affected
        } else {
            let affected = self.coordinator.decommission_site(site)?;
            if let Some(h) = self.workers.lock().remove(&site) {
                h.worker.stop();
            }
            affected
        };
        for h in self.workers.lock().values() {
            h.worker.remove_peer(site);
        }
        Ok(affected)
    }

    /// Re-creates one table's replica on live member `target` (which must
    /// not already hold the object): marks the copy joining in the catalog,
    /// bootstraps it with Phase-2/Phase-3 recovery against live buddies,
    /// and lets the `RecComingOnline` announcement complete the join. This
    /// is the supervisor's repair primitive for objects below their K
    /// floor. On error the joining copy is withdrawn from the catalog.
    pub fn replicate_table_to(&self, table: &str, target: SiteId) -> DbResult<()> {
        let engine = self.engine(target)?;
        self.coordinator.begin_bootstrap(target, table)?;
        let result = (|| {
            if engine.table_def(table).is_none() {
                let spec = self
                    .cfg
                    .tables
                    .iter()
                    .find(|s| s.name == table)
                    .ok_or_else(|| DbError::Schema(format!("no spec for table {table:?}")))?;
                engine.create_table(table, spec.user_fields.clone())?;
            }
            let down: HashSet<SiteId> = self.crashed.lock().clone();
            let ctx = RecoveryContext {
                engine: engine.clone(),
                site: target,
                placement: self.placement.snapshot(),
                transport: self.transport_as(&format!("site-{}", target.0)),
                down,
                config: self.cfg.recovery.clone(),
            };
            // Periodic checkpoints stay off for the bootstrap (§5.2); the
            // per-object checkpoint recorded by recovery carries the new
            // copy until the next global checkpoint subsumes it.
            engine.checkpointer().set_suspended(true);
            let r = recover_object(&ctx, table);
            engine.checkpointer().set_suspended(false);
            r.map(|_| ())
        })();
        if let Err(e) = result {
            self.coordinator.abandon_bootstrap(target, table);
            return Err(e);
        }
        Ok(())
    }

    /// Stops everything (graceful end of an experiment).
    pub fn shutdown(&self) {
        self.coordinator.crash();
        let workers: Vec<WorkerHandle> = {
            let mut g = self.workers.lock();
            g.drain().map(|(_, h)| h).collect()
        };
        for h in &workers {
            h.worker.stop();
        }
    }
}

/// Small extension so `restart_worker` can insert without a borrow dance.
trait InsertHandle {
    fn insert_handle(&self, site: SiteId, handle: WorkerHandle);
}

impl InsertHandle for Mutex<HashMap<SiteId, WorkerHandle>> {
    fn insert_handle(&self, site: SiteId, handle: WorkerHandle) {
        self.lock().insert(site, handle);
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}
