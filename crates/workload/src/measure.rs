//! Throughput and latency measurement.
//!
//! Reproduces the paper's methodology: N concurrent client streams, each
//! running closed-loop transactions against the coordinator; steady-state
//! throughput is committed transactions over wall time, and the
//! no-concurrency case doubles as the latency measurement (§6.3.1).

use harbor_common::DbResult;
use harbor_dist::{Coordinator, UpdateRequest};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One throughput measurement.
#[derive(Clone, Copy, Debug)]
pub struct ThroughputSample {
    pub committed: u64,
    pub aborted: u64,
    pub elapsed: Duration,
    /// Mean latency per committed transaction.
    pub mean_latency: Duration,
    /// Commit-latency percentiles over every committed transaction across
    /// all streams (zero when nothing committed).
    pub p50_latency: Duration,
    pub p99_latency: Duration,
    pub p999_latency: Duration,
}

impl ThroughputSample {
    pub fn tps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.committed as f64 / self.elapsed.as_secs_f64()
    }
}

/// The nearest-rank percentile (`q` in [0, 1]) of a **sorted** latency
/// vector; zero for an empty one.
pub fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Per-stream outcome from [`run_concurrent_streams`].
#[derive(Clone, Debug)]
pub struct StreamReport {
    pub committed: u64,
    pub aborted: u64,
    pub total_latency: Duration,
    /// Per-commit latencies, in completion order.
    pub latencies: Vec<Duration>,
}

/// Runs `streams` concurrent closed-loop clients against `coordinator`.
/// Each stream invokes its generator for every transaction: the generator
/// returns the update requests of that transaction (the paper's insert
/// streams return one insert, optionally followed by simulated CPU work).
/// Each stream runs `txns_per_stream` transactions.
pub fn run_concurrent_streams(
    coordinator: &Arc<Coordinator>,
    streams: usize,
    txns_per_stream: usize,
    make_ops: impl Fn(usize, usize) -> Vec<UpdateRequest> + Send + Sync,
) -> DbResult<ThroughputSample> {
    let start = Instant::now();
    let make_ops = &make_ops;
    let reports: Vec<StreamReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..streams)
            .map(|s| {
                let coordinator = coordinator.clone();
                scope.spawn(move || {
                    let mut committed = 0u64;
                    let mut aborted = 0u64;
                    let mut total_latency = Duration::ZERO;
                    let mut latencies = Vec::with_capacity(txns_per_stream);
                    for n in 0..txns_per_stream {
                        let ops = make_ops(s, n);
                        let t0 = Instant::now();
                        match run_one(&coordinator, ops) {
                            Ok(()) => {
                                let lat = t0.elapsed();
                                committed += 1;
                                total_latency += lat;
                                latencies.push(lat);
                            }
                            Err(_) => aborted += 1,
                        }
                    }
                    StreamReport {
                        committed,
                        aborted,
                        total_latency,
                        latencies,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("stream"))
            .collect()
    });
    let elapsed = start.elapsed();
    let committed: u64 = reports.iter().map(|r| r.committed).sum();
    let aborted: u64 = reports.iter().map(|r| r.aborted).sum();
    let total_latency: Duration = reports.iter().map(|r| r.total_latency).sum();
    let mean_latency = if committed > 0 {
        total_latency / committed as u32
    } else {
        Duration::ZERO
    };
    let mut all: Vec<Duration> = reports.iter().flat_map(|r| r.latencies.clone()).collect();
    all.sort();
    Ok(ThroughputSample {
        committed,
        aborted,
        elapsed,
        mean_latency,
        p50_latency: percentile(&all, 0.50),
        p99_latency: percentile(&all, 0.99),
        p999_latency: percentile(&all, 0.999),
    })
}

fn run_one(coordinator: &Arc<Coordinator>, ops: Vec<UpdateRequest>) -> DbResult<()> {
    let tid = coordinator.begin()?;
    for op in ops {
        coordinator.update(tid, op)?;
    }
    coordinator.commit(tid)?;
    Ok(())
}

/// Bucketed commit counter for the Fig 6-7 timeline.
#[derive(Debug)]
pub struct Timeline {
    start: Instant,
    bucket: Duration,
    counts: Mutex<Vec<u64>>,
}

/// One timeline bucket: seconds since start and transactions per second.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimelineBucket {
    pub at_secs: f64,
    pub tps: f64,
}

impl Timeline {
    pub fn new(bucket: Duration) -> Self {
        Timeline {
            start: Instant::now(),
            bucket,
            counts: Mutex::new(Vec::new()),
        }
    }

    /// Records one committed transaction at "now".
    pub fn record(&self) {
        let idx = (self.start.elapsed().as_secs_f64() / self.bucket.as_secs_f64()) as usize;
        let mut counts = self.counts.lock();
        if counts.len() <= idx {
            counts.resize(idx + 1, 0);
        }
        counts[idx] += 1;
    }

    /// Seconds since the timeline started.
    pub fn now_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// The buckets as `(time, tps)` points.
    pub fn buckets(&self) -> Vec<TimelineBucket> {
        let counts = self.counts.lock();
        let w = self.bucket.as_secs_f64();
        counts
            .iter()
            .enumerate()
            .map(|(i, &c)| TimelineBucket {
                at_secs: i as f64 * w,
                tps: c as f64 / w,
            })
            .collect()
    }
}

/// Spawns an open-ended background insert stream (Fig 6-7's continuous
/// load); call the returned handle's `stop()` to end it and collect counts.
pub struct BackgroundLoad {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<(u64, u64)>>,
}

impl BackgroundLoad {
    /// Runs single-insert transactions until stopped, recording commits on
    /// `timeline`.
    pub fn start(
        coordinator: Arc<Coordinator>,
        table: String,
        first_id: i64,
        timeline: Arc<Timeline>,
    ) -> BackgroundLoad {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::spawn(move || {
            let stream = crate::gen::InsertStream::new(&table, first_id);
            let mut committed = 0u64;
            let mut aborted = 0u64;
            while !stop2.load(Ordering::SeqCst) {
                match run_one(&coordinator, vec![stream.next()]) {
                    Ok(()) => {
                        committed += 1;
                        timeline.record();
                    }
                    Err(_) => aborted += 1,
                }
            }
            (committed, aborted)
        });
        BackgroundLoad {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the load; returns `(committed, aborted)`.
    pub fn stop(mut self) -> (u64, u64) {
        self.stop.store(true, Ordering::SeqCst);
        self.handle
            .take()
            .expect("stop called once")
            .join()
            .expect("background load thread")
    }
}

impl Drop for BackgroundLoad {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_buckets_accumulate() {
        let t = Timeline::new(Duration::from_millis(10));
        t.record();
        t.record();
        std::thread::sleep(Duration::from_millis(25));
        t.record();
        let buckets = t.buckets();
        assert!(buckets.len() >= 2);
        let total: f64 = buckets.iter().map(|b| b.tps * 0.01).sum();
        assert!((total - 3.0).abs() < 1e-6);
    }

    #[test]
    fn throughput_sample_math() {
        let s = ThroughputSample {
            committed: 100,
            aborted: 0,
            elapsed: Duration::from_secs(2),
            mean_latency: Duration::from_millis(5),
            p50_latency: Duration::from_millis(4),
            p99_latency: Duration::from_millis(9),
            p999_latency: Duration::from_millis(12),
        };
        assert!((s.tps() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_nearest_rank() {
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
        let one = [Duration::from_millis(7)];
        assert_eq!(percentile(&one, 0.5), one[0]);
        assert_eq!(percentile(&one, 0.999), one[0]);
        let ms: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&ms, 0.50), Duration::from_millis(50));
        assert_eq!(percentile(&ms, 0.99), Duration::from_millis(99));
        assert_eq!(percentile(&ms, 0.999), Duration::from_millis(100));
        assert_eq!(percentile(&ms, 1.0), Duration::from_millis(100));
    }
}
