//! Workload generation: the paper's insert and update transactions.

use harbor_common::Value;
use harbor_dist::UpdateRequest;
use std::sync::atomic::{AtomicI64, Ordering};

/// One row of the evaluation schema ([`harbor::TableSpec::paper_table`]):
/// an `i64` id plus 13 deterministic `i32` payload fields — 16 four-byte
/// equivalent fields counting the two timestamps (§6.2).
pub fn paper_row(id: i64) -> Vec<Value> {
    let mut v = Vec::with_capacity(14);
    v.push(Value::Int64(id));
    for i in 0..13 {
        v.push(Value::Int32((id as i32).wrapping_mul(31).wrapping_add(i)));
    }
    v
}

/// A single-insert update request (the §6.3.1 transaction body).
pub fn insert_request(table: &str, id: i64) -> UpdateRequest {
    UpdateRequest::Insert {
        table: table.to_string(),
        values: paper_row(id),
    }
}

/// An indexed update of one historical tuple (the §6.4.2 transaction
/// body): overwrite the first payload field.
pub fn update_by_key_request(table: &str, key: i64, new_value: i32) -> UpdateRequest {
    UpdateRequest::UpdateByKey {
        table: table.to_string(),
        key,
        set: vec![(1, Value::Int32(new_value))],
    }
}

/// Thread-safe source of single-insert requests with unique ascending ids.
pub struct InsertStream {
    table: String,
    next_id: AtomicI64,
}

impl InsertStream {
    pub fn new(table: &str, first_id: i64) -> Self {
        InsertStream {
            table: table.to_string(),
            next_id: AtomicI64::new(first_id),
        }
    }

    pub fn next(&self) -> UpdateRequest {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        insert_request(&self.table, id)
    }

    pub fn issued(&self) -> i64 {
        self.next_id.load(Ordering::Relaxed)
    }
}
