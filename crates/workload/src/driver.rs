//! Closed-loop multi-client driver over a real transport.
//!
//! Where [`crate::measure::run_concurrent_streams`] drives the coordinator
//! in-process, this driver connects real sessions through the front door
//! ([`harbor_front::FrontClient`]) and measures what a *client* sees:
//! connect, send, commit-or-shed, retry. Retries reuse the workspace's one
//! seeded-backoff engine ([`harbor_common::retry`]) so a run's retry
//! schedule is a pure function of its seed, with the server's
//! `retry_after_ms` shed hint applied as a floor under the jittered delay.
//!
//! Retry policy follows the taxonomy: an
//! [`Overloaded`](harbor_common::DbError::Overloaded) shed is retryable *by
//! construction* (the request never executed), so the driver resubmits it;
//! everything else — including timeouts, which on the serving path may be
//! ambiguous only after admission — terminates the transaction attempt.
//! Every *acked* transaction (a `Committed` reply seen by the client) is
//! recorded with its id so soaks can assert acked ⇒ durable.

use crate::measure::{percentile, ThroughputSample};
use harbor_common::config::DEFAULT_RETRY_AFTER_MS;
use harbor_common::{DbResult, RetryPolicy, Timestamp};
use harbor_dist::UpdateRequest;
use harbor_front::FrontClient;
use harbor_net::Transport;
use std::time::{Duration, Instant};

/// Knobs for one driver run.
#[derive(Clone, Debug)]
pub struct DriverConfig {
    /// Concurrent client sessions.
    pub clients: usize,
    /// Closed-loop transactions per client.
    pub txns_per_client: usize,
    /// Per-request deadline budget sent to the server (`ZERO` = server
    /// default).
    pub deadline: Duration,
    /// Backoff schedule for shed retries. Each client salts the seed with
    /// its index so retry storms decorrelate but a replay reproduces every
    /// delay.
    pub retry: RetryPolicy,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            clients: 4,
            txns_per_client: 50,
            deadline: Duration::from_secs(5),
            retry: RetryPolicy::new(
                8,
                Duration::from_millis(5),
                Duration::from_millis(200),
                0x5EED_F007,
            ),
        }
    }
}

/// What one driver run saw, client-side.
#[derive(Clone, Debug)]
pub struct DriverReport {
    /// Throughput/latency over *acked* transactions; latency includes shed
    /// retries (the client-observed SLO, not the server-side service time).
    pub sample: ThroughputSample,
    /// `Overloaded` sheds observed (each one was retried or gave up).
    pub sheds_observed: u64,
    /// Shed resubmissions actually performed.
    pub retries: u64,
    /// Transactions that terminally failed (budget exhausted or a
    /// non-retryable error).
    pub failed: u64,
    /// Ids of every acked transaction, in completion order per client.
    /// Once an id is in here the commit must survive anything.
    pub acked: Vec<i64>,
}

/// Sends one transaction with bounded shed-retries: jittered seeded backoff
/// with the server's `retry_after_ms` hint as a floor. Returns
/// `(result, sheds, retries)`.
fn send_with_retry(
    client: &mut FrontClient,
    ops: &[UpdateRequest],
    deadline: Duration,
    retry: &RetryPolicy,
) -> (DbResult<Timestamp>, u64, u64) {
    let mut sheds = 0u64;
    let mut retries = 0u64;
    let mut attempt = 0u32;
    loop {
        match client.txn(ops, deadline) {
            Ok(ts) => return (Ok(ts), sheds, retries),
            Err(e) if e.is_overloaded() => {
                sheds += 1;
                if attempt >= retry.attempts {
                    return (Err(e), sheds, retries);
                }
                let hint =
                    Duration::from_millis(e.retry_after_ms().unwrap_or(DEFAULT_RETRY_AFTER_MS));
                std::thread::sleep(retry.delay(attempt).max(hint));
                retries += 1;
                attempt += 1;
            }
            Err(e) => return (Err(e), sheds, retries),
        }
    }
}

/// Runs `cfg.clients` concurrent closed-loop sessions against the front
/// door at `addr`. `make_txn` maps `(client, n)` to `(id, ops)`; the id is
/// recorded iff the transaction is acked.
pub fn run_front_clients(
    transport: &dyn Transport,
    addr: &str,
    cfg: &DriverConfig,
    make_txn: impl Fn(usize, usize) -> (i64, Vec<UpdateRequest>) + Send + Sync,
) -> DbResult<DriverReport> {
    struct ClientReport {
        latencies: Vec<Duration>,
        acked: Vec<i64>,
        sheds: u64,
        retries: u64,
        failed: u64,
    }

    let start = Instant::now();
    let make_txn = &make_txn;
    let reports: Vec<DbResult<ClientReport>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|c| {
                scope.spawn(move || -> DbResult<ClientReport> {
                    let mut client = FrontClient::connect(transport, addr, c as u64)?;
                    let retry = RetryPolicy {
                        seed: cfg.retry.seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        ..cfg.retry
                    };
                    let mut r = ClientReport {
                        latencies: Vec::with_capacity(cfg.txns_per_client),
                        acked: Vec::with_capacity(cfg.txns_per_client),
                        sheds: 0,
                        retries: 0,
                        failed: 0,
                    };
                    for n in 0..cfg.txns_per_client {
                        let (id, ops) = make_txn(c, n);
                        let t0 = Instant::now();
                        let (res, sheds, retries) =
                            send_with_retry(&mut client, &ops, cfg.deadline, &retry);
                        r.sheds += sheds;
                        r.retries += retries;
                        match res {
                            Ok(_ts) => {
                                r.latencies.push(t0.elapsed());
                                r.acked.push(id);
                            }
                            Err(_) => r.failed += 1,
                        }
                    }
                    Ok(r)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(_) => Err(harbor_common::DbError::internal("client thread panicked")),
            })
            .collect()
    });
    let elapsed = start.elapsed();

    let mut all = Vec::new();
    let mut acked = Vec::new();
    let (mut sheds, mut retries, mut failed) = (0u64, 0u64, 0u64);
    let mut first_err = None;
    for r in reports {
        match r {
            Ok(r) => {
                all.extend(r.latencies);
                acked.extend(r.acked);
                sheds += r.sheds;
                retries += r.retries;
                failed += r.failed;
            }
            Err(e) => first_err = Some(e),
        }
    }
    if let (Some(e), true) = (first_err, acked.is_empty()) {
        // Every client failing to even connect is a run failure; partial
        // client loss during chaos is data, not an error.
        return Err(e);
    }
    let committed = all.len() as u64;
    let total: Duration = all.iter().sum();
    let mean = if committed > 0 {
        total / committed as u32
    } else {
        Duration::ZERO
    };
    all.sort();
    Ok(DriverReport {
        sample: ThroughputSample {
            committed,
            aborted: failed,
            elapsed,
            mean_latency: mean,
            p50_latency: percentile(&all, 0.50),
            p99_latency: percentile(&all, 0.99),
            p999_latency: percentile(&all, 0.999),
        },
        sheds_observed: sheds,
        retries,
        failed,
        acked,
    })
}
