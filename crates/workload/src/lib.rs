//! Workload generators and measurement utilities for the evaluation
//! harnesses (thesis Chapter 6).
//!
//! The paper's workloads are simple by design: single-insert transactions
//! of ~64-byte tuples (§6.3.1), optionally with a spin-loop of simulated
//! CPU work per transaction (§6.3.2), plus update transactions that target
//! tuples in historical segments (§6.4.2). This crate generates those
//! workloads against a [`harbor::Cluster`] and measures throughput,
//! latency, and per-second timelines.

pub mod driver;
pub mod gen;
pub mod measure;

pub use driver::{run_front_clients, DriverConfig, DriverReport};
pub use gen::{insert_request, paper_row, update_by_key_request, InsertStream};
pub use measure::{
    percentile, run_concurrent_streams, StreamReport, ThroughputSample, Timeline, TimelineBucket,
};

#[cfg(test)]
mod tests {
    use super::*;
    use harbor_common::Value;

    #[test]
    fn paper_rows_have_the_evaluation_shape() {
        let row = paper_row(42);
        // id + 13 payload fields = 14 user fields; with the two timestamps
        // that is 16 fields, the §6.2 tuple shape.
        assert_eq!(row.len(), 14);
        assert_eq!(row[0], Value::Int64(42));
        assert!(matches!(row[1], Value::Int32(_)));
    }

    #[test]
    fn insert_stream_yields_unique_ids() {
        let s = InsertStream::new("t", 100);
        let a = s.next();
        let b = s.next();
        match (&a, &b) {
            (
                harbor_dist::UpdateRequest::Insert { values: va, .. },
                harbor_dist::UpdateRequest::Insert { values: vb, .. },
            ) => {
                assert_ne!(va[0], vb[0]);
            }
            _ => panic!("unexpected request shape"),
        }
    }
}
