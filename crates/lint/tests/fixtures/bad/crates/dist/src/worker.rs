//! FIXTURE (bad): lock guards spanning blocking calls. Never compiled.

pub struct Worker {
    txns: Mutex<Vec<u64>>,
    peers: Mutex<Vec<Chan>>,
}

impl Worker {
    // Violation: channel send while the txn-table guard is held — every
    // other txn on this worker stalls for a full network round trip.
    pub fn broadcast(&self, chan: &mut Chan, tid: u64) {
        let mut g = self.txns.lock();
        g.push(tid);
        chan.send(&Msg::Begin { tid });
    }

    // Violation: recv under a guard is worse — it parks the holder until a
    // remote peer speaks.
    pub fn wait_ack(&self, chan: &mut Chan) -> Msg {
        let g = self.peers.lock();
        let reply = chan.recv_timeout(DEADLINE);
        drop(g);
        reply
    }

    // Violation: page I/O under a guard.
    pub fn persist(&self, table: &Table) {
        let g = self.txns.lock();
        table.write_page(0, &Page::default());
        drop(g);
    }

    // Violation: a second (unranked) lock acquired while the first guard
    // is live.
    pub fn double(&self) {
        let a = self.txns.lock();
        let b = self.peers.lock();
        drop(b);
        drop(a);
    }
}
