//! FIXTURE (bad): the parallel-scan worker pool holding latches across the
//! merge channel. Never compiled.

pub struct ScanPool {
    partitions: Mutex<Vec<Partition>>,
}

impl ScanPool {
    // Violation: the frame latch is still live when the finished frame is
    // pushed into the bounded merge channel — every sibling worker that
    // needs this latch stalls until the merger drains a slot.
    pub fn worker(&self, frame: &Frame, tx: &Sender) {
        let page = frame.latch.lock();
        let framed = transcode(&page);
        tx.send(Ok(framed));
        drop(page);
    }

    // Violation: the merger ships downstream while the partition list is
    // locked, so workers cannot touch the partition state until the remote
    // peer drains the wire.
    pub fn merge(&self, chan: &mut Chan, framed: &[u8]) {
        let parts = self.partitions.lock();
        chan.send_framed(framed);
        drop(parts);
    }
}
