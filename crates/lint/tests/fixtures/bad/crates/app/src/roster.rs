//! BAD fixture for the lockset-race rule. Never compiled — fed to
//! `analyze_sources` by the corpus test under its tree-relative path.
//! Expected findings: an inconsistent-lockset write in `racy_bump`, an
//! unguarded write inside the spawned closure in `spawn_bump`, and a
//! spawn-while-guard-held in `spawn_under_guard`.

use parking_lot::Mutex;

pub struct FixtureRoster {
    entries_lock: Mutex<Vec<u32>>,
    fixture_tally: u64,
}

impl FixtureRoster {
    fn guarded_bump(&self) {
        let g = self.entries_lock.lock();
        self.fixture_tally += 1;
        drop(g);
    }

    fn racy_bump(&self) {
        self.fixture_tally += 1;
    }

    fn spawn_bump(&self) {
        std::thread::spawn(move || {
            self.fixture_tally += 2;
        });
    }

    fn spawn_under_guard(&self) {
        let g = self.entries_lock.lock();
        std::thread::spawn(move || {
            fixture_background_work();
        });
        drop(g);
    }
}

fn fixture_background_work() {}
