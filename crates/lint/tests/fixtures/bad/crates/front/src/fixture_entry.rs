//! BAD fixture for the deadline-propagation rule. Never compiled — fed to
//! `analyze_sources` by the corpus test under its tree-relative path, so
//! `fixture_handle`'s `deadline` param seeds the taint. Expected
//! findings, all on the tainted path: an untimed `recv()` in
//! `fixture_wait`, an unbounded retry loop in `fixture_retry`, and
//! budget-blind page I/O in `fixture_flush`.

pub fn fixture_handle(ops: Vec<u8>, deadline: Instant) -> DbResult<()> {
    fixture_route(ops)
}

fn fixture_route(ops: Vec<u8>) -> DbResult<()> {
    fixture_wait();
    fixture_retry();
    fixture_flush()
}

fn fixture_wait() {
    let reply = fixture_chan().recv();
}

fn fixture_retry() {
    loop {
        if fixture_chan().send(1).is_err() {
            continue;
        }
        return;
    }
}

fn fixture_flush() -> DbResult<()> {
    fixture_pool().write_page(0)
}

fn fixture_chan() -> FixtureChan {
    FixtureChan
}

fn fixture_pool() -> FixturePool {
    FixturePool
}
