//! FIXTURE (bad): `Overloaded` minted outside the admission boundary.
//! Clients retry `Overloaded` unconditionally *because* it promises the
//! request never executed; minting it elsewhere breaks that promise.
//! Never compiled.

pub fn reply_busy(depth: usize) -> DbError {
    // Violation: a worker deciding mid-execution that it is "busy" is not
    // a shed — the request may already have side effects, so a client
    // retry here is a double execution.
    DbError::Overloaded { retry_after_ms: 25 }
}

pub fn shed_after_start(req: u64) -> DbResult<()> {
    // Violation: convenience constructor is still a construction.
    Err(DbError::overloaded(50))
}
