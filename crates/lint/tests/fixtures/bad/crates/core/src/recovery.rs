//! FIXTURE (bad): classified errors minted outside the classification
//! boundaries. Recovery failover and scrub repair dispatch on these
//! variants, so ad-hoc construction corrupts failure handling.
//! Never compiled.

pub fn fetch_range(buddy: SiteId) -> DbResult<Vec<Tuple>> {
    // Violation: a slow local loop is not a *wire* timeout; inventing one
    // here makes the caller retry an idempotent read that never left the
    // process.
    Err(DbError::Timeout("local work took too long".into()))
}

pub fn mark_buddy(site: SiteId) -> DbError {
    // Violation: convenience constructor is still a construction.
    DbError::unavailable(format!("site {site:?} looks slow"))
}

pub fn fake_corruption(table: TableId, page: u32) -> DbError {
    // Violation: only checksum verification in storage/src/file.rs may
    // declare a page corrupt.
    DbError::CorruptPage { table, page }
}
