//! FIXTURE (bad): a determinism-contract module that cheats three ways —
//! wall clock, ambient randomness, and HashMap iteration order. The
//! `determinism` rule must flag all of them. Never compiled.

use std::collections::HashMap;
use std::time::Instant;

pub struct ChaosPlan {
    link_ordinals: HashMap<u64, u64>,
}

impl ChaosPlan {
    // Violation: a fault decision derived from the wall clock replays
    // differently on every run.
    pub fn should_drop(&self) -> bool {
        let t = Instant::now();
        t.elapsed().subsec_nanos() % 7 == 0
    }

    // Violation: ambient RNG is unseeded.
    pub fn jitter(&self) -> u64 {
        let mut rng = thread_rng();
        rng.next_u64()
    }

    // Violation: HashMap iteration order differs across processes, so the
    // canonical fault trace is not canonical.
    pub fn canonical_trace(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for (link, ord) in self.link_ordinals.iter() {
            out.push((*link, *ord));
        }
        out
    }

    // Violation: bare allow — the escape hatch without a reason is itself
    // reported (rule `lint-allow`).
    pub fn sloppy(&self) -> u32 {
        // harbor-lint: allow(determinism)
        SystemTime::now().elapsed().unwrap_or_default().subsec_nanos()
    }
}
