//! FIXTURE (bad): lock-rank inversions in the pool. Declared order is
//! catalog → lock-manager → table-map → pool-shard → frame → wal.
//! Never compiled.

pub struct BufferPool {
    tables: RwLock<HashMap<TableId, Arc<Heap>>>,
    wal: RwLock<Option<Arc<Wal>>>,
}

impl BufferPool {
    // Violation: table-map (rank 2) acquired while a pool-shard guard
    // (rank 3) is held — the reverse of the declared order.
    pub fn bad_miss_path(&self, shard: &Shard, pid: PageId) {
        let g = shard.frames.lock();
        let table = self.tables.read();
        drop(table);
        drop(g);
    }

    // Violation: frame latch (rank 4) held while re-entering the table
    // map (rank 2).
    pub fn bad_flush(&self, frame: &Frame) {
        let page = frame.page.write();
        let t = self.tables.read();
        drop(t);
        drop(page);
    }

    // Violation: pool-shard (rank 3) under the WAL handle (rank 5).
    pub fn bad_wal_first(&self, shard: &Shard) {
        let w = self.wal.write();
        let g = shard.frames.lock();
        drop(g);
        drop(w);
    }

    // Violation: a scan worker re-entering its pool shard (rank 3) while
    // still holding the previous page's frame latch (rank 4).
    pub fn bad_scan_partition(&self, shard: &Shard, frame: &Frame) {
        let page = frame.page.read();
        let g = shard.frames.lock();
        drop(g);
        drop(page);
    }
}
