//! FIXTURE (good): pattern-matching and classifying on the taxonomy is
//! always fine — only *construction* is confined. Never compiled.

pub fn classify(err: DbError) -> &'static str {
    match err {
        // Patterns, not constructions: binding and wildcard forms.
        DbError::Timeout(_) => "transient",
        DbError::SiteUnavailable(msg) => "dead",
        DbError::CorruptPage { table, page } => "corrupt",
        _ => "other",
    }
}

pub fn is_transient(err: &DbError) -> bool {
    matches!(err, DbError::Timeout(_) | DbError::SiteUnavailable(_))
}

pub fn retry_fetch(err: &DbError) -> bool {
    if let DbError::CorruptPage { .. } = err {
        return true;
    }
    false
}

pub fn propagate(site: SiteId) -> DbResult<()> {
    // Unclassified variants are free to construct anywhere.
    Err(DbError::internal(format!("buddy {site:?} failed")))
}
