//! FIXTURE (good): rank-ordered acquisitions and scoped guards — the
//! shapes the real pool uses after PR 3's fix. Never compiled.

pub struct BufferPool {
    tables: RwLock<HashMap<TableId, Arc<Heap>>>,
    wal: RwLock<Option<Arc<Wal>>>,
}

impl BufferPool {
    // Declared order: table-map (2) before pool-shard (3).
    pub fn ordered(&self, shard: &Shard) {
        let t = self.tables.read();
        let g = shard.frames.lock();
        drop(g);
        drop(t);
    }

    // The PR 3 miss path: shard guard released (block end) before the
    // table map is consulted for the disk read.
    pub fn miss_path(&self, shard: &Shard, pid: PageId) -> Option<Arc<Heap>> {
        let epoch = {
            let g = shard.frames.lock();
            g.epoch()
        };
        let table = self.tables.read();
        table.get(&pid.table).cloned()
    }

    // Frame (4) then WAL (5) is the flush protocol's declared order.
    pub fn flush(&self, frame: &Frame) {
        let page = frame.page.write();
        let w = self.wal.read();
        drop(w);
        drop(page);
    }

    // A scan worker walks its partition in declared order: pool-shard (3)
    // to pin the frame, then the frame latch (4) to decode — never back.
    pub fn scan_partition(&self, shard: &Shard, frame: &Frame) {
        let g = shard.frames.lock();
        let page = frame.page.read();
        drop(page);
        drop(g);
    }
}
