//! GOOD fixture for the deadline-propagation rule. Never compiled — fed to
//! `analyze_sources` by the corpus test under its tree-relative path.
//! The same call shape as the bad fixture, but the deadline is threaded all
//! the way down: the wait is timed, the retry loop breaks on expiry, and
//! the page I/O fn receives the budget. Expected findings: none.

pub fn fixture_handle(ops: Vec<u8>, deadline: Instant) -> DbResult<()> {
    fixture_route(ops, deadline)
}

fn fixture_route(ops: Vec<u8>, deadline: Instant) -> DbResult<()> {
    fixture_wait(deadline);
    fixture_retry(deadline);
    fixture_flush(deadline)
}

fn fixture_wait(deadline: Instant) {
    let reply = fixture_chan().recv_timeout(fixture_remaining(deadline));
}

fn fixture_retry(deadline: Instant) {
    loop {
        if deadline_expired(deadline) {
            break;
        }
        if fixture_chan().send(1).is_err() {
            continue;
        }
        return;
    }
}

fn fixture_flush(deadline: Instant) -> DbResult<()> {
    fixture_pool().write_page(0)
}

fn fixture_remaining(deadline: Instant) -> Duration {
    Duration::ZERO
}

fn fixture_chan() -> FixtureChan {
    FixtureChan
}

fn fixture_pool() -> FixturePool {
    FixturePool
}
