//! FIXTURE (good): the admission boundary itself may mint `Overloaded` —
//! this file suffix is in `TAXONOMY_BOUNDARIES`. Never compiled.

pub fn queue_full_shed(retry_after_ms: u64) -> DbError {
    // Legal: front/src/admission.rs is the classification boundary for
    // load shedding, the one place a request is refused *before* it runs.
    DbError::Overloaded { retry_after_ms }
}

pub fn aged_out(hint: u64) -> DbResult<Permit> {
    Err(DbError::overloaded(hint))
}
