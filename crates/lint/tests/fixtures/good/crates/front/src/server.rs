//! FIXTURE (good): the serving path *propagates* typed sheds it got from
//! the admission boundary instead of minting its own. Matching on the
//! variant, or calling the boundary's policy, is always legal.
//! Never compiled.

pub fn reply_for(err: &DbError) -> Reply {
    // Inspecting a classified error is fine everywhere — only construction
    // is confined.
    match err {
        DbError::Overloaded { retry_after_ms } => Reply::busy(*retry_after_ms),
        other => Reply::err(other.to_string()),
    }
}

pub fn shed_if_stale(policy: &AdmissionPolicy, check: AdmissionCheck) -> DbResult<Permit> {
    // The admission boundary (front/src/admission.rs) is the one place
    // that decides a shed; the server just forwards its verdict.
    policy.admit(check)
}
