//! GOOD fixture for the lockset-race rule. Never compiled — fed to
//! `analyze_sources` by the corpus test under its tree-relative path.
//! Every write to the shared plain field happens under the same guard,
//! reads are free, the guard is dropped before the spawn, and the closure
//! re-acquires the lock on its own thread. Expected findings: none.

use parking_lot::Mutex;

pub struct FixtureLedger {
    ledger_lock: Mutex<Vec<u32>>,
    ledger_total: u64,
}

impl FixtureLedger {
    fn bump(&self) {
        let g = self.ledger_lock.lock();
        self.ledger_total += 1;
        drop(g);
    }

    fn read_total(&self) -> u64 {
        self.ledger_total
    }

    fn spawn_clean(&self) {
        let g = self.ledger_lock.lock();
        drop(g);
        std::thread::spawn(move || {
            let g2 = self.ledger_lock.lock();
            self.ledger_total += 1;
            drop(g2);
        });
    }
}
