//! FIXTURE (good): a determinism-contract module that honours the
//! contract — decisions are pure functions of `(seed, link, ordinal)`,
//! keyed HashMap access without iteration, and one *reasoned* allow.
//! Never compiled.

use std::collections::HashMap;

pub struct ChaosPlan {
    seed: u64,
    link_ordinals: HashMap<u64, u64>,
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ChaosPlan {
    // Pure: (seed, link, ordinal) fully determines the decision.
    pub fn should_drop(&mut self, link: u64) -> bool {
        let ord = self.link_ordinals.entry(link).or_insert(0);
        *ord += 1;
        splitmix64(self.seed ^ link ^ *ord) % 7 == 0
    }

    // Keyed access is fine; only *iteration* depends on hash order.
    pub fn ordinal(&self, link: u64) -> u64 {
        self.link_ordinals.get(&link).copied().unwrap_or(0)
    }

    // A reasoned allow suppresses the rule: timing the soak wall-clock is
    // observability, not a fault decision.
    pub fn soak_elapsed_nanos(&self) -> u32 {
        // harbor-lint: allow(determinism) — wall-clock here only feeds the soak progress log, never a fault decision
        Instant::now().elapsed().subsec_nanos()
    }
}
