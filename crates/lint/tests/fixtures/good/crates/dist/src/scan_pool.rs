//! FIXTURE (good): the parallel-scan worker pool's actual shape — frames
//! are transcoded under the latch but finished and sent only after it
//! drops, and the merger holds nothing across the downstream ship.
//! Never compiled.

pub struct ScanPool {
    partitions: Mutex<Vec<Partition>>,
}

impl ScanPool {
    // The latch scopes to the transcode; the send happens after the block
    // releases it.
    pub fn worker(&self, frame: &Frame, tx: &Sender) {
        let framed = {
            let page = frame.latch.lock();
            transcode(&page)
        };
        tx.send(Ok(framed));
    }

    // The merger snapshots its partition order up front and holds no guard
    // while shipping downstream.
    pub fn merge(&self, chan: &mut Chan, framed: &[u8]) {
        let order = {
            let parts = self.partitions.lock();
            parts.len()
        };
        chan.send_framed(&framed[..order]);
    }
}
