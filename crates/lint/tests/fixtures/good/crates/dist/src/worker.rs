//! FIXTURE (good): the same shapes with the guard scoped off the blocking
//! call — snapshot under the lock, block outside it — plus one reasoned
//! allow for an intentional serialization point. Never compiled.

pub struct Worker {
    txns: Mutex<Vec<u64>>,
    peers: Mutex<Vec<Chan>>,
}

impl Worker {
    // Guard released (end of block) before the send.
    pub fn broadcast(&self, chan: &mut Chan, tid: u64) {
        {
            let mut g = self.txns.lock();
            g.push(tid);
        }
        chan.send(&Msg::Begin { tid });
    }

    // Explicit drop before blocking.
    pub fn wait_ack(&self, chan: &mut Chan) -> Msg {
        let g = self.peers.lock();
        let deadline = g.len();
        drop(g);
        chan.recv_timeout(deadline)
    }

    // Temporary guards (no let binding) release at end of statement, well
    // before the blocking call.
    pub fn persist(&self, table: &Table) {
        let n = self.txns.lock().len();
        table.write_page(n, &Page::default());
    }

    // The intentional case, with a reason.
    pub fn serialized_rpc(&self, chan: &SharedChan) -> Msg {
        let mut c = chan.lock();
        // harbor-lint: allow(lock-across-blocking) — the SharedChan mutex IS the per-site RPC serialization point
        c.send(&Msg::Ping)
    }
}
