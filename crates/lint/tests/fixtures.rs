//! Fixture-corpus tests for harbor-lint: every rule family must flag its
//! `bad/` case and stay silent on the `good/` mirror.

use harbor_lint::{
    analyze_source, analyze_sources, check_ratchet, collect_files, parse_baseline, render_baseline,
    Violation, WorkspaceReport, RULE_ALLOW, RULE_DEADLINE, RULE_DETERMINISM, RULE_LOCKSET,
    RULE_LOCK_BLOCKING, RULE_LOCK_RANK, RULE_TAXONOMY,
};
use std::collections::BTreeMap;
use std::path::Path;

fn analyze_fixture_tree(root: &Path) -> Vec<Violation> {
    let mut violations = Vec::new();
    let files = collect_files(root).expect("walk fixture tree");
    assert!(!files.is_empty(), "no fixtures under {}", root.display());
    for path in files {
        let rel = path
            .strip_prefix(root)
            .expect("fixture under root")
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path).expect("read fixture");
        violations.extend(analyze_source(&rel, &src).violations);
    }
    violations
}

fn fixtures(sub: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(sub)
}

#[test]
fn bad_tree_trips_every_rule_family() {
    let violations = analyze_fixture_tree(&fixtures("bad"));
    for rule in [
        RULE_DETERMINISM,
        RULE_LOCK_BLOCKING,
        RULE_LOCK_RANK,
        RULE_TAXONOMY,
        RULE_ALLOW,
    ] {
        assert!(
            violations.iter().any(|v| v.rule == rule),
            "bad fixtures produced no `{rule}` violation; got: {violations:#?}"
        );
    }
}

#[test]
fn bad_determinism_catches_each_cheat() {
    let src = std::fs::read_to_string(fixtures("bad/crates/net/src/chaos.rs")).unwrap();
    let report = analyze_source("crates/net/src/chaos.rs", &src);
    let determinism: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == RULE_DETERMINISM)
        .collect();
    assert!(
        determinism.iter().any(|v| v.msg.contains("Instant::now")),
        "wall clock not caught: {determinism:#?}"
    );
    assert!(
        determinism.iter().any(|v| v.msg.contains("thread_rng")),
        "ambient RNG not caught: {determinism:#?}"
    );
    assert!(
        determinism.iter().any(|v| v.msg.contains("link_ordinals")),
        "HashMap iteration not caught: {determinism:#?}"
    );
    // The bare allow is reported, and does NOT suppress SystemTime::now.
    assert!(report.violations.iter().any(|v| v.rule == RULE_ALLOW));
    assert!(determinism.iter().any(|v| v.msg.contains("SystemTime")));
}

#[test]
fn scan_pool_holds_no_guard_across_merge_channel_send() {
    let bad = std::fs::read_to_string(fixtures("bad/crates/dist/src/scan_pool.rs")).unwrap();
    let report = analyze_source("crates/dist/src/scan_pool.rs", &bad);
    let sends: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == RULE_LOCK_BLOCKING)
        .collect();
    assert!(
        sends.iter().any(|v| v.msg.contains("`send`")),
        "frame latch across merge-channel send not caught: {sends:#?}"
    );
    assert!(
        sends.iter().any(|v| v.msg.contains("`send_framed`")),
        "merger guard across downstream ship not caught: {sends:#?}"
    );

    let good = std::fs::read_to_string(fixtures("good/crates/dist/src/scan_pool.rs")).unwrap();
    let report = analyze_source("crates/dist/src/scan_pool.rs", &good);
    assert!(
        report.violations.is_empty(),
        "latch-scoped transcode + post-drop send must be clean: {:#?}",
        report.violations
    );
}

#[test]
fn scan_partition_rank_inversion_is_caught() {
    let bad = std::fs::read_to_string(fixtures("bad/crates/storage/src/buffer.rs")).unwrap();
    let report = analyze_source("crates/storage/src/buffer.rs", &bad);
    assert!(
        report.violations.iter().any(|v| v.rule == RULE_LOCK_RANK
            && v.msg.contains("`pool-shard`")
            && v.msg.contains("holding `frame`")),
        "scan worker re-entering pool shard under a frame latch not caught: {:#?}",
        report.violations
    );
}

#[test]
fn overloaded_is_confined_to_the_admission_boundary() {
    // Minting a shed outside front/src/admission.rs is a violation — both
    // the struct literal and the convenience constructor.
    let bad = std::fs::read_to_string(fixtures("bad/crates/front/src/server.rs")).unwrap();
    let report = analyze_source("crates/front/src/server.rs", &bad);
    let taxonomy: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == RULE_TAXONOMY)
        .collect();
    assert!(
        taxonomy
            .iter()
            .any(|v| v.msg.contains("`DbError::Overloaded`")),
        "struct-literal shed outside the boundary not caught: {taxonomy:#?}"
    );
    assert!(
        taxonomy
            .iter()
            .any(|v| v.msg.contains("`DbError::overloaded`")),
        "convenience-constructor shed outside the boundary not caught: {taxonomy:#?}"
    );

    // Matching on the variant (to forward it) is legal anywhere.
    let good = std::fs::read_to_string(fixtures("good/crates/front/src/server.rs")).unwrap();
    let report = analyze_source("crates/front/src/server.rs", &good);
    assert!(
        report.violations.is_empty(),
        "propagating a shed must be clean: {:#?}",
        report.violations
    );

    // And the admission boundary itself may mint it.
    let boundary = std::fs::read_to_string(fixtures("good/crates/front/src/admission.rs")).unwrap();
    let report = analyze_source("crates/front/src/admission.rs", &boundary);
    assert!(
        report.violations.is_empty(),
        "the admission boundary must be allowed to shed: {:#?}",
        report.violations
    );
}

#[test]
fn good_tree_is_clean() {
    let violations = analyze_fixture_tree(&fixtures("good"));
    assert!(
        violations.is_empty(),
        "good fixtures should be clean, got: {violations:#?}"
    );
}

#[test]
fn determinism_rule_only_applies_to_contract_modules() {
    // The same cheats OUTSIDE a determinism-contract module are legal.
    let src = std::fs::read_to_string(fixtures("bad/crates/net/src/chaos.rs")).unwrap();
    let report = analyze_source("crates/net/src/telemetry.rs", &src);
    assert!(
        !report.violations.iter().any(|v| v.rule == RULE_DETERMINISM),
        "determinism rule leaked outside contract modules"
    );
}

#[test]
fn test_files_are_exempt() {
    let src = std::fs::read_to_string(fixtures("bad/crates/dist/src/worker.rs")).unwrap();
    let report = analyze_source("crates/dist/tests/worker.rs", &src);
    assert!(
        report.violations.is_empty(),
        "test paths must be exempt from lock rules: {:#?}",
        report.violations
    );
    assert_eq!(report.unwraps, 0, "test paths never feed the ratchet");
}

#[test]
fn ratchet_counts_only_non_test_unwraps() {
    let src = r#"
        fn hot() { x.unwrap(); y.expect("boom"); z.unwrap_or(3); }
        #[cfg(test)]
        mod tests {
            #[test]
            fn t() { a.unwrap(); b.expect("fine in tests"); }
        }
    "#;
    let report = analyze_source("crates/core/src/hot.rs", src);
    assert_eq!(
        report.unwraps, 2,
        "unwrap_or and test-mod calls must not count"
    );
}

#[test]
fn ratchet_flags_growth_and_stale_shrink() {
    let mut baseline = BTreeMap::new();
    baseline.insert("crates/core".to_string(), 5);
    baseline.insert("crates/dist".to_string(), 2);

    // Growth is a violation.
    let mut grown = baseline.clone();
    grown.insert("crates/core".to_string(), 6);
    assert_eq!(check_ratchet(&grown, &baseline).len(), 1);

    // A shrink must tighten the committed baseline (stale file = violation).
    let mut shrunk = baseline.clone();
    shrunk.insert("crates/core".to_string(), 3);
    assert_eq!(check_ratchet(&shrunk, &baseline).len(), 1);

    // Exact match is clean.
    assert!(check_ratchet(&baseline, &baseline).is_empty());

    // A new crate with unwraps needs a baseline entry.
    let mut extra = baseline.clone();
    extra.insert("crates/new".to_string(), 1);
    assert_eq!(check_ratchet(&extra, &baseline).len(), 1);
}

// ---------------------------------------------------------------------------
// Workspace-graph rule corpus (lockset-race, deadline-propagation)
// ---------------------------------------------------------------------------

/// Reads one fixture by tree-relative path and runs the *full* analysis
/// (per-file rules + both graph passes) over it under that same path.
fn analyze_graph_fixture(tree: &str, rel: &str) -> WorkspaceReport {
    let src = std::fs::read_to_string(fixtures(tree).join(rel)).expect("read fixture");
    analyze_sources(&[(rel.to_string(), src)])
}

fn rule_violations<'a>(report: &'a WorkspaceReport, rule: &str) -> Vec<&'a Violation> {
    report
        .violations
        .iter()
        .filter(|v| v.rule == rule)
        .collect()
}

#[test]
fn lockset_bad_corpus_is_fully_flagged() {
    let report = analyze_graph_fixture("bad", "crates/app/src/roster.rs");
    let v = rule_violations(&report, RULE_LOCKSET);
    assert_eq!(v.len(), 3, "{v:#?}");
    assert!(
        v.iter()
            .any(|x| x.msg.contains("`racy_bump`") && x.msg.contains("empty lockset")),
        "{v:#?}"
    );
    assert!(v.iter().any(|x| x.msg.contains("`spawn_bump`")), "{v:#?}");
    assert!(
        v.iter()
            .any(|x| x.msg.contains("`spawn_under_guard`") && x.msg.contains("still held")),
        "{v:#?}"
    );
}

#[test]
fn lockset_good_corpus_is_clean() {
    let report = analyze_graph_fixture("good", "crates/app/src/ledger.rs");
    let v = rule_violations(&report, RULE_LOCKSET);
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn deadline_bad_corpus_is_fully_flagged() {
    let report = analyze_graph_fixture("bad", "crates/front/src/fixture_entry.rs");
    let v = rule_violations(&report, RULE_DEADLINE);
    assert_eq!(v.len(), 3, "{v:#?}");
    assert!(
        v.iter()
            .any(|x| x.msg.contains("untimed `recv()`") && x.msg.contains("`fixture_wait`")),
        "{v:#?}"
    );
    assert!(
        v.iter()
            .any(|x| x.msg.contains("unbounded retry loop") && x.msg.contains("`fixture_retry`")),
        "{v:#?}"
    );
    assert!(
        v.iter()
            .any(|x| x.msg.contains("page I/O") && x.msg.contains("`fixture_flush`")),
        "{v:#?}"
    );
    // Every diagnostic names its taint chain back to the entry point.
    assert!(
        v.iter().all(|x| x.msg.contains("fixture_handle →")),
        "{v:#?}"
    );
}

#[test]
fn deadline_good_corpus_is_clean() {
    let report = analyze_graph_fixture("good", "crates/front/src/fixture_entry.rs");
    let v = rule_violations(&report, RULE_DEADLINE);
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn reasoned_allow_suppresses_and_counts_into_findings_ratchet() {
    let rel = "crates/front/src/fixture_entry.rs";
    let src = std::fs::read_to_string(fixtures("bad").join(rel))
        .expect("read fixture")
        .replace(
            "let reply = fixture_chan().recv();",
            "let reply = fixture_chan().recv(); // harbor-lint: allow(deadline-propagation) — fixture hold",
        );
    let report = analyze_sources(&[(rel.to_string(), src)]);
    let v = rule_violations(&report, RULE_DEADLINE);
    assert_eq!(v.len(), 2, "recv finding should be suppressed: {v:#?}");
    assert!(v.iter().all(|x| !x.msg.contains("`fixture_wait`")));
    let counts = report
        .allowed_findings
        .get(RULE_DEADLINE)
        .expect("suppressed finding recorded for the ratchet");
    assert_eq!(counts.get("crates/front"), Some(&1));
}

#[test]
fn bare_allow_on_graph_rule_is_itself_a_violation() {
    let rel = "crates/front/src/fixture_entry.rs";
    let src = std::fs::read_to_string(fixtures("bad").join(rel))
        .expect("read fixture")
        .replace(
            "let reply = fixture_chan().recv();",
            "let reply = fixture_chan().recv(); // harbor-lint: allow(deadline-propagation)",
        );
    let report = analyze_sources(&[(rel.to_string(), src)]);
    // The reason-less directive does not suppress, and is flagged itself.
    assert_eq!(rule_violations(&report, RULE_DEADLINE).len(), 3);
    assert!(
        report.violations.iter().any(|v| v.rule == RULE_ALLOW),
        "{:#?}",
        report.violations
    );
}

#[test]
fn baseline_round_trips() {
    let mut map = BTreeMap::new();
    map.insert("crates/storage".to_string(), 29);
    map.insert("crates/core".to_string(), 4);
    let text = render_baseline(&map);
    assert_eq!(parse_baseline(&text), map);
}
