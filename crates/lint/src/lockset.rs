//! Pass 2a: the RacerD-style lockset race detector.
//!
//! Over the [`WorkspaceIndex`], for every *tracked* field (a plain-data
//! field of a shared-intent struct, with a workspace-unique name so
//! token-level attribution is unambiguous) the rule compares the locksets
//! inferred at every access site across all files:
//!
//! * **Inconsistent lockset** — the field is accessed under a guard
//!   somewhere, but written with an *empty* lockset somewhere else: the
//!   locked sites say "this field is lock-protected", the unlocked write
//!   says "no it isn't", and one of them is wrong. This is the static
//!   shape of the PR 3 lost-write race.
//! * **Unguarded write in a spawned closure** — a write with an empty
//!   lockset inside a `spawn` closure while the field is also touched
//!   elsewhere: the closure runs on another thread, so the access needs a
//!   guard taken *inside* the closure (guards from the spawning scope do
//!   not carry across the thread boundary).
//! * **Guard across spawn** — a `spawn` call while a `let`-bound guard is
//!   still live: the child thread runs concurrently against a held lock;
//!   at best a latent deadlock, at worst the guard is being (wrongly)
//!   treated as protecting the child's work.
//!
//! Every finding honours `// harbor-lint: allow(lockset-race) — reason`,
//! and suppressed findings are counted into the `lint-findings.toml`
//! ratchet. ShimSan (`harbor_common::shimsan`) is the dynamic complement:
//! a witness next to the field confirms or refutes the static verdict
//! under the chaos soak.

use crate::index::WorkspaceIndex;
use crate::{Violation, RULE_LOCKSET};
use std::collections::BTreeMap;

/// Runs the lockset pass. Returns findings plus, per crate, the count of
/// findings suppressed by a reasoned allow (the findings-ratchet input).
pub fn check(idx: &WorkspaceIndex) -> (Vec<Violation>, BTreeMap<String, usize>) {
    let mut out = Vec::new();
    let mut allowed_counts: BTreeMap<String, usize> = BTreeMap::new();
    let tracked = idx.tracked_fields();

    // Collect per-field access info across all non-test fns.
    struct FieldSummary<'a> {
        locked_lines: Vec<(&'a str, u32, &'a [String])>,
        sites: usize,
    }
    let mut summaries: BTreeMap<&str, FieldSummary<'_>> = BTreeMap::new();
    for f in idx.fns.iter().filter(|f| !f.is_test) {
        for a in &f.accesses {
            let Some(_) = tracked.get(&a.field) else {
                continue;
            };
            let s = summaries.entry(a.field.as_str()).or_insert(FieldSummary {
                locked_lines: Vec::new(),
                sites: 0,
            });
            s.sites += 1;
            if !a.lockset.is_empty() {
                s.locked_lines.push((&f.file, a.line, &a.lockset));
            }
        }
    }

    for f in idx.fns.iter().filter(|f| !f.is_test) {
        for a in &f.accesses {
            let Some((owner, owner_file)) = tracked.get(&a.field) else {
                continue;
            };
            if !a.write || !a.lockset.is_empty() {
                continue;
            }
            let Some(sum) = summaries.get(a.field.as_str()) else {
                continue;
            };
            let inconsistent = !sum.locked_lines.is_empty();
            let spawned_unguarded = a.in_spawn && sum.sites > 1;
            if !(inconsistent || spawned_unguarded) {
                continue;
            }
            if idx.allowed(&f.file, RULE_LOCKSET, a.line) {
                *allowed_counts.entry(f.crate_key.clone()).or_insert(0) += 1;
                continue;
            }
            let msg = if inconsistent {
                let (lf, ll, locks) = &sum.locked_lines[0];
                format!(
                    "field `{}` of shared struct `{owner}` ({owner_file}) written with an \
                     empty lockset in `{}`, but accessed under lock {{{}}} at {lf}:{ll} — \
                     inconsistent locksets mean one site is racing; take the same guard or \
                     move the field out of the shared struct",
                    a.field,
                    f.name,
                    locks.join(", "),
                )
            } else {
                format!(
                    "field `{}` of shared struct `{owner}` ({owner_file}) written inside a \
                     spawned closure in `{}` with no guard — the closure runs on another \
                     thread; guards from the spawning scope do not protect it",
                    a.field, f.name,
                )
            };
            out.push(Violation {
                file: f.file.clone(),
                line: a.line,
                rule: RULE_LOCKSET,
                msg,
            });
        }

        for sp in &f.spawns {
            if sp.guards_held.is_empty() {
                continue;
            }
            if idx.allowed(&f.file, RULE_LOCKSET, sp.line) {
                *allowed_counts.entry(f.crate_key.clone()).or_insert(0) += 1;
                continue;
            }
            let held: Vec<String> = sp
                .guards_held
                .iter()
                .map(|(var, lock)| format!("`{var}` (lock `{lock}`)"))
                .collect();
            out.push(Violation {
                file: f.file.clone(),
                line: sp.line,
                rule: RULE_LOCKSET,
                msg: format!(
                    "`{}` spawns a thread while guard {} is still held — the child runs \
                     concurrently against a held lock; drop() the guard or move the spawn \
                     outside the critical section",
                    f.name,
                    held.join(", "),
                ),
            });
        }
    }

    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    (out, allowed_counts)
}
