//! A hand-rolled Rust token lexer — just enough syntax awareness for
//! harbor-lint's rules, with zero external dependencies (the build
//! container is offline, so `syn`/`proc-macro2` are not an option).
//!
//! The lexer produces a flat token stream with line numbers, skipping
//! comments and correctly crossing string/char/lifetime literals (a naive
//! substring grep would misfire on `"Instant::now"` inside an error
//! message, or treat `// .lock()` in prose as an acquisition). Line
//! comments are additionally scanned for `harbor-lint: allow(<rule>)`
//! escape-hatch directives, which are attached to the line of code they
//! govern: the directive's own line for a trailing comment, the next line
//! bearing a token for a standalone comment line.

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`let`, `drop`, `unwrap`, …).
    Ident,
    /// Integer / float literal (value is irrelevant to every rule).
    Number,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character literal (`'x'`, `'\n'`).
    Char,
    /// Lifetime (`'a`, `'_`, `'static`).
    Lifetime,
    /// Single punctuation character (`.`, `:`, `;`, `&`, `=` …) or a
    /// delimiter (`{}()[]`). Multi-char operators arrive as separate
    /// tokens; the rules only ever match single characters.
    Punct,
}

/// A `// harbor-lint: allow(<rule>) — <reason>` directive, resolved to the
/// source line it suppresses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Allow {
    pub rule: String,
    pub reason: String,
    /// The line of code this allow applies to.
    pub line: u32,
}

/// Lexer output: the token stream plus resolved allow directives.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub allows: Vec<Allow>,
    /// Allow directives with an empty reason — reported as violations by
    /// the driver (an unexplained escape hatch defeats the point).
    pub bare_allows: Vec<(String, u32)>,
}

const ALLOW_PREFIX: &str = "harbor-lint:";

/// Pending allow from a standalone comment line, waiting for the next code
/// line to attach to.
struct PendingAllow {
    rule: String,
    reason: String,
}

pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut pending: Vec<PendingAllow> = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Lines that carried at least one token; used to classify a comment as
    // trailing (code before it on its line) or standalone.
    let mut line_has_token = false;

    macro_rules! flush_pending_to {
        ($line:expr) => {
            for p in pending.drain(..) {
                out.allows.push(Allow {
                    rule: p.rule,
                    reason: p.reason,
                    line: $line,
                });
            }
        };
    }

    while i < bytes.len() {
        // Non-ASCII (multi-byte UTF-8) never starts a token in this repo;
        // skip the whole char so slices below stay on char boundaries.
        if bytes[i] >= 0x80 {
            i += 1;
            while i < bytes.len() && (bytes[i] & 0xC0) == 0x80 {
                i += 1;
            }
            continue;
        }
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                line_has_token = false;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                // Line comment: scan for allow directives, then skip.
                let end = src[i..].find('\n').map(|n| i + n).unwrap_or(bytes.len());
                let body = &src[i + 2..end];
                if let Some((rule, reason)) = parse_allow(body) {
                    if reason.is_empty() {
                        out.bare_allows.push((rule, line));
                    } else if line_has_token {
                        out.allows.push(Allow { rule, reason, line });
                    } else {
                        pending.push(PendingAllow { rule, reason });
                    }
                }
                i = end;
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment, nestable.
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                            line_has_token = false;
                        }
                        i += 1;
                    }
                }
            }
            '"' => {
                let start_line = line;
                i = skip_string(src, i, &mut line);
                if !line_has_token {
                    flush_pending_to!(start_line);
                }
                line_has_token = true;
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text: String::new(),
                    line: start_line,
                });
            }
            'r' | 'b' if starts_raw_or_byte_string(bytes, i) => {
                let start_line = line;
                i = skip_raw_or_byte_string(src, i, &mut line);
                if !line_has_token {
                    flush_pending_to!(start_line);
                }
                line_has_token = true;
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text: String::new(),
                    line: start_line,
                });
            }
            '\'' => {
                // Lifetime vs char literal. `'ident` not followed by a
                // closing quote is a lifetime; everything else is a char.
                let is_lifetime = match bytes.get(i + 1) {
                    Some(&c1) if c1.is_ascii_alphabetic() || c1 == b'_' => {
                        // Find the end of the ident run; a lifetime has no
                        // closing quote right after it.
                        let mut j = i + 1;
                        while j < bytes.len()
                            && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_')
                        {
                            j += 1;
                        }
                        bytes.get(j) != Some(&b'\'')
                    }
                    _ => false,
                };
                if !line_has_token {
                    flush_pending_to!(line);
                }
                line_has_token = true;
                if is_lifetime {
                    let mut j = i + 1;
                    while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_')
                    {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: src[i..j].to_string(),
                        line,
                    });
                    i = j;
                } else {
                    // Char literal: 'x' or '\..' (escapes).
                    let mut j = i + 1;
                    if bytes.get(j) == Some(&b'\\') {
                        j += 2; // the escape introducer and its payload head
                                // \u{...} spans to the closing brace.
                        while j < bytes.len() && bytes[j] != b'\'' {
                            j += 1;
                        }
                    } else if j < bytes.len() {
                        // Possibly multi-byte UTF-8: advance to the quote.
                        j += 1;
                        while j < bytes.len() && bytes[j] != b'\'' {
                            j += 1;
                        }
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Char,
                        text: String::new(),
                        line,
                    });
                    i = (j + 1).min(bytes.len());
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                if !line_has_token {
                    flush_pending_to!(line);
                }
                line_has_token = true;
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
                {
                    // `1.method()` — don't eat a `.` followed by an alpha.
                    if bytes[i] == b'.'
                        && bytes
                            .get(i + 1)
                            .map(|&b| b.is_ascii_alphabetic() || b == b'_')
                            .unwrap_or(true)
                    {
                        break;
                    }
                    i += 1;
                }
                if !line_has_token {
                    flush_pending_to!(line);
                }
                line_has_token = true;
                out.tokens.push(Token {
                    kind: TokenKind::Number,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ => {
                if !line_has_token {
                    flush_pending_to!(line);
                }
                line_has_token = true;
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += c.len_utf8();
            }
        }
    }
    // Trailing standalone allows with no code after them: attach to their
    // own (dead) line so they at least show up as resolvable.
    flush_pending_to!(line);
    out
}

/// Parses `harbor-lint: allow(<rule>) <sep> <reason>` out of a comment
/// body. Returns `(rule, reason)`; the reason may be empty (flagged by the
/// caller). The separator between the closing paren and the reason is
/// free-form (`—`, `--`, `-`, `:` or just whitespace).
fn parse_allow(comment: &str) -> Option<(String, String)> {
    let at = comment.find(ALLOW_PREFIX)?;
    let rest = comment[at + ALLOW_PREFIX.len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    if rule.is_empty() {
        return None;
    }
    let reason = rest[close + 1..]
        .trim_start_matches([' ', '\t', '—', '-', ':', '–'])
        .trim()
        .to_string();
    Some((rule, reason))
}

fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    match bytes[i] {
        b'b' => matches!(bytes.get(i + 1), Some(&b'"')) || starts_raw(bytes, i + 1),
        b'r' => starts_raw(bytes, i),
        _ => false,
    }
}

fn starts_raw(bytes: &[u8], i: usize) -> bool {
    if bytes.get(i) != Some(&b'r') {
        return false;
    }
    let mut j = i + 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// Skips a plain `"…"` (or the body of a `b"…"` whose `b` the caller ate),
/// honouring escapes; returns the index just past the closing quote.
fn skip_string(src: &str, start: usize, line: &mut u32) -> usize {
    let bytes = src.as_bytes();
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips `b"…"`, `r"…"`, `r#"…"#`, `br#"…"#` from the prefix character.
fn skip_raw_or_byte_string(src: &str, start: usize, line: &mut u32) -> usize {
    let bytes = src.as_bytes();
    let mut i = start;
    if bytes[i] == b'b' {
        i += 1;
    }
    if bytes.get(i) == Some(&b'"') {
        return skip_string(src, i, line);
    }
    // Raw string: count the hashes.
    debug_assert_eq!(bytes.get(i), Some(&b'r'));
    i += 1;
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        return i; // not actually a raw string; resync conservatively
    }
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if bytes[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while seen < hashes && bytes.get(j) == Some(&b'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let src = r##"
            // Instant::now() in prose must not tokenize
            let msg = "Instant::now() inside a string";
            let raw = r#"thread_rng "quoted" body"#;
            /* block Instant::now comment */
            let real = Instant::now();
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|s| *s == "Instant").count(), 1, "{ids:?}");
        assert!(!ids.contains(&"thread_rng".to_string()));
    }

    #[test]
    fn lifetimes_do_not_eat_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn trailing_allow_attaches_to_its_own_line() {
        let src = "let a = 1;\nlet g = m.lock(); // harbor-lint: allow(lock-across-blocking) — serialized RPC\nsend();\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].line, 2);
        assert_eq!(lexed.allows[0].rule, "lock-across-blocking");
        assert!(lexed.allows[0].reason.contains("serialized"));
    }

    #[test]
    fn standalone_allow_attaches_to_next_code_line() {
        let src = "// harbor-lint: allow(determinism) — seeded by the harness\n// another comment\nlet t = Instant::now();\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].line, 3);
    }

    #[test]
    fn allow_without_reason_is_reported() {
        let src = "// harbor-lint: allow(determinism)\nlet t = 1;\n";
        let lexed = lex(src);
        assert!(lexed.allows.is_empty());
        assert_eq!(lexed.bare_allows.len(), 1);
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let s = \"line one\nline two\";\nlet x = y;";
        let lexed = lex(src);
        let x = lexed
            .tokens
            .iter()
            .find(|t| t.text == "x")
            .expect("x token");
        assert_eq!(x.line, 3);
    }
}
