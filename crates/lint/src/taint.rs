//! Pass 2b: the deadline-propagation taint rule.
//!
//! The front door (PR 9) promises a per-request deadline: admission rejects
//! stale work, and `FrontHandler::execute` re-checks the budget between
//! engine steps. That promise only holds if every path *reachable* from a
//! deadline-carrying entry point keeps consulting the deadline — one
//! untimed `recv()` or unbounded retry loop deep in `dist`/`core` and the
//! worker pool wedges a slot until the wire goes away, which is exactly
//! the tail-latency bug class BENCH_serve's p99-under-chaos exists to pin.
//!
//! The rule: seed taint at every non-test fn in `crates/front` that takes
//! a deadline-shaped parameter, propagate along the name-resolved call
//! graph (a stoplist of ubiquitous/leaf names bounds the blast radius),
//! and flag on tainted fns:
//!
//! * **untimed `recv()`** — waits forever on a path that promised a bound;
//! * **unbounded retry loops** — a `loop` with blocking work and a
//!   `continue` that never names a deadline/budget/attempt token;
//! * **page I/O that never consults the deadline** — only in the
//!   orchestration crates (`front`/`dist`/`core`), where a fn doing page
//!   I/O without receiving *or* mentioning a deadline has dropped the
//!   budget on the floor (engine/storage leaf I/O is one bounded step of a
//!   caller that re-checks between steps).
//!
//! Findings honour `// harbor-lint: allow(deadline-propagation) — reason`
//! and suppressed findings count into the `lint-findings.toml` ratchet.

use crate::index::WorkspaceIndex;
use crate::{Violation, RULE_DEADLINE};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Callee names never followed when propagating taint: ubiquitous std/
/// container vocabulary plus the wire-leaf primitives whose *timed*
/// variants are the deadline consult.
const STOPLIST: [&str; 58] = [
    // std / container ubiquity
    "new",
    "default",
    "clone",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "next",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "set",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "drop",
    "from",
    "into",
    "to_vec",
    "to_string",
    "as_slice",
    "as_ref",
    "as_mut",
    "as_bytes",
    "unwrap",
    "expect",
    "map",
    "map_err",
    "and_then",
    "or_else",
    "ok",
    "err",
    "ok_or",
    "ok_or_else",
    "collect",
    "extend",
    "contains",
    "contains_key",
    "with_capacity",
    "split",
    "join",
    "min",
    "max",
    "take",
    "store",
    "load",
    "swap",
    "write",
    "read",
    "lock", // guard methods, not calls to follow
    // wire-leaf primitives: their internals are the transport's concern
    "send",
    "send_framed",
    "recv",
    "recv_timeout",
];

/// Crates where page I/O on a tainted path must consult the deadline.
const ORCHESTRATION_CRATES: [&str; 3] = ["crates/front", "crates/dist", "crates/core"];

/// Renders the taint chain `entry → … → fn` for a diagnostic.
fn chain(idx: &WorkspaceIndex, pred: &HashMap<usize, usize>, mut id: usize) -> String {
    let mut names = vec![idx.fns[id].name.clone()];
    let mut hops = 0;
    while let Some(&p) = pred.get(&id) {
        names.push(idx.fns[p].name.clone());
        id = p;
        hops += 1;
        if hops >= 6 {
            names.push("…".into());
            break;
        }
    }
    names.reverse();
    names.join(" → ")
}

/// Runs the taint pass. Returns findings plus, per crate, the count of
/// findings suppressed by a reasoned allow (the findings-ratchet input).
pub fn check(idx: &WorkspaceIndex) -> (Vec<Violation>, BTreeMap<String, usize>) {
    let mut out = Vec::new();
    let mut allowed_counts: BTreeMap<String, usize> = BTreeMap::new();

    // Name → fn ids (bare-name resolution).
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for f in &idx.fns {
        by_name.entry(f.name.as_str()).or_default().push(f.id);
    }

    // Seed: deadline-carrying entry points in crates/front.
    let mut tainted: HashSet<usize> = HashSet::new();
    let mut pred: HashMap<usize, usize> = HashMap::new();
    let mut queue: Vec<usize> = Vec::new();
    for f in &idx.fns {
        if f.file.starts_with("crates/front/") && f.has_deadline_param && !f.is_test {
            tainted.insert(f.id);
            queue.push(f.id);
        }
    }
    queue.sort();

    // BFS along name-resolved call edges.
    let mut qi = 0usize;
    while qi < queue.len() {
        let id = queue[qi];
        qi += 1;
        for call in &idx.fns[id].calls {
            if STOPLIST.contains(&call.callee.as_str()) {
                continue;
            }
            if let Some(targets) = by_name.get(call.callee.as_str()) {
                for &t in targets {
                    if tainted.insert(t) {
                        pred.insert(t, id);
                        queue.push(t);
                    }
                }
            }
        }
    }

    // Findings on tainted, non-test fns.
    let mut ids: Vec<usize> = tainted.iter().copied().collect();
    ids.sort();
    for id in ids {
        let f = &idx.fns[id];
        if f.is_test {
            continue;
        }

        for &line in &f.recv_sites {
            if idx.allowed(&f.file, RULE_DEADLINE, line) {
                *allowed_counts.entry(f.crate_key.clone()).or_insert(0) += 1;
                continue;
            }
            out.push(Violation {
                file: f.file.clone(),
                line,
                rule: RULE_DEADLINE,
                msg: format!(
                    "untimed `recv()` in `{}` on a deadline-tainted path ({}) — a partition \
                     here wedges the caller past its promised deadline; use recv_timeout \
                     bounded by the remaining budget",
                    f.name,
                    chain(idx, &pred, id),
                ),
            });
        }

        for lp in &f.loops {
            if !(lp.has_blocking && lp.has_continue && !lp.consults_deadline) {
                continue;
            }
            if idx.allowed(&f.file, RULE_DEADLINE, lp.line) {
                *allowed_counts.entry(f.crate_key.clone()).or_insert(0) += 1;
                continue;
            }
            out.push(Violation {
                file: f.file.clone(),
                line: lp.line,
                rule: RULE_DEADLINE,
                msg: format!(
                    "unbounded retry loop in `{}` on a deadline-tainted path ({}) — the loop \
                     blocks and retries without ever consulting a deadline/budget/attempt \
                     bound; thread the deadline through and break when it expires",
                    f.name,
                    chain(idx, &pred, id),
                ),
            });
        }

        let orchestration = ORCHESTRATION_CRATES.iter().any(|c| f.crate_key == *c);
        if orchestration && !f.has_deadline_param && !f.mentions_deadline {
            for (method, line) in &f.page_io {
                if idx.allowed(&f.file, RULE_DEADLINE, *line) {
                    *allowed_counts.entry(f.crate_key.clone()).or_insert(0) += 1;
                    continue;
                }
                out.push(Violation {
                    file: f.file.clone(),
                    line: *line,
                    rule: RULE_DEADLINE,
                    msg: format!(
                        "`{}` does page I/O (`{method}`) on a deadline-tainted path ({}) but \
                         neither receives nor consults a deadline — thread the budget into \
                         this fn so slow disks can't blow the front-door promise",
                        f.name,
                        chain(idx, &pred, id),
                    ),
                });
            }
        }
    }

    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    (out, allowed_counts)
}
