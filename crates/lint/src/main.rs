//! harbor-lint CLI. See `crates/lint/src/lib.rs` for the rule families.
//!
//! Usage:
//!   harbor-lint --check [--root PATH]       # lint + ratchets; exit 1 on findings
//!   harbor-lint --check --json              # machine-readable report on stdout
//!   harbor-lint --update-baseline [--root]  # rewrite lint-baseline.toml
//!   harbor-lint --update-findings [--root]  # rewrite lint-findings.toml
//!   harbor-lint --list-rules

use std::path::PathBuf;
use std::process::ExitCode;

fn find_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut check = false;
    let mut update_baseline = false;
    let mut update_findings = false;
    let mut json = false;
    let mut root_arg: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => check = true,
            "--update-baseline" => update_baseline = true,
            "--update-findings" => update_findings = true,
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root_arg = Some(PathBuf::from(p)),
                None => {
                    eprintln!("harbor-lint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                println!("determinism          pure (seed, …, ordinal) fault decisions in chaos/fault modules");
                println!(
                    "lock-across-blocking no guard held across send/recv/page-IO/RPC/nested lock"
                );
                println!(
                    "lock-rank            declared order: {}",
                    harbor_lint::LOCK_RANK_ORDER.join(" → ")
                );
                println!("error-taxonomy       Timeout/SiteUnavailable/CorruptPage minted only at classification boundaries");
                println!("panic-ratchet        unwrap/expect counts pinned in lint-baseline.toml, only shrink");
                println!("lockset-race         shared fields need consistent locksets workspace-wide; no guard crosses a spawn (runtime twin: ShimSan)");
                println!("deadline-propagation paths reachable from front-door deadline entries must thread the deadline (no untimed recv, unbounded retry, budget-blind page I/O)");
                println!("lint-allow           every allow(<rule>) must carry a reason; graph-rule allows ratchet via lint-findings.toml");
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "usage: harbor-lint [--check] [--json] [--update-baseline] [--update-findings] [--root PATH] [--list-rules]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("harbor-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    if !check && !update_baseline && !update_findings {
        check = true; // bare invocation behaves like --check
    }

    let start = root_arg
        .or_else(|| std::env::current_dir().ok())
        .unwrap_or_else(|| PathBuf::from("."));
    let Some(root) = find_root(start.clone()) else {
        eprintln!(
            "harbor-lint: no workspace Cargo.toml found above {}",
            start.display()
        );
        return ExitCode::from(2);
    };

    let report = match harbor_lint::analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("harbor-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    let baseline_path = root.join("lint-baseline.toml");
    if update_baseline {
        let text = harbor_lint::render_baseline(&report.unwraps);
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!("harbor-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        let total: usize = report.unwraps.values().sum();
        println!(
            "harbor-lint: baseline updated — {} unwrap/expect calls across {} crates",
            total,
            report.unwraps.len()
        );
    }

    let findings_path = root.join("lint-findings.toml");
    if update_findings {
        let text = harbor_lint::render_findings(&report.allowed_findings);
        if let Err(e) = std::fs::write(&findings_path, text) {
            eprintln!("harbor-lint: cannot write {}: {e}", findings_path.display());
            return ExitCode::from(2);
        }
        let total: usize = report
            .allowed_findings
            .values()
            .flat_map(|m| m.values())
            .sum();
        println!("harbor-lint: findings ratchet updated — {total} reasoned allow(s) recorded");
    }
    if (update_baseline || update_findings) && !check {
        return ExitCode::SUCCESS;
    }

    let mut violations = report.violations.clone();
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => harbor_lint::parse_baseline(&t),
        Err(_) => {
            eprintln!(
                "harbor-lint: {} missing — run --update-baseline once and commit it",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
    };
    violations.extend(harbor_lint::check_ratchet(&report.unwraps, &baseline));

    let findings = match std::fs::read_to_string(&findings_path) {
        Ok(t) => harbor_lint::parse_findings(&t),
        Err(_) => {
            eprintln!(
                "harbor-lint: {} missing — run --update-findings once and commit it",
                findings_path.display()
            );
            return ExitCode::from(2);
        }
    };
    violations.extend(harbor_lint::check_findings_ratchet(
        &report.allowed_findings,
        &findings,
    ));

    if json {
        print!("{}", harbor_lint::render_json(&report, &violations));
        return if violations.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    if violations.is_empty() {
        let total: usize = report.unwraps.values().sum();
        let suppressed: usize = report
            .allowed_findings
            .values()
            .flat_map(|m| m.values())
            .sum();
        println!(
            "harbor-lint: clean — {} files scanned, {} non-test unwrap/expect calls (ratchet holds), {} reasoned graph-finding allow(s)",
            report.files_scanned, total, suppressed
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            println!("{v}");
        }
        println!("harbor-lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}
