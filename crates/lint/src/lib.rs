//! harbor-lint: a repo-specific static analyzer for HARBOR's hand-enforced
//! invariants. Zero external dependencies (the container is offline), built
//! on a small hand-rolled lexer ([`lexer`]) plus a brace/scope tracker.
//!
//! Four rule families (see DESIGN.md "Enforced invariants"):
//!
//! * **`determinism`** — the determinism-contract modules (the chaos and
//!   disk-fault planes) must compute every fault decision as a pure
//!   function of `(seed, …, ordinal)`: no wall clocks, no ambient
//!   randomness, no `HashMap` iteration-order dependence.
//! * **`lock-across-blocking`** — a `MutexGuard`/`RwLock` guard must not
//!   span a blocking call (channel send/recv, page I/O, RPC helpers, a
//!   nested lock acquisition): PR 3's lost-write race was born exactly in
//!   this class of lock-scope subtlety.
//! * **`lock-rank`** — the declared lock order `catalog → lock-manager →
//!   table-map → pool-shard → frame → WAL` is enforced intra-function; the
//!   runtime complement (`harbor_common::lockrank`) catches cross-function
//!   inversions under the chaos soak.
//! * **`error-taxonomy`** — `DbError::Timeout` / `SiteUnavailable` /
//!   `CorruptPage` may only be *constructed* at classification boundaries
//!   (`from_remote_msg` and friends): recovery failover and scrub repair
//!   dispatch on these classes, so ad-hoc construction elsewhere corrupts
//!   failure handling.
//! * **`panic-ratchet`** — `.unwrap()` / `.expect()` counts per crate are
//!   pinned in `lint-baseline.toml` and may only shrink (test code exempt).
//!
//! Two workspace-graph rule families run over a cross-file index
//! ([`index`]) rather than one file at a time:
//!
//! * **`lockset-race`** ([`lockset`]) — RacerD-style: plain fields of
//!   shared-intent structs must see consistent locksets at every access
//!   site workspace-wide, guards must not cross spawn boundaries. The
//!   runtime complement is ShimSan (`harbor_common::shimsan`), vector-clock
//!   happens-before witnesses armed in the instrumented shims.
//! * **`deadline-propagation`** ([`taint`]) — dataflow from `crates/front`'s
//!   deadline-carrying entry points along the call graph: tainted paths
//!   must not `recv()` untimed, retry unboundedly, or do page I/O without
//!   consulting the budget.
//!
//! Suppressed graph findings ratchet via `lint-findings.toml` (exact-match,
//! like the panic ratchet: new findings and stale entries both fail).
//!
//! Escape hatch: `// harbor-lint: allow(<rule>) — <reason>` on the
//! offending line (or the line above). The reason is mandatory.

pub mod index;
pub mod lexer;
pub mod lockset;
pub mod taint;

use lexer::{lex, Token, TokenKind};
use std::collections::{BTreeMap, HashSet};
use std::path::{Path, PathBuf};

pub const RULE_DETERMINISM: &str = "determinism";
pub const RULE_LOCK_BLOCKING: &str = "lock-across-blocking";
pub const RULE_LOCK_RANK: &str = "lock-rank";
pub const RULE_TAXONOMY: &str = "error-taxonomy";
pub const RULE_RATCHET: &str = "panic-ratchet";
pub const RULE_ALLOW: &str = "lint-allow";
pub const RULE_LOCKSET: &str = "lockset-race";
pub const RULE_DEADLINE: &str = "deadline-propagation";

/// One finding.
#[derive(Clone, Debug)]
pub struct Violation {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub msg: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

// ---------------------------------------------------------------------------
// Repo-specific rule configuration
// ---------------------------------------------------------------------------

/// Modules under the determinism contract: every fault decision must be a
/// pure function of `(seed, …, ordinal)` so a seed replays byte-identically.
pub const DETERMINISM_MODULES: [&str; 4] = [
    "net/src/chaos.rs",
    "storage/src/fault.rs",
    "core/src/chaos_harness.rs",
    "dist/src/failpoint.rs",
];

/// Files allowed to construct the classified error variants: the taxonomy
/// definition itself plus the classification boundaries (RPC deadline
/// helpers, page-checksum verification, serving-path admission control).
pub const TAXONOMY_BOUNDARIES: [&str; 4] = [
    "common/src/error.rs",    // the taxonomy and its constructors
    "dist/src/lib.rs",        // rpc_deadline/rpc_liveness: timeout vs liveness death
    "storage/src/file.rs",    // checksum verification: the only CorruptPage source
    "front/src/admission.rs", // load shedding: the only Overloaded source
];

/// The error variants whose construction is confined to the boundaries.
const CLASSIFIED_VARIANTS: [&str; 7] = [
    "Timeout",
    "SiteUnavailable",
    "CorruptPage",
    "Overloaded",
    "timeout",     // DbError::timeout(..) convenience constructor
    "unavailable", // DbError::unavailable(..)
    "overloaded",  // DbError::overloaded(..)
];

/// The declared lock-rank order, lowest acquired first. Mirrors
/// `harbor_common::lockrank::Rank` — keep the two in sync.
pub const LOCK_RANK_ORDER: [&str; 6] = [
    "catalog",
    "lock-manager",
    "table-map",
    "pool-shard",
    "frame",
    "wal",
];

struct RankPattern {
    file_suffix: &'static str,
    /// Token texts to match, e.g. `[".", "frames", ".", "lock"]`.
    pattern: &'static [&'static str],
    rank: usize,
}

const RANK_PATTERNS: &[RankPattern] = &[
    RankPattern {
        file_suffix: "engine/src/catalog.rs",
        pattern: &[".", "tables", ".", "lock"],
        rank: 0,
    },
    RankPattern {
        file_suffix: "storage/src/lock.rs",
        pattern: &[".", "state", ".", "lock"],
        rank: 1,
    },
    RankPattern {
        file_suffix: "storage/src/buffer.rs",
        pattern: &[".", "tables", ".", "read"],
        rank: 2,
    },
    RankPattern {
        file_suffix: "storage/src/buffer.rs",
        pattern: &[".", "tables", ".", "write"],
        rank: 2,
    },
    RankPattern {
        file_suffix: "storage/src/buffer.rs",
        pattern: &[".", "frames", ".", "lock"],
        rank: 3,
    },
    RankPattern {
        file_suffix: "storage/src/buffer.rs",
        pattern: &[".", "page", ".", "read"],
        rank: 4,
    },
    RankPattern {
        file_suffix: "storage/src/buffer.rs",
        pattern: &[".", "page", ".", "write"],
        rank: 4,
    },
    RankPattern {
        file_suffix: "storage/src/buffer.rs",
        pattern: &[".", "wal", ".", "read"],
        rank: 5,
    },
    RankPattern {
        file_suffix: "storage/src/buffer.rs",
        pattern: &[".", "wal", ".", "write"],
        rank: 5,
    },
];

/// Method names (after a `.`) that block: channel traffic, page I/O,
/// connection setup. Holding a lock guard across any of these is rule
/// `lock-across-blocking`.
pub(crate) const BLOCKING_METHODS: [&str; 9] = [
    "send",
    "send_framed",
    "recv",
    "recv_timeout",
    "connect",
    "accept",
    "accept_timeout",
    "read_page",
    "write_page",
];

/// Free-function / repo helper names that block internally (RPC round
/// trips, retry loops). Matched as `name(`.
pub(crate) const BLOCKING_HELPERS: [&str; 7] = [
    "rpc_live",
    "rpc_liveness",
    "rpc_expect_ok",
    "scan_rpc_deadline",
    "with_read_retries",
    "retry_transient",
    "retry_with",
];

/// Idents banned outright in determinism-contract modules.
const BANNED_DETERMINISM_IDENTS: [&str; 3] = ["thread_rng", "from_entropy", "OsRng"];

/// `A::now`-style paths banned in determinism-contract modules.
const BANNED_NOW_RECEIVERS: [&str; 4] = ["Instant", "SystemTime", "Utc", "Local"];

/// Order-dependent consumers of a `HashMap`.
const HASHMAP_ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Guard-producing zero-arg methods (`m.lock()`, `rw.read()`, `rw.write()`).
const GUARD_METHODS: [&str; 3] = ["lock", "read", "write"];

// ---------------------------------------------------------------------------
// Per-file analysis
// ---------------------------------------------------------------------------

/// Report for one source file.
#[derive(Debug, Default)]
pub struct FileReport {
    pub violations: Vec<Violation>,
    /// Non-test `.unwrap()` / `.expect(` count (panic ratchet input).
    pub unwraps: usize,
}

/// `true` for files whose entire contents are test/bench/example code.
pub fn is_test_path(rel: &str) -> bool {
    rel.contains("/tests/")
        || rel.starts_with("tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
        || rel.starts_with("examples/")
}

fn tok_is(t: &Token, text: &str) -> bool {
    t.text == text
}

fn match_seq(tokens: &[Token], at: usize, pat: &[&str]) -> bool {
    pat.len() <= tokens.len() - at
        && pat
            .iter()
            .enumerate()
            .all(|(k, p)| tok_is(&tokens[at + k], p))
}

/// A live lock guard bound by a `let`.
#[derive(Debug)]
struct Guard {
    name: String,
    /// Brace depth at the binding; the guard dies when depth drops below.
    depth: usize,
    line: u32,
    rank: Option<usize>,
}

/// Names with a `HashMap`-bearing type annotation or initializer in this
/// file (fields and let-bindings) — the receivers whose iteration the
/// determinism rule flags.
fn collect_hashmap_names(tokens: &[Token]) -> HashSet<String> {
    let mut names = HashSet::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text != "HashMap" {
            continue;
        }
        // Walk back over wrapper generics (`Mutex<`, `Arc<RwLock<` …) and
        // the `=`/`::` of initializers to the introducing `name :` / `name =`.
        let mut j = i;
        while j > 0 {
            let prev = &tokens[j - 1];
            let is_wrapper = prev.kind == TokenKind::Ident || tok_is(prev, "<");
            if !is_wrapper {
                break;
            }
            j -= 1;
        }
        if j >= 2 && tok_is(&tokens[j - 1], ":") && !(j >= 3 && tok_is(&tokens[j - 2], ":")) {
            // `name : [wrappers] HashMap` — a field or typed binding.
            if tokens[j - 2].kind == TokenKind::Ident {
                names.insert(tokens[j - 2].text.clone());
            }
        } else if j >= 2 && tok_is(&tokens[j - 1], "=") && tokens[j - 2].kind == TokenKind::Ident {
            // `let name = HashMap::new()`.
            names.insert(tokens[j - 2].text.clone());
        }
    }
    names
}

/// Token ranges (by index) lying inside `#[cfg(test)] mod … { … }` bodies
/// or `#[test] fn … { … }` bodies.
pub(crate) fn test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        let is_cfg_test = match_seq(tokens, i, &["#", "[", "cfg", "(", "test", ")", "]"]);
        let is_test_attr = match_seq(tokens, i, &["#", "[", "test", "]"]);
        if !(is_cfg_test || is_test_attr) {
            i += 1;
            continue;
        }
        // Skip this attribute and any further attributes, then expect
        // `mod name {` (cfg) or `fn name ( … ) … {` (test attr).
        let mut j = i;
        while j < tokens.len() && tok_is(&tokens[j], "#") {
            // Skip `#[ … ]` with bracket nesting.
            j += 1;
            if j < tokens.len() && tok_is(&tokens[j], "[") {
                let mut brackets = 1;
                j += 1;
                while j < tokens.len() && brackets > 0 {
                    if tok_is(&tokens[j], "[") {
                        brackets += 1;
                    } else if tok_is(&tokens[j], "]") {
                        brackets -= 1;
                    }
                    j += 1;
                }
            }
        }
        let is_item = j < tokens.len()
            && (tok_is(&tokens[j], "mod") || tok_is(&tokens[j], "fn") || tok_is(&tokens[j], "pub"));
        if !is_item {
            i += 1;
            continue;
        }
        // Find the body's opening brace: the first `{` outside parens.
        let mut parens = 0i32;
        let mut body_open = None;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "(" => parens += 1,
                ")" => parens -= 1,
                ";" if parens == 0 => break, // `mod name;` — no body here
                "{" if parens == 0 => {
                    body_open = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body_open else {
            i += 1;
            continue;
        };
        // Mark until the matching close brace.
        let mut braces = 1;
        let mut k = open + 1;
        while k < tokens.len() && braces > 0 {
            if tok_is(&tokens[k], "{") {
                braces += 1;
            } else if tok_is(&tokens[k], "}") {
                braces -= 1;
            }
            in_test[k] = true;
            k += 1;
        }
        for slot in in_test.iter_mut().take(k).skip(i) {
            *slot = true;
        }
        i = k;
    }
    in_test
}

/// Statement end: index of the `;` terminating the statement starting at
/// `start`, honouring (), [], {} nesting. Returns `None` when the file ends
/// first (malformed input; the caller just skips tracking).
pub(crate) fn statement_end(tokens: &[Token], start: usize) -> Option<usize> {
    let mut parens = 0i32;
    let mut brackets = 0i32;
    let mut braces = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(start) {
        match t.text.as_str() {
            "(" => parens += 1,
            ")" => parens -= 1,
            "[" => brackets += 1,
            "]" => brackets -= 1,
            "{" => braces += 1,
            "}" => braces -= 1,
            ";" if parens == 0 && brackets == 0 && braces == 0 => return Some(k),
            _ => {}
        }
        if braces < 0 {
            return None; // ran off the enclosing block
        }
    }
    None
}

/// Does `rhs` (the tokens after `=` up to `;`) end in a guard acquisition —
/// `….lock()`, `….read()`, `….write()`, optionally wrapped in a trailing
/// `.unwrap()` / `.expect(…)` or `?`?
pub(crate) fn rhs_is_guard_acquisition(rhs: &[Token]) -> bool {
    let mut end = rhs.len();
    // Strip a trailing `?`.
    while end > 0 && tok_is(&rhs[end - 1], "?") {
        end -= 1;
    }
    // Strip a trailing `.unwrap()` / `.expect(…)`.
    if end >= 4 && tok_is(&rhs[end - 1], ")") {
        // Find the `(` matching the final `)`.
        let mut depth = 0i32;
        let mut open = None;
        for k in (0..end).rev() {
            match rhs[k].text.as_str() {
                ")" => depth += 1,
                "(" => {
                    depth -= 1;
                    if depth == 0 {
                        open = Some(k);
                        break;
                    }
                }
                _ => {}
            }
        }
        if let Some(open) = open {
            if open >= 2
                && tok_is(&rhs[open - 2], ".")
                && (tok_is(&rhs[open - 1], "unwrap") || tok_is(&rhs[open - 1], "expect"))
            {
                end = open - 2;
            }
        }
    }
    end >= 4
        && tok_is(&rhs[end - 1], ")")
        && tok_is(&rhs[end - 2], "(")
        && GUARD_METHODS.contains(&rhs[end - 3].text.as_str())
        && tok_is(&rhs[end - 4], ".")
}

/// Analyzes one file. `rel` is the path relative to the repo root, used for
/// rule targeting and reporting.
pub fn analyze_source(rel: &str, src: &str) -> FileReport {
    let lexed = lex(src);
    let tokens = &lexed.tokens;
    let mut report = FileReport::default();

    let allowed = |rule: &str, line: u32| -> bool {
        lexed
            .allows
            .iter()
            .any(|a| a.rule == rule && a.line == line)
    };
    for (rule, line) in &lexed.bare_allows {
        report.violations.push(Violation {
            file: rel.to_string(),
            line: *line,
            rule: RULE_ALLOW,
            msg: format!("allow({rule}) without a reason — explain why the rule is waived"),
        });
    }

    let whole_file_test = is_test_path(rel);
    let in_test = if whole_file_test {
        vec![true; tokens.len()]
    } else {
        test_regions(tokens)
    };

    let determinism_module = DETERMINISM_MODULES.iter().any(|m| rel.ends_with(m));
    let taxonomy_boundary = TAXONOMY_BOUNDARIES.iter().any(|m| rel.ends_with(m));
    let hashmap_names = if determinism_module {
        collect_hashmap_names(tokens)
    } else {
        HashSet::new()
    };
    let rank_patterns: Vec<&RankPattern> = RANK_PATTERNS
        .iter()
        .filter(|p| rel.ends_with(p.file_suffix))
        .collect();

    let mut depth = 0usize;
    let mut paren_depth = 0i32;
    let mut guards: Vec<Guard> = Vec::new();
    // `matches!( … )` regions (paren depth at entry); constructions inside
    // are patterns, not expressions.
    let mut matches_regions: Vec<i32> = Vec::new();
    // Guards scheduled to activate once their binding statement ends.
    let mut pending_guards: Vec<(usize, Guard)> = Vec::new();

    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        let line = t.line;
        let tested = in_test[i];

        // Activate guards whose binding statement has completed.
        let mut k = 0;
        while k < pending_guards.len() {
            if pending_guards[k].0 <= i {
                let (_, g) = pending_guards.remove(k);
                guards.push(g);
            } else {
                k += 1;
            }
        }

        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
            }
            "(" => paren_depth += 1,
            ")" => {
                paren_depth -= 1;
                matches_regions.retain(|d| *d < paren_depth);
            }
            _ => {}
        }

        if t.kind == TokenKind::Ident {
            // matches!( … ) region entry.
            if tok_is(t, "matches")
                && i + 2 < tokens.len()
                && tok_is(&tokens[i + 1], "!")
                && tok_is(&tokens[i + 2], "(")
            {
                matches_regions.push(paren_depth);
            }

            // drop(name) kills a guard early.
            if tok_is(t, "drop")
                && i + 3 < tokens.len()
                && tok_is(&tokens[i + 1], "(")
                && tokens[i + 2].kind == TokenKind::Ident
                && tok_is(&tokens[i + 3], ")")
            {
                let name = &tokens[i + 2].text;
                guards.retain(|g| g.name != *name);
            }

            // let-bound guard acquisition.
            if tok_is(t, "let")
                && !(i > 0 && (tok_is(&tokens[i - 1], "if") || tok_is(&tokens[i - 1], "while")))
            {
                if let Some(end) = statement_end(tokens, i) {
                    // lhs: `let [mut] name = …` (single-ident patterns only).
                    let mut j = i + 1;
                    if j < end && tok_is(&tokens[j], "mut") {
                        j += 1;
                    }
                    if j + 1 < end
                        && tokens[j].kind == TokenKind::Ident
                        && tok_is(&tokens[j + 1], "=")
                    {
                        let rhs = &tokens[j + 2..end];
                        if rhs_is_guard_acquisition(rhs) {
                            let rank = rank_patterns
                                .iter()
                                .filter(|p| (0..rhs.len()).any(|k| match_seq(rhs, k, p.pattern)))
                                .map(|p| p.rank)
                                .max();
                            // A second guard while one is already live:
                            // either a rank-ordered pair (fine — the rank
                            // rule governs) or a flagged nesting.
                            if !tested && !allowed(RULE_LOCK_BLOCKING, line) {
                                for g in &guards {
                                    let ordered =
                                        matches!((g.rank, rank), (Some(a), Some(b)) if b >= a);
                                    if !ordered {
                                        report.violations.push(Violation {
                                            file: rel.to_string(),
                                            line,
                                            rule: RULE_LOCK_BLOCKING,
                                            msg: format!(
                                                "guard `{}` (line {}) is still held while acquiring guard `{}` — \
                                                 scope the first guard tighter or drop() it first",
                                                g.name, g.line, tokens[j].text
                                            ),
                                        });
                                    }
                                }
                            }
                            pending_guards.push((
                                end,
                                Guard {
                                    name: tokens[j].text.clone(),
                                    depth,
                                    line,
                                    rank,
                                },
                            ));
                        }
                    }
                }
            }
        }

        // Lock-rank: every acquisition (bound or temporary) checks against
        // the live ranked guards.
        for p in &rank_patterns {
            if match_seq(tokens, i, p.pattern) && !tested && !allowed(RULE_LOCK_RANK, line) {
                for g in &guards {
                    if let Some(held) = g.rank {
                        if held > p.rank {
                            report.violations.push(Violation {
                                file: rel.to_string(),
                                line,
                                rule: RULE_LOCK_RANK,
                                msg: format!(
                                    "acquiring `{}` (rank {}) while holding `{}` (rank {}, guard `{}` line {}); \
                                     declared order is {}",
                                    LOCK_RANK_ORDER[p.rank],
                                    p.rank,
                                    LOCK_RANK_ORDER[held],
                                    held,
                                    g.name,
                                    g.line,
                                    LOCK_RANK_ORDER.join(" → ")
                                ),
                            });
                        }
                    }
                }
            }
        }

        // Blocking call under a live guard.
        if !guards.is_empty() && !tested {
            let blocking: Option<&str> = if i + 2 < tokens.len()
                && tok_is(t, ".")
                && BLOCKING_METHODS.contains(&tokens[i + 1].text.as_str())
                && tok_is(&tokens[i + 2], "(")
            {
                Some(tokens[i + 1].text.as_str())
            } else if t.kind == TokenKind::Ident
                && BLOCKING_HELPERS.contains(&t.text.as_str())
                && i + 1 < tokens.len()
                && tok_is(&tokens[i + 1], "(")
                && !(i > 0 && tok_is(&tokens[i - 1], "fn"))
            {
                Some(t.text.as_str())
            } else if match_seq(tokens, i, &["thread", ":", ":", "sleep"]) {
                Some("thread::sleep")
            } else {
                None
            };
            if let Some(call) = blocking {
                if !allowed(RULE_LOCK_BLOCKING, line) {
                    // One violation per guard would be noise; report against
                    // the outermost live guard.
                    if let Some(g) = guards.first() {
                        report.violations.push(Violation {
                            file: rel.to_string(),
                            line,
                            rule: RULE_LOCK_BLOCKING,
                            msg: format!(
                                "blocking call `{call}` while guard `{}` (line {}) is held — \
                                 release the guard first (PR 3's lost-write race lived here)",
                                g.name, g.line
                            ),
                        });
                    }
                }
            }
        }

        // Determinism-contract module rules.
        if determinism_module && !tested {
            if BANNED_DETERMINISM_IDENTS.contains(&t.text.as_str())
                && !allowed(RULE_DETERMINISM, line)
            {
                report.violations.push(Violation {
                    file: rel.to_string(),
                    line,
                    rule: RULE_DETERMINISM,
                    msg: format!(
                        "`{}` in a determinism-contract module — fault decisions must be a pure \
                         function of (seed, …, ordinal)",
                        t.text
                    ),
                });
            }
            if BANNED_NOW_RECEIVERS.contains(&t.text.as_str())
                && match_seq(tokens, i + 1, &[":", ":", "now"])
                && !allowed(RULE_DETERMINISM, line)
            {
                report.violations.push(Violation {
                    file: rel.to_string(),
                    line,
                    rule: RULE_DETERMINISM,
                    msg: format!(
                        "`{}::now` in a determinism-contract module — wall clocks break seed replay",
                        t.text
                    ),
                });
            }
            if hashmap_names.contains(&t.text) {
                // `name[.lock()/.read()/…].iter()`-style iteration, or
                // `for … in [&[mut]] name`.
                let mut j = i + 1;
                while j + 3 < tokens.len()
                    && tok_is(&tokens[j], ".")
                    && ["lock", "read", "write", "borrow", "borrow_mut"]
                        .contains(&tokens[j + 1].text.as_str())
                    && tok_is(&tokens[j + 2], "(")
                    && tok_is(&tokens[j + 3], ")")
                {
                    j += 4;
                }
                let iterated_by_method = j + 2 < tokens.len()
                    && tok_is(&tokens[j], ".")
                    && HASHMAP_ITER_METHODS.contains(&tokens[j + 1].text.as_str())
                    && tok_is(&tokens[j + 2], "(");
                let iterated_by_for = {
                    let mut k = i;
                    while k > 0 && (tok_is(&tokens[k - 1], "&") || tok_is(&tokens[k - 1], "mut")) {
                        k -= 1;
                    }
                    k > 0 && tok_is(&tokens[k - 1], "in")
                };
                if (iterated_by_method || iterated_by_for) && !allowed(RULE_DETERMINISM, line) {
                    report.violations.push(Violation {
                        file: rel.to_string(),
                        line,
                        rule: RULE_DETERMINISM,
                        msg: format!(
                            "iteration over `HashMap` `{}` in a determinism-contract module — \
                             iteration order is unstable across runs; use BTreeMap or sort first",
                            t.text
                        ),
                    });
                }
            }
        }

        // Error-taxonomy: classified variants constructed outside the
        // classification boundaries.
        if !taxonomy_boundary
            && !tested
            && tok_is(t, "DbError")
            && match_seq(tokens, i + 1, &[":", ":"])
            && i + 3 < tokens.len()
            && CLASSIFIED_VARIANTS.contains(&tokens[i + 3].text.as_str())
            && !allowed(RULE_TAXONOMY, tokens[i + 3].line)
        {
            let variant = tokens[i + 3].text.clone();
            if is_construction(tokens, i + 3, &matches_regions, paren_depth) {
                report.violations.push(Violation {
                    file: rel.to_string(),
                    line: tokens[i + 3].line,
                    rule: RULE_TAXONOMY,
                    msg: format!(
                        "`DbError::{variant}` constructed outside a classification boundary — \
                         only {} may mint Timeout/SiteUnavailable/CorruptPage/Overloaded \
                         (recovery failover, scrub repair, and client retry dispatch on these \
                         classes)",
                        TAXONOMY_BOUNDARIES.join(", ")
                    ),
                });
            }
        }

        // Panic ratchet: non-test `.unwrap()` / `.expect(`.
        if !tested
            && i > 0
            && tok_is(&tokens[i - 1], ".")
            && (tok_is(t, "unwrap") || tok_is(t, "expect"))
            && i + 1 < tokens.len()
            && tok_is(&tokens[i + 1], "(")
        {
            report.unwraps += 1;
        }

        i += 1;
    }

    report
}

/// Decides whether `DbError::<Variant>` at token index `vi` is an
/// expression (construction) rather than a match/if-let pattern.
fn is_construction(
    tokens: &[Token],
    vi: usize,
    matches_regions: &[i32],
    _paren_depth: i32,
) -> bool {
    if !matches_regions.is_empty() {
        return false; // inside matches!(…): always a pattern
    }
    let next = match tokens.get(vi + 1) {
        Some(n) => n,
        None => return false,
    };
    let close = match next.text.as_str() {
        "(" => matching_close(tokens, vi + 1, "(", ")"),
        "{" => {
            // `{ .. }` (rest pattern) is a pattern.
            if let Some(close) = matching_close(tokens, vi + 1, "{", "}") {
                if tokens[vi + 1..close]
                    .windows(2)
                    .any(|w| tok_is(&w[0], ".") && tok_is(&w[1], "."))
                {
                    return false;
                }
                Some(close)
            } else {
                None
            }
        }
        // Bare path (`map_err(DbError::timeout)`): expression use.
        _ => return true,
    };
    let Some(mut k) = close else { return true };
    // `(_)` is a pattern.
    if tok_is(&tokens[vi + 1], "(") && k == vi + 3 && tok_is(&tokens[vi + 2], "_") {
        return false;
    }
    // Skip closing parens of enclosing `Err( … )` wrappers, then look for
    // the `=` of a match arm (`=>`) or `if let`/`while let` (`= scrutinee`).
    k += 1;
    while k < tokens.len() && tok_is(&tokens[k], ")") {
        k += 1;
    }
    if k < tokens.len() && tok_is(&tokens[k], "=") {
        return false; // `… => arm` or `if let … = scrutinee`
    }
    // `Timeout(_) | Timeout(m)` alternation in a pattern.
    if k < tokens.len() && tok_is(&tokens[k], "|") {
        return false;
    }
    true
}

fn matching_close(tokens: &[Token], open: usize, o: &str, c: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if tok_is(t, o) {
            depth += 1;
        } else if tok_is(t, c) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Tree walking + the panic-ratchet baseline
// ---------------------------------------------------------------------------

/// Aggregate result over a source tree.
#[derive(Debug, Default)]
pub struct TreeReport {
    pub violations: Vec<Violation>,
    /// Non-test unwrap/expect counts keyed by crate directory
    /// (`crates/storage`, `src`, …).
    pub unwraps: BTreeMap<String, usize>,
    pub files_scanned: usize,
}

/// Directories never descended into.
const SKIP_DIRS: [&str; 6] = [
    "target",
    "shims",
    ".git",
    "fixtures",
    "node_modules",
    ".github",
];

/// Collects the workspace `.rs` files under `root`, sorted for stable output.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(_) => continue,
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Crate-directory key for the ratchet (`crates/<name>` or the top-level
/// `src`/`tests`/… component).
pub fn crate_key(rel: &str) -> String {
    let mut parts = rel.split('/');
    match parts.next() {
        Some("crates") => match parts.next() {
            Some(c) => format!("crates/{c}"),
            None => "crates".to_string(),
        },
        Some(first) => first.to_string(),
        None => rel.to_string(),
    }
}

/// Analyzes every workspace source file under `root`.
pub fn analyze_tree(root: &Path) -> std::io::Result<TreeReport> {
    let mut report = TreeReport::default();
    for path in collect_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)?;
        let fr = analyze_source(&rel, &src);
        report.violations.extend(fr.violations);
        if fr.unwraps > 0 {
            *report.unwraps.entry(crate_key(&rel)).or_insert(0) += fr.unwraps;
        }
        report.files_scanned += 1;
    }
    Ok(report)
}

/// Parses `lint-baseline.toml` (`[unwraps]` section, `"key" = count`).
pub fn parse_baseline(text: &str) -> BTreeMap<String, usize> {
    let mut map = BTreeMap::new();
    let mut in_section = false;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            in_section = line == "[unwraps]";
            continue;
        }
        if !in_section {
            continue;
        }
        if let Some((k, v)) = line.split_once('=') {
            let key = k.trim().trim_matches('"').to_string();
            if let Ok(n) = v.trim().parse::<usize>() {
                map.insert(key, n);
            }
        }
    }
    map
}

/// Renders the baseline file.
pub fn render_baseline(map: &BTreeMap<String, usize>) -> String {
    let mut out = String::from(
        "# harbor-lint panic ratchet: .unwrap()/.expect() counts per crate in\n\
         # non-test code. This file may only shrink. After removing unwraps,\n\
         # regenerate with: cargo run -p harbor-lint -- --update-baseline\n\n\
         [unwraps]\n",
    );
    for (k, v) in map {
        out.push_str(&format!("\"{k}\" = {v}\n"));
    }
    out
}

/// Compares the measured counts against the committed baseline. The counts
/// must match exactly: higher is a regression, lower means the ratchet can
/// tighten (regenerate the baseline in the same change).
pub fn check_ratchet(
    current: &BTreeMap<String, usize>,
    baseline: &BTreeMap<String, usize>,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (k, cur) in current {
        match baseline.get(k) {
            None => out.push(Violation {
                file: "lint-baseline.toml".into(),
                line: 0,
                rule: RULE_RATCHET,
                msg: format!(
                    "crate {k} has {cur} unwrap/expect calls but no baseline entry — \
                     run `cargo run -p harbor-lint -- --update-baseline`"
                ),
            }),
            Some(base) if cur > base => out.push(Violation {
                file: "lint-baseline.toml".into(),
                line: 0,
                rule: RULE_RATCHET,
                msg: format!(
                    "{k}: unwrap/expect count grew {base} → {cur}; the ratchet only \
                     shrinks — propagate a DbError instead"
                ),
            }),
            Some(base) if cur < base => out.push(Violation {
                file: "lint-baseline.toml".into(),
                line: 0,
                rule: RULE_RATCHET,
                msg: format!(
                    "{k}: unwrap/expect count shrank {base} → {cur}; tighten the ratchet \
                     with `cargo run -p harbor-lint -- --update-baseline`"
                ),
            }),
            _ => {}
        }
    }
    for k in baseline.keys() {
        if !current.contains_key(k) {
            out.push(Violation {
                file: "lint-baseline.toml".into(),
                line: 0,
                rule: RULE_RATCHET,
                msg: format!(
                    "baseline entry {k} no longer has any unwraps — tighten with \
                     `cargo run -p harbor-lint -- --update-baseline`"
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Workspace-graph analysis (pass 1 + pass 2) and the findings ratchet
// ---------------------------------------------------------------------------

/// Aggregate result of the full analysis: per-file rules plus the two
/// workspace-graph passes, and the allow-suppressed graph findings that
/// feed the `lint-findings.toml` ratchet.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    pub violations: Vec<Violation>,
    /// Non-test unwrap/expect counts keyed by crate directory.
    pub unwraps: BTreeMap<String, usize>,
    pub files_scanned: usize,
    /// rule → crate → count of findings suppressed by a reasoned allow.
    pub allowed_findings: BTreeMap<&'static str, BTreeMap<String, usize>>,
}

/// Runs everything over in-memory `(rel_path, source)` pairs — the same
/// entry the fixture corpus tests use, so tests and production share one
/// code path.
pub fn analyze_sources(sources: &[(String, String)]) -> WorkspaceReport {
    let mut report = WorkspaceReport::default();
    for (rel, src) in sources {
        let fr = analyze_source(rel, src);
        report.violations.extend(fr.violations);
        if fr.unwraps > 0 {
            *report.unwraps.entry(crate_key(rel)).or_insert(0) += fr.unwraps;
        }
        report.files_scanned += 1;
    }
    let idx = index::build(sources);
    let (lockset_viols, lockset_allowed) = lockset::check(&idx);
    report.violations.extend(lockset_viols);
    if !lockset_allowed.is_empty() {
        report
            .allowed_findings
            .insert(RULE_LOCKSET, lockset_allowed);
    }
    let (taint_viols, taint_allowed) = taint::check(&idx);
    report.violations.extend(taint_viols);
    if !taint_allowed.is_empty() {
        report.allowed_findings.insert(RULE_DEADLINE, taint_allowed);
    }
    report
}

/// Analyzes the workspace under `root` with all rule families.
pub fn analyze_workspace(root: &Path) -> std::io::Result<WorkspaceReport> {
    let mut sources = Vec::new();
    for path in collect_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, std::fs::read_to_string(&path)?));
    }
    Ok(analyze_sources(&sources))
}

/// Parses `lint-findings.toml`: `[allows.<rule>]` sections of
/// `"crate" = count` lines, mirroring the panic-ratchet file format.
pub fn parse_findings(text: &str) -> BTreeMap<String, BTreeMap<String, usize>> {
    let mut map: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
    let mut section: Option<String> = None;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = name.strip_prefix("allows.").map(str::to_string);
            continue;
        }
        let Some(rule) = &section else { continue };
        if let Some((k, v)) = line.split_once('=') {
            let key = k.trim().trim_matches('"').to_string();
            if let Ok(n) = v.trim().parse::<usize>() {
                map.entry(rule.clone()).or_default().insert(key, n);
            }
        }
    }
    map
}

/// Renders `lint-findings.toml`.
pub fn render_findings(map: &BTreeMap<&'static str, BTreeMap<String, usize>>) -> String {
    let mut out = String::from(
        "# harbor-lint findings ratchet: counts of workspace-graph findings\n\
         # (lockset-race, deadline-propagation) suppressed by a reasoned\n\
         # `// harbor-lint: allow(...)` per crate. Exact-match like the panic\n\
         # ratchet: a new suppressed finding AND a stale entry both fail CI.\n\
         # Regenerate with: cargo run -p harbor-lint -- --update-findings\n",
    );
    for (rule, counts) in map {
        out.push_str(&format!("\n[allows.{rule}]\n"));
        for (k, v) in counts {
            out.push_str(&format!("\"{k}\" = {v}\n"));
        }
    }
    out
}

/// Exact-match check of the measured suppressed-findings counts against the
/// committed `lint-findings.toml` (both directions, like the panic ratchet).
pub fn check_findings_ratchet(
    current: &BTreeMap<&'static str, BTreeMap<String, usize>>,
    committed: &BTreeMap<String, BTreeMap<String, usize>>,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let empty = BTreeMap::new();
    let mut rules: Vec<&str> = current.keys().copied().collect();
    for r in committed.keys() {
        if !rules.contains(&r.as_str()) {
            rules.push(r);
        }
    }
    rules.sort_unstable();
    for rule in rules {
        let cur = current
            .iter()
            .find(|(r, _)| ***r == *rule)
            .map(|(_, m)| m)
            .unwrap_or(&empty);
        let base = committed.get(rule).unwrap_or(&empty);
        for (k, n) in cur {
            match base.get(k) {
                None => out.push(Violation {
                    file: "lint-findings.toml".into(),
                    line: 0,
                    rule: RULE_RATCHET,
                    msg: format!(
                        "{k} has {n} allow-suppressed {rule} finding(s) but no entry in \
                         lint-findings.toml — run `cargo run -p harbor-lint -- --update-findings`"
                    ),
                }),
                Some(b) if n != b => out.push(Violation {
                    file: "lint-findings.toml".into(),
                    line: 0,
                    rule: RULE_RATCHET,
                    msg: format!(
                        "{k}: allow-suppressed {rule} findings changed {b} → {n}; \
                         regenerate with `cargo run -p harbor-lint -- --update-findings` \
                         so every suppression stays deliberate"
                    ),
                }),
                _ => {}
            }
        }
        for k in base.keys() {
            if !cur.contains_key(k) {
                out.push(Violation {
                    file: "lint-findings.toml".into(),
                    line: 0,
                    rule: RULE_RATCHET,
                    msg: format!(
                        "stale lint-findings.toml entry: {k} no longer has any \
                         allow-suppressed {rule} findings — regenerate with \
                         `cargo run -p harbor-lint -- --update-findings`"
                    ),
                });
            }
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Machine-readable report for `--json`: violations (including any ratchet
/// violations the caller appends first), unwrap counts, suppressed-finding
/// counts. Hand-rolled: the container is offline, no serde.
pub fn render_json(report: &WorkspaceReport, violations: &[Violation]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str("  \"violations\": [\n");
    for (i, v) in violations.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"msg\": \"{}\"}}{}\n",
            json_escape(&v.file),
            v.line,
            json_escape(v.rule),
            json_escape(&v.msg),
            if i + 1 < violations.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"unwraps\": {");
    let mut first = true;
    for (k, n) in &report.unwraps {
        if !first {
            out.push_str(", ");
        }
        first = false;
        out.push_str(&format!("\"{}\": {}", json_escape(k), n));
    }
    out.push_str("},\n");
    out.push_str("  \"allowed_findings\": {");
    let mut first_rule = true;
    for (rule, counts) in &report.allowed_findings {
        if !first_rule {
            out.push_str(", ");
        }
        first_rule = false;
        out.push_str(&format!("\"{}\": {{", json_escape(rule)));
        let mut first_k = true;
        for (k, n) in counts {
            if !first_k {
                out.push_str(", ");
            }
            first_k = false;
            out.push_str(&format!("\"{}\": {}", json_escape(k), n));
        }
        out.push('}');
    }
    out.push_str("}\n}\n");
    out
}
