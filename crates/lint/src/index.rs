//! Pass 1 of the workspace-graph analyzer: a cross-file index over every
//! workspace `.rs` file.
//!
//! The per-file rules in `lib.rs` see one token stream at a time; the two
//! graph rules ([`lockset`](crate::lockset), [`taint`](crate::taint)) need
//! facts that only exist across files: which structs are *shared-intent*
//! (carry a `Mutex`/`RwLock` field), which fields of those structs are
//! plain data, which guards are held at each access site, which functions
//! call which, where threads are spawned and what guards leak into them,
//! and which functions carry or consult a deadline. This module extracts
//! all of that from the same hand-rolled lexer — no type information, so
//! everything is name-based and deliberately conservative (see the
//! imprecision notes on [`WorkspaceIndex`]).

use crate::lexer::{lex, Allow, Token, TokenKind};
use crate::{is_test_path, statement_end, test_regions, BLOCKING_HELPERS, BLOCKING_METHODS};
use std::collections::{BTreeMap, BTreeSet};

/// Idents whose presence in a fn body counts as "consults the deadline":
/// the repo's deadline-carrying helpers plus the obvious budget vocabulary.
pub const DEADLINE_TOKENS: [&str; 14] = [
    "deadline",
    "deadline_ms",
    "budget",
    "remaining",
    "elapsed",
    "recv_timeout",
    "accept_timeout",
    "wait_for",
    "wait_until",
    "rpc_deadline",
    "rpc_liveness",
    "scan_rpc_deadline",
    "liveness_expired",
    "deadline_expired",
];

/// Loop-bounding vocabulary: a retry loop naming one of these is treating
/// attempts as finite even if we can't prove it.
const BOUND_TOKENS: [&str; 6] = [
    "attempt",
    "attempts",
    "retries",
    "max_retries",
    "tries",
    "backoff",
];

/// Mutating container methods: `x.field.push(…)` writes `field`.
const MUTATING_METHODS: [&str; 18] = [
    "push",
    "push_back",
    "push_front",
    "pop",
    "pop_front",
    "pop_back",
    "insert",
    "remove",
    "clear",
    "extend",
    "take",
    "replace",
    "drain",
    "append",
    "retain",
    "sort",
    "swap",
    "truncate",
];

const KEYWORDS: [&str; 26] = [
    "if", "while", "for", "match", "loop", "return", "let", "as", "in", "move", "fn", "impl",
    "struct", "enum", "mod", "use", "pub", "where", "unsafe", "ref", "mut", "else", "break",
    "continue", "crate", "super",
];

/// How a struct field's declared type classifies for the lockset rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FieldKind {
    /// `Mutex<_>` / `RwLock<_>` (possibly `Arc`-wrapped): a guard source.
    Lock,
    /// `Atomic*`: self-synchronizing, exempt.
    Atomic,
    /// Channel endpoints / condvars: synchronization plumbing, exempt.
    Sync,
    /// Everything else: plain data whose accesses need a consistent lockset.
    Plain,
}

#[derive(Clone, Debug)]
pub struct FieldDef {
    pub name: String,
    pub line: u32,
    pub kind: FieldKind,
}

#[derive(Clone, Debug)]
pub struct StructDef {
    pub name: String,
    pub file: String,
    pub line: u32,
    pub fields: Vec<FieldDef>,
    /// At least one `Lock` field: the struct is built to be shared across
    /// threads, so its plain fields are in scope for the lockset rule.
    pub shared_intent: bool,
    pub in_test: bool,
}

/// One call site inside a fn body (method or free call, name-based).
#[derive(Clone, Debug)]
pub struct CallSite {
    pub callee: String,
    pub line: u32,
}

/// One access to a tracked shared field.
#[derive(Clone, Debug)]
pub struct FieldAccess {
    pub field: String,
    pub line: u32,
    pub write: bool,
    /// Lock names (`let g = self.<lock>.lock()` binds lock name `<lock>`)
    /// held at this access. Guards from outside a spawned closure do NOT
    /// carry in: the closure runs on another thread.
    pub lockset: Vec<String>,
    pub in_spawn: bool,
}

/// A `thread::spawn`/`.spawn(` site and the guards still live around it.
#[derive(Clone, Debug)]
pub struct SpawnSite {
    pub line: u32,
    /// `(guard variable, lock name)` pairs held when the spawn executes.
    pub guards_held: Vec<(String, String)>,
}

/// An (often intentionally) infinite `loop` containing blocking work.
#[derive(Clone, Debug)]
pub struct LoopSite {
    pub line: u32,
    pub has_blocking: bool,
    /// `continue` inside the loop: the retry signature.
    pub has_continue: bool,
    /// Names a deadline/budget/attempt token: treated as bounded.
    pub consults_deadline: bool,
}

#[derive(Clone, Debug)]
pub struct FnDef {
    pub id: usize,
    pub name: String,
    /// Enclosing `impl` type, when inside one.
    pub qual: Option<String>,
    pub file: String,
    pub line: u32,
    pub crate_key: String,
    pub is_test: bool,
    /// A param named `deadline`/`budget` or typed `Instant`.
    pub has_deadline_param: bool,
    /// Body names any [`DEADLINE_TOKENS`] ident.
    pub mentions_deadline: bool,
    pub calls: Vec<CallSite>,
    /// Untimed `.recv()` sites.
    pub recv_sites: Vec<u32>,
    pub loops: Vec<LoopSite>,
    /// `.read_page(` / `.write_page(` sites.
    pub page_io: Vec<(String, u32)>,
    pub spawns: Vec<SpawnSite>,
    pub accesses: Vec<FieldAccess>,
}

/// The whole-workspace index: pass 1's output, pass 2's input.
///
/// Imprecision, by design (token-level, no types):
/// * Call edges are resolved by bare name — a call to `commit` taints every
///   fn named `commit`. A stoplist of ubiquitous names keeps this sane.
/// * Field accesses are attributed by field name; the lockset rule only
///   tracks names declared by exactly one struct workspace-wide.
/// * A lockset is the set of `let`-bound guards in scope, keyed by the name
///   of the locked field (`let g = self.roster.lock()` → holds `roster`).
#[derive(Debug, Default)]
pub struct WorkspaceIndex {
    pub fns: Vec<FnDef>,
    pub structs: Vec<StructDef>,
    /// Per-file resolved allow directives, for finding suppression.
    pub allows: BTreeMap<String, Vec<Allow>>,
}

impl WorkspaceIndex {
    /// `true` when an `allow(<rule>)` directive covers `file:line`.
    pub fn allowed(&self, file: &str, rule: &str, line: u32) -> bool {
        self.allows
            .get(file)
            .map(|a| a.iter().any(|x| x.rule == rule && x.line == line))
            .unwrap_or(false)
    }

    /// Plain fields of shared-intent structs whose name is declared by
    /// exactly one struct in the workspace (unambiguous attribution).
    pub fn tracked_fields(&self) -> BTreeMap<String, (String, String)> {
        let mut decl_count: BTreeMap<&str, usize> = BTreeMap::new();
        for s in &self.structs {
            for f in &s.fields {
                *decl_count.entry(f.name.as_str()).or_insert(0) += 1;
            }
        }
        let mut out = BTreeMap::new();
        for s in &self.structs {
            if !s.shared_intent || s.in_test {
                continue;
            }
            for f in &s.fields {
                if f.kind == FieldKind::Plain && decl_count[f.name.as_str()] == 1 {
                    out.insert(f.name.clone(), (s.name.clone(), s.file.clone()));
                }
            }
        }
        out
    }
}

fn tok_is(t: &Token, s: &str) -> bool {
    t.text == s
}

fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    tokens.len()
}

/// `impl` header ranges: `(body_start, body_end, type_name)`.
fn impl_ranges(tokens: &[Token]) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].kind == TokenKind::Ident && tok_is(&tokens[i], "impl") {
            // Header runs to the body `{` (or an aborting `;`).
            let mut j = i + 1;
            let mut angle = 0i32;
            let mut header: Vec<&Token> = Vec::new();
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "<" => angle += 1,
                    ">" => angle = (angle - 1).max(0),
                    "{" if angle == 0 => break,
                    ";" if angle == 0 => break,
                    _ => {}
                }
                if angle == 0 {
                    header.push(&tokens[j]);
                }
                j += 1;
            }
            if j < tokens.len() && tok_is(&tokens[j], "{") {
                // `impl Trait for Type` → Type; `impl Type` → first ident.
                let name = header
                    .iter()
                    .position(|t| tok_is(t, "for"))
                    .and_then(|p| header.get(p + 1))
                    .or_else(|| header.iter().find(|t| t.kind == TokenKind::Ident))
                    .map(|t| t.text.clone());
                let close = matching_brace(tokens, j);
                if let Some(name) = name {
                    out.push((j, close, name));
                }
                i = j + 1;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    out
}

fn classify_field_type(ty: &[&Token]) -> FieldKind {
    let mut kind = FieldKind::Plain;
    for t in ty {
        if t.kind != TokenKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "Mutex" | "RwLock" => return FieldKind::Lock,
            "Condvar" | "Sender" | "Receiver" | "SyncSender" | "Barrier" | "Once" => {
                kind = FieldKind::Sync;
            }
            s if s.starts_with("Atomic") => kind = FieldKind::Atomic,
            _ => {}
        }
    }
    kind
}

fn collect_structs(rel: &str, tokens: &[Token], in_test: &[bool], out: &mut Vec<StructDef>) {
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if !(tokens[i].kind == TokenKind::Ident
            && tok_is(&tokens[i], "struct")
            && tokens[i + 1].kind == TokenKind::Ident)
        {
            i += 1;
            continue;
        }
        let name = tokens[i + 1].text.clone();
        let line = tokens[i + 1].line;
        // Find the field-block `{`; bail on tuple structs / unit structs.
        let mut j = i + 2;
        let mut angle = 0i32;
        let mut body = None;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "<" => angle += 1,
                ">" => angle = (angle - 1).max(0),
                "(" | ";" if angle == 0 => break,
                "{" if angle == 0 => {
                    body = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body else {
            i = j.max(i + 1);
            continue;
        };
        let close = matching_brace(tokens, open);
        let mut fields = Vec::new();
        let mut k = open + 1;
        let mut depth = 0i32; // nesting *inside* the field block
        while k < close {
            match tokens[k].text.as_str() {
                "{" | "(" | "[" | "<" => depth += 1,
                "}" | ")" | "]" | ">" => depth -= 1,
                _ => {}
            }
            // A field: `name :` at block top level, not `::`.
            if depth == 0
                && tokens[k].kind == TokenKind::Ident
                && !tok_is(&tokens[k], "pub")
                && k + 1 < close
                && tok_is(&tokens[k + 1], ":")
                && !(k + 2 < close && tok_is(&tokens[k + 2], ":"))
                && !(k >= 1 && tok_is(&tokens[k - 1], ":"))
            {
                // Type runs to the `,` at depth 0 (or the block close).
                let mut t = k + 2;
                let mut tdepth = 0i32;
                let mut ty: Vec<&Token> = Vec::new();
                while t < close {
                    match tokens[t].text.as_str() {
                        "{" | "(" | "[" | "<" => tdepth += 1,
                        "}" | ")" | "]" | ">" => tdepth -= 1,
                        "," if tdepth <= 0 => break,
                        _ => {}
                    }
                    ty.push(&tokens[t]);
                    t += 1;
                }
                fields.push(FieldDef {
                    name: tokens[k].text.clone(),
                    line: tokens[k].line,
                    kind: classify_field_type(&ty),
                });
                k = t;
                continue;
            }
            k += 1;
        }
        let shared_intent = fields.iter().any(|f| f.kind == FieldKind::Lock);
        out.push(StructDef {
            name,
            file: rel.to_string(),
            line,
            fields,
            shared_intent,
            in_test: is_test_path(rel) || in_test.get(i).copied().unwrap_or(false),
        });
        i = open;
    }
}

/// A live guard inside a fn body walk.
struct LiveGuard {
    var: String,
    lock: String,
    depth: usize,
}

struct SpawnRegion {
    end: usize,
    /// Guards below this index in the stack belong to the spawning thread.
    guard_floor: usize,
}

/// Extracts the lock name from a guard-acquisition rhs: the last ident
/// before the final `.lock()`/`.read()`/`.write()` chain head.
fn rhs_lock_name(rhs: &[Token]) -> String {
    // Walk back from the end past `?`/`.unwrap()`/`.expect(…)` to the guard
    // method, then take the ident before its `.`.
    let mut k = rhs.len();
    while k > 0 {
        if rhs[k - 1].kind == TokenKind::Ident
            && matches!(rhs[k - 1].text.as_str(), "lock" | "read" | "write")
            && k >= 2
            && tok_is(&rhs[k - 2], ".")
        {
            if k >= 3 && rhs[k - 3].kind == TokenKind::Ident {
                return rhs[k - 3].text.clone();
            }
            return rhs[k - 1].text.clone();
        }
        k -= 1;
    }
    "?".to_string()
}

/// Finds the closure body `{ … }` of a spawn call whose argument list opens
/// at `open` (index of `(`). Returns the body's `(open, close)` brace span.
fn spawn_closure_body(tokens: &[Token], open: usize) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    let mut k = open;
    while k < tokens.len() {
        match tokens[k].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return None;
                }
            }
            "{" if depth >= 1 => {
                return Some((k, matching_brace(tokens, k)));
            }
            _ => {}
        }
        k += 1;
    }
    None
}

#[allow(clippy::too_many_arguments)]
fn walk_fn_body(
    def: &mut FnDef,
    tokens: &[Token],
    body_open: usize,
    body_close: usize,
    tracked_hint: &BTreeSet<String>,
) {
    let mut guards: Vec<LiveGuard> = Vec::new();
    let mut spawn_regions: Vec<SpawnRegion> = Vec::new();
    let mut depth = 0usize;
    let mut i = body_open;
    while i < body_close {
        let t = &tokens[i];

        // Leaving spawned-closure regions.
        spawn_regions.retain(|r| i < r.end);

        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
            }
            _ => {}
        }

        if t.kind == TokenKind::Ident {
            // Nested `fn` items get their own FnDef; skip their bodies here.
            if tok_is(t, "fn")
                && i > body_open
                && i + 1 < body_close
                && tokens[i + 1].kind == TokenKind::Ident
            {
                let mut j = i + 1;
                let mut parens = 0i32;
                while j < body_close {
                    match tokens[j].text.as_str() {
                        "(" => parens += 1,
                        ")" => parens -= 1,
                        ";" if parens == 0 => break,
                        "{" if parens == 0 => {
                            j = matching_brace(tokens, j);
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                i = j + 1;
                continue;
            }

            // `drop(name)` kills a guard early.
            if tok_is(t, "drop")
                && i + 3 < body_close
                && tok_is(&tokens[i + 1], "(")
                && tokens[i + 2].kind == TokenKind::Ident
                && tok_is(&tokens[i + 3], ")")
            {
                let name = &tokens[i + 2].text;
                guards.retain(|g| g.var != *name);
            }

            // `let [mut] name = <rhs ending in .lock()/.read()/.write()>;`
            if tok_is(t, "let")
                && !(i > 0 && (tok_is(&tokens[i - 1], "if") || tok_is(&tokens[i - 1], "while")))
            {
                if let Some(end) = statement_end(tokens, i) {
                    let mut j = i + 1;
                    if j < end && tok_is(&tokens[j], "mut") {
                        j += 1;
                    }
                    if j + 1 < end
                        && tokens[j].kind == TokenKind::Ident
                        && tok_is(&tokens[j + 1], "=")
                    {
                        let rhs = &tokens[j + 2..end];
                        if crate::rhs_is_guard_acquisition(rhs) {
                            guards.push(LiveGuard {
                                var: tokens[j].text.clone(),
                                lock: rhs_lock_name(rhs),
                                depth,
                            });
                        }
                    }
                }
            }

            // Spawn sites: `thread::spawn(`, `s.spawn(`, `Builder…spawn(`.
            let is_spawn = tok_is(t, "spawn")
                && i + 1 < body_close
                && tok_is(&tokens[i + 1], "(")
                && i >= 1
                && (tok_is(&tokens[i - 1], ".") || tok_is(&tokens[i - 1], ":"));
            if is_spawn {
                let held: Vec<(String, String)> = guards
                    .iter()
                    .map(|g| (g.var.clone(), g.lock.clone()))
                    .collect();
                def.spawns.push(SpawnSite {
                    line: t.line,
                    guards_held: held,
                });
                if let Some((_, close)) = spawn_closure_body(tokens, i + 1) {
                    spawn_regions.push(SpawnRegion {
                        end: close,
                        guard_floor: guards.len(),
                    });
                }
            }

            // `loop { … }` sites.
            if tok_is(t, "loop") && i + 1 < body_close && tok_is(&tokens[i + 1], "{") {
                let close = matching_brace(tokens, i + 1);
                let body = &tokens[i + 1..close.min(body_close)];
                let mut has_blocking = false;
                let mut has_continue = false;
                let mut consults = false;
                for (k, bt) in body.iter().enumerate() {
                    if bt.kind != TokenKind::Ident {
                        continue;
                    }
                    let s = bt.text.as_str();
                    if s == "continue" {
                        has_continue = true;
                    }
                    if DEADLINE_TOKENS.contains(&s) || BOUND_TOKENS.contains(&s) {
                        consults = true;
                    }
                    let called = k + 1 < body.len() && tok_is(&body[k + 1], "(");
                    if called
                        && (BLOCKING_METHODS.contains(&s) || BLOCKING_HELPERS.contains(&s))
                        && !(k >= 1 && tok_is(&body[k - 1], "fn"))
                    {
                        has_blocking = true;
                    }
                }
                def.loops.push(LoopSite {
                    line: t.line,
                    has_blocking,
                    has_continue,
                    consults_deadline: consults,
                });
            }

            // Deadline vocabulary anywhere in the body.
            if DEADLINE_TOKENS.contains(&t.text.as_str()) {
                def.mentions_deadline = true;
            }

            // Call sites: `name (` — method (`.name(`) or free/path call.
            if i + 1 < body_close
                && tok_is(&tokens[i + 1], "(")
                && !KEYWORDS.contains(&t.text.as_str())
                && !(i >= 1 && tok_is(&tokens[i - 1], "fn"))
            {
                def.calls.push(CallSite {
                    callee: t.text.clone(),
                    line: t.line,
                });
                // Untimed `.recv()` — empty argument list.
                if tok_is(t, "recv")
                    && i >= 1
                    && tok_is(&tokens[i - 1], ".")
                    && i + 2 < body_close
                    && tok_is(&tokens[i + 2], ")")
                {
                    def.recv_sites.push(t.line);
                }
                if (tok_is(t, "read_page") || tok_is(t, "write_page"))
                    && i >= 1
                    && tok_is(&tokens[i - 1], ".")
                {
                    def.page_io.push((t.text.clone(), t.line));
                }
            }

            // Tracked-field accesses: `. field` not followed by `(`.
            if i >= 1
                && tok_is(&tokens[i - 1], ".")
                && tracked_hint.contains(&t.text)
                && !(i + 1 < body_close && tok_is(&tokens[i + 1], "("))
            {
                let next = tokens.get(i + 1).map(|x| x.text.as_str()).unwrap_or("");
                let next2 = tokens.get(i + 2).map(|x| x.text.as_str()).unwrap_or("");
                let assign = next == "=" && next2 != "=" && next2 != ">";
                let compound =
                    matches!(next, "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^") && next2 == "=";
                let mutated = next == "."
                    && tokens
                        .get(i + 2)
                        .map(|m| MUTATING_METHODS.contains(&m.text.as_str()))
                        .unwrap_or(false)
                    && tokens.get(i + 3).map(|p| tok_is(p, "(")).unwrap_or(false);
                let in_spawn = !spawn_regions.is_empty();
                let floor = spawn_regions
                    .iter()
                    .map(|r| r.guard_floor)
                    .max()
                    .unwrap_or(0);
                let lockset: Vec<String> = guards
                    .iter()
                    .skip(if in_spawn { floor } else { 0 })
                    .map(|g| g.lock.clone())
                    .collect();
                def.accesses.push(FieldAccess {
                    field: t.text.clone(),
                    line: t.line,
                    write: assign || compound || mutated,
                    lockset,
                    in_spawn,
                });
            }
        }

        i += 1;
    }
}

fn collect_fns(
    rel: &str,
    tokens: &[Token],
    in_test: &[bool],
    impls: &[(usize, usize, String)],
    tracked_hint: &BTreeSet<String>,
    next_id: &mut usize,
    out: &mut Vec<FnDef>,
) {
    let file_is_test = is_test_path(rel);
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if !(tokens[i].kind == TokenKind::Ident
            && tok_is(&tokens[i], "fn")
            && tokens[i + 1].kind == TokenKind::Ident)
        {
            i += 1;
            continue;
        }
        let name = tokens[i + 1].text.clone();
        let line = tokens[i + 1].line;

        // Params: the `(`…`)` after the name (skipping generics).
        let mut j = i + 2;
        let mut angle = 0i32;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "<" => angle += 1,
                ">" => angle = (angle - 1).max(0),
                "(" if angle == 0 => break,
                "{" | ";" if angle == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if j >= tokens.len() || !tok_is(&tokens[j], "(") {
            i += 1;
            continue;
        }
        let params_open = j;
        let mut parens = 0i32;
        let mut params_close = j;
        while params_close < tokens.len() {
            match tokens[params_close].text.as_str() {
                "(" => parens += 1,
                ")" => {
                    parens -= 1;
                    if parens == 0 {
                        break;
                    }
                }
                _ => {}
            }
            params_close += 1;
        }

        // Body `{` (or `;` for a signature-only decl).
        let mut k = params_close + 1;
        let mut body = None;
        let mut kparens = 0i32;
        while k < tokens.len() {
            match tokens[k].text.as_str() {
                "(" => kparens += 1,
                ")" => kparens -= 1,
                ";" if kparens == 0 => break,
                "{" if kparens == 0 => {
                    body = Some(k);
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let Some(body_open) = body else {
            i = k.max(i + 1);
            continue;
        };
        let body_close = matching_brace(tokens, body_open);

        let params = &tokens[params_open..=params_close.min(tokens.len() - 1)];
        let has_deadline_param = params.iter().any(|p| {
            p.kind == TokenKind::Ident
                && matches!(p.text.as_str(), "deadline" | "budget" | "Instant")
        });

        let qual = impls
            .iter()
            .find(|(s, e, _)| *s < i && i < *e)
            .map(|(_, _, n)| n.clone());

        let mut def = FnDef {
            id: *next_id,
            name,
            qual,
            file: rel.to_string(),
            line,
            crate_key: crate::crate_key(rel),
            is_test: file_is_test || in_test.get(i).copied().unwrap_or(false),
            has_deadline_param,
            mentions_deadline: false,
            calls: Vec::new(),
            recv_sites: Vec::new(),
            loops: Vec::new(),
            page_io: Vec::new(),
            spawns: Vec::new(),
            accesses: Vec::new(),
        };
        *next_id += 1;
        walk_fn_body(&mut def, tokens, body_open, body_close, tracked_hint);
        out.push(def);

        i = body_open + 1; // descend: nested fns found by the scan itself
    }
}

/// Builds the index over `(rel_path, source)` pairs. Two passes: structs
/// first (every file), then fn bodies with the full shared-field set known.
pub fn build(sources: &[(String, String)]) -> WorkspaceIndex {
    let mut idx = WorkspaceIndex::default();
    let mut lexed = Vec::with_capacity(sources.len());
    for (rel, src) in sources {
        let lx = lex(src);
        let in_test = test_regions(&lx.tokens);
        collect_structs(rel, &lx.tokens, &in_test, &mut idx.structs);
        if !lx.allows.is_empty() {
            idx.allows.insert(rel.clone(), lx.allows.clone());
        }
        lexed.push((rel, lx, in_test));
    }
    // The hint set for access scanning: every plain field of a shared
    // struct (uniqueness is re-checked by the lockset rule).
    let tracked_hint: BTreeSet<String> = idx
        .structs
        .iter()
        .filter(|s| s.shared_intent)
        .flat_map(|s| s.fields.iter())
        .filter(|f| f.kind == FieldKind::Plain)
        .map(|f| f.name.clone())
        .collect();
    let mut next_id = 0usize;
    for (rel, lx, in_test) in &lexed {
        let impls = impl_ranges(&lx.tokens);
        collect_fns(
            rel,
            &lx.tokens,
            in_test,
            &impls,
            &tracked_hint,
            &mut next_id,
            &mut idx.fns,
        );
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_one(rel: &str, src: &str) -> WorkspaceIndex {
        build(&[(rel.to_string(), src.to_string())])
    }

    #[test]
    fn structs_classify_fields() {
        let idx = build_one(
            "crates/x/src/lib.rs",
            "pub struct S { roster: Mutex<Vec<u32>>, hint: u64, n: AtomicUsize, tx: Sender<u8> }",
        );
        let s = &idx.structs[0];
        assert!(s.shared_intent);
        let kinds: Vec<_> = s.fields.iter().map(|f| (f.name.as_str(), f.kind)).collect();
        assert_eq!(
            kinds,
            vec![
                ("roster", FieldKind::Lock),
                ("hint", FieldKind::Plain),
                ("n", FieldKind::Atomic),
                ("tx", FieldKind::Sync),
            ]
        );
    }

    #[test]
    fn fn_index_records_calls_recv_and_deadline() {
        let idx = build_one(
            "crates/x/src/lib.rs",
            r#"
            impl S {
                fn fetch(&self, deadline: Instant) -> u32 {
                    let v = self.chan.recv();
                    helper(deadline);
                    v
                }
            }
            fn helper(deadline: Instant) {}
            "#,
        );
        let fetch = idx.fns.iter().find(|f| f.name == "fetch").unwrap();
        assert_eq!(fetch.qual.as_deref(), Some("S"));
        assert!(fetch.has_deadline_param);
        assert!(fetch.mentions_deadline);
        assert_eq!(fetch.recv_sites.len(), 1);
        assert!(fetch.calls.iter().any(|c| c.callee == "helper"));
    }

    #[test]
    fn locksets_reset_inside_spawn_closures() {
        let src = r#"
        struct S { roster: Mutex<u32>, hint: u64 }
        impl S {
            fn outside(&self) {
                let g = self.roster.lock();
                self.hint = 1;
                std::thread::spawn(move || {
                    self.hint = 2;
                });
            }
        }
        "#;
        let idx = build_one("crates/x/src/lib.rs", src);
        let f = idx.fns.iter().find(|f| f.name == "outside").unwrap();
        assert_eq!(f.accesses.len(), 2);
        assert_eq!(f.accesses[0].lockset, vec!["roster".to_string()]);
        assert!(!f.accesses[0].in_spawn);
        assert!(f.accesses[1].lockset.is_empty(), "{:?}", f.accesses[1]);
        assert!(f.accesses[1].in_spawn);
        assert_eq!(f.spawns.len(), 1);
        assert_eq!(f.spawns[0].guards_held.len(), 1);
    }

    #[test]
    fn loop_sites_classify_retry_shape() {
        let src = r#"
        fn retry_forever(chan: &C) -> u32 {
            loop {
                match chan.recv_blocking() { _ => continue }
            }
        }
        fn bounded(chan: &C, deadline: Instant) -> u32 {
            loop {
                if deadline_expired(deadline) { break 0; }
                match chan.send(1) { _ => continue }
            }
        }
        "#;
        let idx = build_one("crates/x/src/lib.rs", src);
        let f = idx.fns.iter().find(|f| f.name == "retry_forever").unwrap();
        assert!(f.loops[0].has_continue && !f.loops[0].consults_deadline);
        let g = idx.fns.iter().find(|f| f.name == "bounded").unwrap();
        assert!(g.loops[0].consults_deadline && g.loops[0].has_blocking);
    }
}
