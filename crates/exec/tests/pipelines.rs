//! Operator pipelines over real stored tables: joins across heaps,
//! aggregation over historical snapshots, and mixed mode scans — the
//! "distributed query" shapes of §6.1.5 run locally.

use harbor_common::{FieldType, SiteId, StorageConfig, Timestamp, TransactionId, Value};
use harbor_engine::{Engine, EngineOptions, StepLogging};
use harbor_exec::{
    collect, AggFunc, AggSpec, Expr, Filter, HashAggregate, NestedLoopsJoin, Operator, Project,
    ReadMode, SeqScan,
};
use std::path::PathBuf;
use std::sync::Arc;

fn setup(name: &str) -> (Arc<Engine>, PathBuf) {
    let dir = std::env::temp_dir()
        .join("harbor-pipeline-tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let e = Engine::open(
        &dir,
        EngineOptions::harbor(SiteId(0), StorageConfig::for_tests()),
    )
    .unwrap();
    (e, dir)
}

fn tid(n: u64) -> TransactionId {
    TransactionId::from_parts(SiteId(0), n)
}

/// Enough rows to span several of the tiny test segments.
const N_ORDERS: i64 = 600;

/// orders(id, customer, amount) + customers(id, region).
fn load_star_schema(e: &Engine) -> (harbor_common::TableId, harbor_common::TableId) {
    let orders = e
        .create_table(
            "orders",
            vec![
                ("id".into(), FieldType::Int64),
                ("customer".into(), FieldType::Int32),
                ("amount".into(), FieldType::Int32),
            ],
        )
        .unwrap();
    let customers = e
        .create_table(
            "customers",
            vec![
                ("id".into(), FieldType::Int64),
                ("region".into(), FieldType::Int32),
            ],
        )
        .unwrap();
    let t = tid(1);
    e.begin(t).unwrap();
    for c in 0..8i64 {
        e.insert(
            t,
            customers.id,
            vec![Value::Int64(c), Value::Int32((c % 3) as i32)],
        )
        .unwrap();
    }
    for o in 0..N_ORDERS {
        e.insert(
            t,
            orders.id,
            vec![
                Value::Int64(o),
                Value::Int32((o % 8) as i32),
                Value::Int32((o * 7 % 50) as i32),
            ],
        )
        .unwrap();
    }
    e.commit(t, Timestamp(2), StepLogging::OFF).unwrap();
    (orders.id, customers.id)
}

#[test]
fn join_orders_to_customers_and_aggregate_by_region() {
    let (e, dir) = setup("join-agg");
    let (orders, customers) = load_star_schema(&e);
    let now = Timestamp(2);
    // orders stored: [ins, del, id, customer, amount] (cols 0..5)
    // customers stored: [ins, del, id, region]       (cols 5..9 in join)
    let o_scan = SeqScan::new(e.pool().clone(), orders, ReadMode::Historical(now)).unwrap();
    let c_scan = SeqScan::new(e.pool().clone(), customers, ReadMode::Historical(now)).unwrap();
    // JOIN ON orders.customer = customers.id
    let join = NestedLoopsJoin::new(
        Box::new(o_scan),
        Box::new(c_scan),
        Expr::col(3).eq(Expr::col(7)),
    );
    // SELECT region, SUM(amount), COUNT(*) GROUP BY region
    let mut agg = HashAggregate::new(
        Box::new(join),
        vec![Expr::col(8)],
        vec![
            AggSpec::new(AggFunc::Sum, Expr::col(4), "revenue"),
            AggSpec::new(AggFunc::Count, Expr::col(2), "orders"),
        ],
    );
    let mut rows = collect(&mut agg).unwrap();
    rows.sort_by_key(|t| t.get(0).as_i64().unwrap());
    assert_eq!(rows.len(), 3, "three regions");
    let total_orders: i64 = rows.iter().map(|r| r.get(2).as_i64().unwrap()).sum();
    assert_eq!(total_orders, N_ORDERS, "every order joined exactly once");
    // Cross-check one region against a straight computation.
    let expected_r0: i64 = (0..N_ORDERS)
        .filter(|o| (o % 8) % 3 == 0)
        .map(|o| o * 7 % 50)
        .sum();
    assert_eq!(rows[0].get(1).as_i64().unwrap(), expected_r0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn historical_aggregate_is_stable_across_later_updates() {
    let (e, dir) = setup("hist-agg");
    let (orders, _) = load_star_schema(&e);
    let snapshot = Timestamp(2);
    let sum_at = |t: Timestamp| -> i64 {
        let scan = SeqScan::new(e.pool().clone(), orders, ReadMode::Historical(t)).unwrap();
        let mut agg = HashAggregate::new(
            Box::new(scan),
            vec![],
            vec![AggSpec::new(AggFunc::Sum, Expr::col(4), "s")],
        );
        collect(&mut agg).unwrap()[0].get(0).as_i64().unwrap()
    };
    let before = sum_at(snapshot);
    // Delete a slice of orders.
    let t = tid(2);
    e.begin(t).unwrap();
    harbor_exec::run_delete(&e, t, orders, &Expr::col(4).ge(Expr::lit(40))).unwrap();
    e.commit(t, Timestamp(5), StepLogging::OFF).unwrap();
    assert_eq!(sum_at(snapshot), before, "old snapshot is immutable");
    assert!(sum_at(Timestamp(5)) < before);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn filter_project_over_segmented_table() {
    let (e, dir) = setup("filter-proj");
    let (orders, _) = load_star_schema(&e);
    // The tiny test segments mean the 100 orders span several segments.
    let table = e.pool().table(orders).unwrap();
    assert!(table.num_segments() >= 2, "workload should span segments");
    let scan = SeqScan::new(e.pool().clone(), orders, ReadMode::Historical(Timestamp(2))).unwrap();
    let filter = Filter::new(Box::new(scan), Expr::col(4).lt(Expr::lit(10)));
    let mut proj = Project::new(Box::new(filter), vec![2, 4]);
    proj.open().unwrap();
    let mut n = 0;
    while let Some(t) = proj.next().unwrap() {
        assert_eq!(t.len(), 2);
        assert!(t.get(1).as_i64().unwrap() < 10);
        n += 1;
    }
    let expected = (0..N_ORDERS).filter(|o| o * 7 % 50 < 10).count();
    assert_eq!(n, expected);
    // Rewind replays identically.
    proj.rewind().unwrap();
    let again = collect(&mut proj).unwrap().len();
    assert_eq!(again, expected);
    let _ = std::fs::remove_dir_all(&dir);
}
