//! Equivalence properties for the batched, late-materializing read path.
//!
//! The overhaul changed *when* visibility runs (on raw timestamps, before
//! decoding) and *how* admitted rows reach the wire (transcoded straight
//! from page bytes). Neither is allowed to change *what* a scan returns:
//!
//! 1. For every `ReadMode`, every segment bound, and any mix of live /
//!    deleted / uncommitted / future-masked tuples, the batched `SeqScan`
//!    must yield exactly the tuples the legacy decode-everything-then-
//!    filter scan yields — same values, same order within a page, same
//!    masked-deletion rewriting.
//! 2. The zero-copy wire transcode of an admitted row must be byte-
//!    identical to materializing the tuple (with its masked deletion) and
//!    running the legacy `write_wire` encoder.

use harbor_common::codec::{Decoder, Encoder};
use harbor_common::tuple::{raw_version_timestamps, transcode_fixed_to_wire};
use harbor_common::{
    FieldType, SiteId, StorageConfig, TableId, Timestamp, TransactionId, Tuple, Value,
};
use harbor_engine::{Engine, EngineOptions};
use harbor_exec::{
    admit_chunk, collect, index_lookup, op::Operator, Admission, ParallelSeqScan, ReadMode, SeqScan,
};
use harbor_storage::{BufferPool, ScanBounds};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Insertion times: committed small values plus in-flight (uncommitted).
fn ins_ts() -> impl Strategy<Value = Timestamp> {
    prop_oneof![
        (1u64..=40).prop_map(Timestamp),
        Just(Timestamp::UNCOMMITTED),
    ]
}

/// Deletion times: mostly live, sometimes deleted at a small time (which a
/// historical mode with an earlier time must mask back to "not deleted").
fn del_ts() -> impl Strategy<Value = Timestamp> {
    prop_oneof![Just(Timestamp::ZERO), (1u64..=40).prop_map(Timestamp),]
}

/// One stored row: version pair plus user payload (ASCII so the fixed-str
/// round trip is exact).
#[allow(clippy::type_complexity)]
fn rows() -> impl Strategy<Value = Vec<(Timestamp, Timestamp, i32, String)>> {
    proptest::collection::vec(
        (
            ins_ts(),
            del_ts(),
            any::<i32>(),
            proptest::collection::vec(0x20u8..0x7f, 0..=12)
                .prop_map(|b| String::from_utf8(b).unwrap()),
        ),
        1..200,
    )
}

fn bounds() -> impl Strategy<Value = ScanBounds> {
    (
        proptest::option::of(0u64..=45),
        proptest::option::of(0u64..=45),
        proptest::option::of(0u64..=45),
    )
        .prop_map(|(at_or_before, after, del_after)| ScanBounds {
            ins_at_or_before: at_or_before.map(Timestamp),
            ins_after: after.map(Timestamp),
            del_after: del_after.map(Timestamp),
            ..ScanBounds::all()
        })
}

/// Builds a one-table engine holding exactly `rows`, written with raw
/// timestamps (bypassing commit-time validation so uncommitted and
/// already-deleted rows land on pages like they do mid-flight).
fn build(
    rows: &[(Timestamp, Timestamp, i32, String)],
) -> (Arc<Engine>, TableId, std::path::PathBuf) {
    build_mod(rows, i64::MAX)
}

/// Like [`build`], but keys wrap at `modulus` so the same tuple id appears
/// in several versions (exercising multi-version index probes).
fn build_mod(
    rows: &[(Timestamp, Timestamp, i32, String)],
    modulus: i64,
) -> (Arc<Engine>, TableId, std::path::PathBuf) {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join("harbor-scan-equiv").join(format!(
        "{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let e = Engine::open(
        &dir,
        EngineOptions::harbor(SiteId(0), StorageConfig::for_tests()),
    )
    .unwrap();
    let def = e
        .create_table(
            "t",
            vec![
                ("id".into(), FieldType::Int64),
                ("v".into(), FieldType::Int32),
                ("pad".into(), FieldType::FixedStr(12)),
            ],
        )
        .unwrap();
    let desc = e.pool().table(def.id).unwrap().desc().clone();
    for (i, (ins, del, v, pad)) in rows.iter().enumerate() {
        let tup = Tuple::versioned(
            *ins,
            *del,
            vec![
                Value::Int64((i as i64) % modulus),
                Value::Int32(*v),
                Value::Str(pad.clone()),
            ],
        );
        let mut enc = Encoder::new();
        tup.write_fixed(&desc, &mut enc).unwrap();
        e.pool()
            .insert_tuple_bytes(None, def.id, enc.as_slice())
            .unwrap();
    }
    (e, def.id, dir)
}

/// The pre-overhaul read path, reconstructed: decode every slot first, then
/// apply the mode's visibility rule to the decoded timestamps.
fn legacy_scan(
    pool: &Arc<BufferPool>,
    table: TableId,
    mode: ReadMode,
    bounds: &ScanBounds,
) -> Vec<Tuple> {
    let heap = pool.table(table).unwrap();
    let desc = heap.desc().clone();
    let mut pages = Vec::new();
    for (seg, _) in heap.prune(bounds) {
        pages.extend(heap.segment_page_ids(seg));
    }
    let mut out = Vec::new();
    for pid in pages {
        pool.with_page(mode.lock_tid(), pid, |page| {
            for slot in page.occupied_slots() {
                let mut dec = Decoder::new(page.read(slot)?);
                let tup = Tuple::read_fixed(&desc, &mut dec)?;
                let ins = tup.insertion_ts()?;
                let del = tup.deletion_ts()?;
                if let Some(masked) = mode.admit(ins, del) {
                    let mut tup = tup;
                    if masked != del {
                        tup.set_deletion_ts(masked);
                    }
                    out.push(tup);
                }
            }
            Ok(())
        })
        .unwrap();
    }
    out
}

/// Wire bytes of a scan result under the legacy materialize-then-encode
/// scheme, for byte-level comparison.
fn wire_bytes(tuples: &[Tuple]) -> Vec<u8> {
    let mut enc = Encoder::new();
    for t in tuples {
        t.write_wire(&mut enc);
    }
    enc.into_bytes()
}

fn all_modes(hist_t: u64) -> Vec<ReadMode> {
    let tid = TransactionId::from_parts(SiteId(0), 7777);
    vec![
        ReadMode::Current(tid),
        ReadMode::Historical(Timestamp(hist_t)),
        ReadMode::SeeDeleted,
        ReadMode::SeeDeletedLocked(tid),
        ReadMode::SeeDeletedHistorical(Timestamp(hist_t)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn batched_scan_matches_legacy_for_every_mode(
        rows in rows(),
        hist_t in 0u64..=45,
        bounds in bounds(),
    ) {
        let (e, table, dir) = build(&rows);
        let pool = e.pool().clone();
        for mode in all_modes(hist_t) {
            let expected = legacy_scan(&pool, table, mode, &bounds);
            let mut scan =
                SeqScan::with_bounds(pool.clone(), table, mode, bounds).unwrap();
            let got = collect(&mut scan).unwrap();
            prop_assert_eq!(&expected, &got, "mode {:?}", mode);
            prop_assert_eq!(
                wire_bytes(&expected),
                wire_bytes(&got),
                "wire bytes diverged under {:?}",
                mode
            );
            e.locks().release_all(TransactionId::from_parts(SiteId(0), 7777));
        }
        drop((e, pool));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn next_shim_matches_batched_drain(rows in rows(), hist_t in 0u64..=45) {
        let (e, table, dir) = build(&rows);
        let pool = e.pool().clone();
        for mode in [
            ReadMode::SeeDeleted,
            ReadMode::Historical(Timestamp(hist_t)),
        ] {
            let mut batched = SeqScan::new(pool.clone(), table, mode).unwrap();
            let via_batch = collect(&mut batched).unwrap();
            let mut one = SeqScan::new(pool.clone(), table, mode).unwrap();
            one.open().unwrap();
            let mut via_next = Vec::new();
            while let Some(t) = one.next().unwrap() {
                via_next.push(t);
            }
            one.close();
            prop_assert_eq!(via_batch, via_next);
        }
        drop((e, pool));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The branch-free chunk kernel ≡ the scalar `admit` rule, lane for
    /// lane, for every mode: same admission bit, and the zero-mask yields
    /// exactly the masked deletion timestamp the scalar path computes.
    #[test]
    fn chunk_kernel_matches_scalar_admit(
        pairs in proptest::collection::vec((ins_ts(), del_ts()), 64),
        occ in any::<u64>(),
        hist_t in 0u64..=45,
    ) {
        let mut ins = [0u64; 64];
        let mut del = [0u64; 64];
        for (i, (a, b)) in pairs.iter().enumerate() {
            ins[i] = a.0;
            del[i] = b.0;
        }
        for mode in all_modes(hist_t) {
            let (admit, zero) = admit_chunk(&mode, occ, &ins, &del);
            for lane in 0..64 {
                let occupied = occ >> lane & 1 == 1;
                let a = admit >> lane & 1 == 1;
                let scalar = mode.admit(Timestamp(ins[lane]), Timestamp(del[lane]));
                if !occupied {
                    prop_assert!(!a, "lane {} admitted while vacant ({:?})", lane, mode);
                    prop_assert!(zero >> lane & 1 == 0);
                    continue;
                }
                prop_assert_eq!(a, scalar.is_some(), "lane {} under {:?}", lane, mode);
                if let Some(masked) = scalar {
                    let kernel_masked = if zero >> lane & 1 == 1 {
                        Timestamp::ZERO
                    } else {
                        Timestamp(del[lane])
                    };
                    prop_assert_eq!(kernel_masked, masked, "mask lane {} under {:?}", lane, mode);
                }
            }
        }
    }

    /// Explicit operator-level check on top of the kernel property: a scan
    /// forced down the chunked path returns exactly what the scalar
    /// admission path returns, for every mode and bound.
    #[test]
    fn chunked_scan_matches_scalar_scan(
        rows in rows(),
        hist_t in 0u64..=45,
        bounds in bounds(),
    ) {
        let (e, table, dir) = build(&rows);
        let pool = e.pool().clone();
        for mode in all_modes(hist_t) {
            let mut scalar = SeqScan::with_bounds(pool.clone(), table, mode, bounds)
                .unwrap()
                .with_admission(Admission::Scalar);
            let expected = collect(&mut scalar).unwrap();
            let mut chunked = SeqScan::with_bounds(pool.clone(), table, mode, bounds)
                .unwrap()
                .with_admission(Admission::Chunked);
            let got = collect(&mut chunked).unwrap();
            prop_assert_eq!(&expected, &got, "admission paths diverged under {:?}", mode);
            e.locks().release_all(TransactionId::from_parts(SiteId(0), 7777));
        }
        drop((e, pool));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The partitioned scan ≡ the single-threaded scan: same rows in the
    /// same order (the merge drains partitions in page order), for every
    /// mode, bound, and worker count.
    #[test]
    fn parallel_scan_matches_serial(
        rows in rows(),
        hist_t in 0u64..=45,
        bounds in bounds(),
        workers in 2usize..=4,
    ) {
        let (e, table, dir) = build(&rows);
        let pool = e.pool().clone();
        for mode in all_modes(hist_t) {
            let mut serial = SeqScan::with_bounds(pool.clone(), table, mode, bounds).unwrap();
            let expected = collect(&mut serial).unwrap();
            e.locks().release_all(TransactionId::from_parts(SiteId(0), 7777));
            let mut par =
                ParallelSeqScan::with_bounds(pool.clone(), table, mode, bounds, workers).unwrap();
            let got = collect(&mut par).unwrap();
            prop_assert_eq!(
                &expected, &got,
                "parallel({}) diverged under {:?}", workers, mode
            );
            e.locks().release_all(TransactionId::from_parts(SiteId(0), 7777));
        }
        drop((e, pool));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Index point reads ≡ full scan + key filter, for present, absent,
    /// multi-version, deleted and uncommitted keys, under every mode. The
    /// rows land behind the engine's back, so the first probe exercises the
    /// lazy batched rebuild too.
    #[test]
    fn index_reads_match_scan_filter(rows in rows(), hist_t in 0u64..=45) {
        let (e, table, dir) = build_mod(&rows, 8);
        e.index(table).unwrap().invalidate();
        let pool = e.pool().clone();
        let rebuilds_before = pool.metrics().snapshot().index_rebuilds;
        for mode in all_modes(hist_t) {
            for key in [0i64, 3, 7, 8, -1, 100] {
                let mut expected: Vec<Tuple> = legacy_scan(&pool, table, mode, &ScanBounds::all())
                    .into_iter()
                    .filter(|t| t.get(2) == &Value::Int64(key))
                    .collect();
                let mut got: Vec<Tuple> = index_lookup(&e, table, key, mode)
                    .unwrap()
                    .into_iter()
                    .map(|(_, t)| t)
                    .collect();
                // Index probes return record-id order, the scan page order:
                // compare as multisets.
                expected.sort_by_key(|t| wire_bytes(std::slice::from_ref(t)));
                got.sort_by_key(|t| wire_bytes(std::slice::from_ref(t)));
                prop_assert_eq!(&expected, &got, "key {} under {:?}", key, mode);
                e.locks().release_all(TransactionId::from_parts(SiteId(0), 7777));
            }
        }
        prop_assert!(
            pool.metrics().snapshot().index_rebuilds > rebuilds_before,
            "cold probe must have rebuilt the index"
        );
        drop((e, pool));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Zero-copy transcode ≡ materialize + `write_wire`, byte for byte,
    /// including the masked deletion override.
    #[test]
    fn zero_copy_transcode_matches_materialized_wire(
        rows in rows(),
        hist_t in 0u64..=45,
    ) {
        let (e, table, dir) = build(&rows);
        let pool = e.pool().clone();
        let heap = pool.table(table).unwrap();
        let desc = heap.desc().clone();
        for mode in all_modes(hist_t) {
            let mut pages = Vec::new();
            for (seg, _) in heap.prune(&ScanBounds::all()) {
                pages.extend(heap.segment_page_ids(seg));
            }
            for pid in pages {
                pool.with_page(mode.lock_tid(), pid, |page| {
                    for slot in page.occupied_slots() {
                        let bytes = page.read(slot)?;
                        let (ins, del) = raw_version_timestamps(bytes)?;
                        let Some(masked) = mode.admit(ins, del) else {
                            continue;
                        };
                        let mut zero_copy = Encoder::new();
                        transcode_fixed_to_wire(&desc, bytes, masked, &mut zero_copy)?;
                        let mut dec = Decoder::new(bytes);
                        let mut tup = Tuple::read_fixed(&desc, &mut dec)?;
                        if masked != del {
                            tup.set_deletion_ts(masked);
                        }
                        let mut materialized = Encoder::new();
                        tup.write_wire(&mut materialized);
                        assert_eq!(
                            zero_copy.as_slice(),
                            materialized.as_slice(),
                            "transcode bytes diverged at {pid:?} slot {slot}"
                        );
                    }
                    Ok(())
                })
                .unwrap();
            }
            e.locks().release_all(TransactionId::from_parts(SiteId(0), 7777));
        }
        drop((e, pool));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
