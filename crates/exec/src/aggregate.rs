//! Hash-based grouping and aggregation (thesis §6.1.5: "aggregations with
//! in-memory hash-based grouping").

use crate::expr::Expr;
use crate::op::Operator;
use harbor_common::{DbError, DbResult, FieldType, Tuple, TupleDesc, Value};
use std::collections::HashMap;

/// Aggregate functions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

/// One aggregate: a function over an expression.
#[derive(Clone, Debug)]
pub struct AggSpec {
    pub func: AggFunc,
    pub input: Expr,
    pub name: String,
}

impl AggSpec {
    pub fn new(func: AggFunc, input: Expr, name: &str) -> Self {
        AggSpec {
            func,
            input,
            name: name.to_string(),
        }
    }
}

#[derive(Clone, Debug, Default)]
struct AggState {
    count: i64,
    sum: i64,
    min: Option<Value>,
    max: Option<Value>,
}

impl AggState {
    fn update(&mut self, v: &Value) -> DbResult<()> {
        self.count += 1;
        if let Ok(n) = v.as_i64() {
            self.sum = self.sum.wrapping_add(n);
        }
        match &self.min {
            Some(m) if m.total_cmp(v) != std::cmp::Ordering::Greater => {}
            _ => self.min = Some(v.clone()),
        }
        match &self.max {
            Some(m) if m.total_cmp(v) != std::cmp::Ordering::Less => {}
            _ => self.max = Some(v.clone()),
        }
        Ok(())
    }

    fn finish(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Count => Value::Int64(self.count),
            AggFunc::Sum => Value::Int64(self.sum),
            AggFunc::Min => self.min.clone().unwrap_or(Value::Int64(0)),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Int64(0)),
            AggFunc::Avg => Value::Int64(if self.count == 0 {
                0
            } else {
                self.sum / self.count
            }),
        }
    }
}

/// Hash aggregation over an input operator. Output rows are
/// `group-by keys ++ aggregates`, in unspecified group order.
pub struct HashAggregate {
    input: Box<dyn Operator>,
    group_by: Vec<Expr>,
    aggs: Vec<AggSpec>,
    desc: TupleDesc,
    results: Vec<Tuple>,
    at: usize,
    materialized: bool,
}

impl HashAggregate {
    pub fn new(input: Box<dyn Operator>, group_by: Vec<Expr>, aggs: Vec<AggSpec>) -> Self {
        let mut fields: Vec<(String, FieldType)> = Vec::new();
        for (i, _) in group_by.iter().enumerate() {
            fields.push((format!("g{i}"), FieldType::Int64));
        }
        for a in &aggs {
            fields.push((a.name.clone(), FieldType::Int64));
        }
        let desc = TupleDesc::new(fields.iter().map(|(n, t)| (n.as_str(), *t)).collect());
        HashAggregate {
            input,
            group_by,
            aggs,
            desc,
            results: Vec::new(),
            at: 0,
            materialized: false,
        }
    }

    fn materialize(&mut self) -> DbResult<()> {
        self.input.open()?;
        // Group key -> (key values, per-agg state).
        let mut groups: HashMap<Vec<u8>, (Vec<Value>, Vec<AggState>)> = HashMap::new();
        while let Some(t) = self.input.next()? {
            let mut key_vals = Vec::with_capacity(self.group_by.len());
            let mut key_bytes = Vec::new();
            for g in &self.group_by {
                let v = g.eval(&t)?;
                key_bytes.extend_from_slice(format!("{v}\0").as_bytes());
                key_vals.push(v);
            }
            let entry = groups
                .entry(key_bytes)
                .or_insert_with(|| (key_vals, vec![AggState::default(); self.aggs.len()]));
            for (i, spec) in self.aggs.iter().enumerate() {
                let v = spec.input.eval(&t)?;
                entry.1[i].update(&v)?;
            }
        }
        self.input.close();
        // A global aggregate (no GROUP BY) over zero rows yields one row of
        // zero-valued aggregates, like SQL COUNT.
        if groups.is_empty() && self.group_by.is_empty() {
            groups.insert(
                Vec::new(),
                (Vec::new(), vec![AggState::default(); self.aggs.len()]),
            );
        }
        self.results = groups
            .into_values()
            .map(|(keys, states)| {
                let mut vals = keys;
                for (i, spec) in self.aggs.iter().enumerate() {
                    vals.push(states[i].finish(spec.func));
                }
                Tuple::new(vals)
            })
            .collect();
        self.at = 0;
        self.materialized = true;
        Ok(())
    }
}

impl Operator for HashAggregate {
    fn open(&mut self) -> DbResult<()> {
        if !self.materialized {
            self.materialize()?;
        }
        self.at = 0;
        Ok(())
    }

    fn next(&mut self) -> DbResult<Option<Tuple>> {
        if !self.materialized {
            return Err(DbError::internal("aggregate next() before open()"));
        }
        if self.at < self.results.len() {
            self.at += 1;
            Ok(Some(self.results[self.at - 1].clone()))
        } else {
            Ok(None)
        }
    }

    fn rewind(&mut self) -> DbResult<()> {
        self.at = 0;
        Ok(())
    }

    fn close(&mut self) {}

    fn tuple_desc(&self) -> TupleDesc {
        self.desc.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{collect, Values};

    fn src() -> Values {
        let desc = TupleDesc::new(vec![("g", FieldType::Int64), ("v", FieldType::Int64)]);
        let rows = vec![
            Tuple::new(vec![Value::Int64(1), Value::Int64(10)]),
            Tuple::new(vec![Value::Int64(1), Value::Int64(20)]),
            Tuple::new(vec![Value::Int64(2), Value::Int64(5)]),
        ];
        Values::new(desc, rows)
    }

    #[test]
    fn grouped_aggregates() {
        let mut agg = HashAggregate::new(
            Box::new(src()),
            vec![Expr::col(0)],
            vec![
                AggSpec::new(AggFunc::Count, Expr::col(1), "cnt"),
                AggSpec::new(AggFunc::Sum, Expr::col(1), "sum"),
                AggSpec::new(AggFunc::Min, Expr::col(1), "min"),
                AggSpec::new(AggFunc::Max, Expr::col(1), "max"),
                AggSpec::new(AggFunc::Avg, Expr::col(1), "avg"),
            ],
        );
        let mut rows = collect(&mut agg).unwrap();
        rows.sort_by_key(|t| t.get(0).as_i64().unwrap());
        assert_eq!(rows.len(), 2);
        let g1 = &rows[0];
        assert_eq!(g1.get(1), &Value::Int64(2)); // count
        assert_eq!(g1.get(2), &Value::Int64(30)); // sum
        assert_eq!(g1.get(3), &Value::Int64(10)); // min
        assert_eq!(g1.get(4), &Value::Int64(20)); // max
        assert_eq!(g1.get(5), &Value::Int64(15)); // avg
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let desc = TupleDesc::new(vec![("v", FieldType::Int64)]);
        let empty = Values::new(desc, vec![]);
        let mut agg = HashAggregate::new(
            Box::new(empty),
            vec![],
            vec![AggSpec::new(AggFunc::Count, Expr::col(0), "cnt")],
        );
        let rows = collect(&mut agg).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0), &Value::Int64(0));
    }

    #[test]
    fn reopen_is_stable() {
        let mut agg = HashAggregate::new(
            Box::new(src()),
            vec![],
            vec![AggSpec::new(AggFunc::Sum, Expr::col(1), "sum")],
        );
        let a = collect(&mut agg).unwrap();
        let b = collect(&mut agg).unwrap();
        assert_eq!(a, b);
        assert_eq!(a[0].get(0), &Value::Int64(35));
    }
}
