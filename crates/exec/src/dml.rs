//! DML executors: the update-side operators of §6.1.5, expressed as
//! functions over the engine (they mutate state rather than produce tuple
//! streams).
//!
//! All three run in `Current` mode with transactional locks — the strict
//! 2PL side of the concurrency model. The predicate sees the stored tuple
//! (version columns included, at indices 0 and 1).

use crate::expr::Expr;
use crate::scan::{index_lookup, scan_rids, ReadMode};
use harbor_common::{DbResult, RecordId, TableId, TransactionId, Value};
use harbor_engine::Engine;
use harbor_storage::ScanBounds;

/// Inserts one row; returns its record id.
pub fn run_insert(
    engine: &Engine,
    tid: TransactionId,
    table: TableId,
    user_values: Vec<Value>,
) -> DbResult<RecordId> {
    engine.insert(tid, table, user_values)
}

/// Deletes all currently-visible rows satisfying `pred`; returns how many.
pub fn run_delete(
    engine: &Engine,
    tid: TransactionId,
    table: TableId,
    pred: &Expr,
) -> DbResult<usize> {
    let victims = scan_rids(
        engine.pool(),
        table,
        ReadMode::Current(tid),
        ScanBounds::all(),
        |t| pred.eval_bool(t),
    )?;
    for (rid, _) in &victims {
        engine.delete(tid, *rid)?;
    }
    Ok(victims.len())
}

/// Updates all currently-visible rows satisfying `pred` by mapping their
/// user values through `f`; returns how many.
pub fn run_update(
    engine: &Engine,
    tid: TransactionId,
    table: TableId,
    pred: &Expr,
    mut f: impl FnMut(&[Value]) -> Vec<Value>,
) -> DbResult<usize> {
    let victims = scan_rids(
        engine.pool(),
        table,
        ReadMode::Current(tid),
        ScanBounds::all(),
        |t| pred.eval_bool(t),
    )?;
    for (rid, tup) in &victims {
        let new_values = f(tup.user_values());
        engine.update(tid, *rid, new_values)?;
    }
    Ok(victims.len())
}

/// Updates the currently-visible version of the row with primary key `key`
/// ("indexed update queries", §4.2): the common warehouse correction of one
/// recent tuple. Returns `true` if a row was found and updated.
pub fn run_update_by_key(
    engine: &Engine,
    tid: TransactionId,
    table: TableId,
    key: i64,
    mut f: impl FnMut(&[Value]) -> Vec<Value>,
) -> DbResult<bool> {
    let hits = index_lookup(engine, table, key, ReadMode::Current(tid))?;
    // At most one live version exists per key under correct usage; update
    // the first.
    match hits.first() {
        Some((rid, tup)) => {
            let new_values = f(tup.user_values());
            engine.update(tid, *rid, new_values)?;
            Ok(true)
        }
        None => Ok(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::collect;
    use crate::scan::SeqScan;
    use harbor_common::{FieldType, SiteId, StorageConfig, Timestamp};
    use harbor_engine::{EngineOptions, StepLogging};
    use std::path::PathBuf;
    use std::sync::Arc;

    fn setup(name: &str) -> (Arc<Engine>, TableId, PathBuf) {
        let dir = std::env::temp_dir()
            .join("harbor-dml-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let e = Engine::open(
            &dir,
            EngineOptions::harbor(SiteId(0), StorageConfig::for_tests()),
        )
        .unwrap();
        let def = e
            .create_table(
                "t",
                vec![
                    ("id".into(), FieldType::Int64),
                    ("v".into(), FieldType::Int32),
                ],
            )
            .unwrap();
        (e, def.id, dir)
    }

    fn tid(n: u64) -> TransactionId {
        harbor_common::TransactionId::from_parts(SiteId(0), n)
    }

    #[test]
    fn delete_by_predicate() {
        let (e, table, dir) = setup("del");
        let t = tid(1);
        e.begin(t).unwrap();
        for i in 0..10 {
            run_insert(&e, t, table, vec![Value::Int64(i), Value::Int32(i as i32)]).unwrap();
        }
        e.commit(t, Timestamp(1), StepLogging::OFF).unwrap();
        let t = tid(2);
        e.begin(t).unwrap();
        let n = run_delete(&e, t, table, &Expr::col(3).ge(Expr::lit(5))).unwrap();
        assert_eq!(n, 5);
        e.commit(t, Timestamp(2), StepLogging::OFF).unwrap();
        let mut scan =
            SeqScan::new(e.pool().clone(), table, ReadMode::Historical(Timestamp(2))).unwrap();
        assert_eq!(collect(&mut scan).unwrap().len(), 5);
        // Time travel: before the delete, all ten are visible.
        let mut scan =
            SeqScan::new(e.pool().clone(), table, ReadMode::Historical(Timestamp(1))).unwrap();
        assert_eq!(collect(&mut scan).unwrap().len(), 10);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn update_by_key_touches_one_row() {
        let (e, table, dir) = setup("updkey");
        let t = tid(1);
        e.begin(t).unwrap();
        for i in 0..5 {
            run_insert(&e, t, table, vec![Value::Int64(i), Value::Int32(0)]).unwrap();
        }
        e.commit(t, Timestamp(1), StepLogging::OFF).unwrap();
        let t = tid(2);
        e.begin(t).unwrap();
        let hit = run_update_by_key(&e, t, table, 3, |vals| {
            vec![vals[0].clone(), Value::Int32(77)]
        })
        .unwrap();
        assert!(hit);
        assert!(!run_update_by_key(&e, t, table, 99, |v| v.to_vec()).unwrap());
        e.commit(t, Timestamp(2), StepLogging::OFF).unwrap();
        let mut scan =
            SeqScan::new(e.pool().clone(), table, ReadMode::Historical(Timestamp(2))).unwrap();
        let rows = collect(&mut scan).unwrap();
        let v3: Vec<_> = rows
            .iter()
            .filter(|r| r.get(2).as_i64().unwrap() == 3)
            .collect();
        assert_eq!(v3.len(), 1);
        assert_eq!(v3[0].get(3), &Value::Int32(77));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn update_by_predicate_rewrites_matching_rows() {
        let (e, table, dir) = setup("updpred");
        let t = tid(1);
        e.begin(t).unwrap();
        for i in 0..6 {
            run_insert(&e, t, table, vec![Value::Int64(i), Value::Int32(1)]).unwrap();
        }
        e.commit(t, Timestamp(1), StepLogging::OFF).unwrap();
        let t = tid(2);
        e.begin(t).unwrap();
        let n = run_update(&e, t, table, &Expr::col(2).lt(Expr::lit(3i64)), |vals| {
            vec![vals[0].clone(), Value::Int32(2)]
        })
        .unwrap();
        assert_eq!(n, 3);
        e.commit(t, Timestamp(2), StepLogging::OFF).unwrap();
        let mut scan =
            SeqScan::new(e.pool().clone(), table, ReadMode::Historical(Timestamp(2))).unwrap();
        let rows = collect(&mut scan).unwrap();
        assert_eq!(rows.len(), 6, "update preserved cardinality");
        let doubled = rows.iter().filter(|r| r.get(3) == &Value::Int32(2)).count();
        assert_eq!(doubled, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
