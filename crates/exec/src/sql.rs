//! A small SQL frontend — an *extension* over the thesis, whose
//! implementation had none ("query plans must be manually constructed",
//! §6.1.5). Covers the dialect the recovery queries and the examples are
//! written in:
//!
//! ```sql
//! SELECT * FROM t WHERE id >= 10 AS OF 42 LIMIT 5
//! SELECT region, SUM(units * price), COUNT(id) FROM orders GROUP BY region
//! INSERT INTO t VALUES (1, 10), (2, 20)
//! DELETE FROM t WHERE v < 3
//! UPDATE t SET v = 9 WHERE id = 7
//! ```
//!
//! * `AS OF <n>` runs the select as a historical query at logical time `n`
//!   (lock-free time travel); without it, reads run as of "now" at this
//!   site (`local_now() - 1`).
//! * Column names resolve against the stored schema; the reserved
//!   timestamp columns are addressable as `insertion_time` and
//!   `deletion_time`.
//! * Statements execute against one engine; DML requires a transaction id.

use crate::aggregate::{AggFunc, AggSpec, HashAggregate};
use crate::expr::{ArithOp, CmpOp, Expr};
use crate::op::{Filter, Limit, Operator, Project, Values};
use crate::scan::{index_lookup, ReadMode, SeqScan};
use crate::{run_delete, run_update};
use harbor_common::{DbError, DbResult, FieldType, TransactionId, Tuple, TupleDesc, Value};
use harbor_engine::Engine;

// ----------------------------------------------------------------------
// Lexer
// ----------------------------------------------------------------------

#[derive(Clone, PartialEq, Debug)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    Sym(&'static str),
    End,
}

fn lex(input: &str) -> DbResult<Vec<Tok>> {
    let b = input.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' | ')' | ',' | '*' | '+' | '-' | '/' | '%' => {
                out.push(Tok::Sym(match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '*' => "*",
                    '+' => "+",
                    '-' => "-",
                    '/' => "/",
                    _ => "%",
                }));
                i += 1;
            }
            '=' => {
                out.push(Tok::Sym("="));
                i += 1;
            }
            '<' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Sym("<="));
                    i += 2;
                } else if b.get(i + 1) == Some(&b'>') {
                    out.push(Tok::Sym("<>"));
                    i += 2;
                } else {
                    out.push(Tok::Sym("<"));
                    i += 1;
                }
            }
            '>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Sym(">="));
                    i += 2;
                } else {
                    out.push(Tok::Sym(">"));
                    i += 1;
                }
            }
            '!' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Sym("<>"));
                    i += 2;
                } else {
                    return Err(DbError::Schema("unexpected '!'".into()));
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < b.len() && b[j] != b'\'' {
                    j += 1;
                }
                if j >= b.len() {
                    return Err(DbError::Schema("unterminated string literal".into()));
                }
                out.push(Tok::Str(input[start..j].to_string()));
                i = j + 1;
            }
            '0'..='9' => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                let n: i64 = input[start..i]
                    .parse()
                    .map_err(|_| DbError::Schema("bad integer literal".into()))?;
                out.push(Tok::Int(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Tok::Ident(input[start..i].to_ascii_lowercase()));
            }
            other => return Err(DbError::Schema(format!("unexpected character {other:?}"))),
        }
    }
    out.push(Tok::End);
    Ok(out)
}

// ----------------------------------------------------------------------
// Parser
// ----------------------------------------------------------------------

struct Parser<'a> {
    toks: Vec<Tok>,
    at: usize,
    desc: Option<&'a TupleDesc>,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Tok {
        &self.toks[self.at]
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.at].clone();
        if self.at < self.toks.len() - 1 {
            self.at += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> DbResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(DbError::Schema(format!(
                "expected {kw:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Tok::Sym(s) if *s == sym) {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: &str) -> DbResult<()> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(DbError::Schema(format!(
                "expected {sym:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> DbResult<String> {
        match self.next() {
            Tok::Ident(s) => Ok(s),
            t => Err(DbError::Schema(format!("expected identifier, found {t:?}"))),
        }
    }

    /// Resolves a column name against the bound schema.
    fn column(&self, name: &str) -> DbResult<usize> {
        let desc = self
            .desc
            .ok_or_else(|| DbError::Schema("no schema bound".into()))?;
        match name {
            "insertion_time" => Ok(harbor_common::schema::COL_INSERTION_TS),
            "deletion_time" => Ok(harbor_common::schema::COL_DELETION_TS),
            _ => desc.index_of(name),
        }
    }

    // expr := or_expr
    fn expr(&mut self) -> DbResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> DbResult<Expr> {
        let mut e = self.and_expr()?;
        while self.eat_kw("or") {
            e = e.or(self.and_expr()?);
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> DbResult<Expr> {
        let mut e = self.not_expr()?;
        while self.eat_kw("and") {
            e = e.and(self.not_expr()?);
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> DbResult<Expr> {
        if self.eat_kw("not") {
            Ok(self.not_expr()?.not())
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> DbResult<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::Sym("=") => CmpOp::Eq,
            Tok::Sym("<>") => CmpOp::Ne,
            Tok::Sym("<") => CmpOp::Lt,
            Tok::Sym("<=") => CmpOp::Le,
            Tok::Sym(">") => CmpOp::Gt,
            Tok::Sym(">=") => CmpOp::Ge,
            _ => return Ok(lhs),
        };
        self.next();
        let rhs = self.add_expr()?;
        Ok(Expr::Cmp(op, Box::new(lhs), Box::new(rhs)))
    }

    fn add_expr(&mut self) -> DbResult<Expr> {
        let mut e = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Sym("+") => ArithOp::Add,
                Tok::Sym("-") => ArithOp::Sub,
                _ => return Ok(e),
            };
            self.next();
            e = Expr::Arith(op, Box::new(e), Box::new(self.mul_expr()?));
        }
    }

    fn mul_expr(&mut self) -> DbResult<Expr> {
        let mut e = self.primary()?;
        loop {
            let op = match self.peek() {
                Tok::Sym("*") => ArithOp::Mul,
                Tok::Sym("/") => ArithOp::Div,
                Tok::Sym("%") => ArithOp::Mod,
                _ => return Ok(e),
            };
            self.next();
            e = Expr::Arith(op, Box::new(e), Box::new(self.primary()?));
        }
    }

    fn primary(&mut self) -> DbResult<Expr> {
        match self.next() {
            Tok::Int(n) => Ok(Expr::lit(n)),
            Tok::Str(s) => Ok(Expr::lit(s.as_str())),
            Tok::Sym("(") => {
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Tok::Sym("-") => Ok(Expr::Arith(
                ArithOp::Sub,
                Box::new(Expr::lit(0i64)),
                Box::new(self.primary()?),
            )),
            Tok::Ident(name) => Ok(Expr::col(self.column(&name)?)),
            t => Err(DbError::Schema(format!("unexpected token {t:?}"))),
        }
    }

    /// Parses a literal value (INSERT VALUES / UPDATE SET rhs).
    fn literal(&mut self) -> DbResult<Value> {
        match self.next() {
            Tok::Int(n) => Ok(Value::Int64(n)),
            Tok::Str(s) => Ok(Value::Str(s)),
            Tok::Sym("-") => match self.next() {
                Tok::Int(n) => Ok(Value::Int64(-n)),
                t => Err(DbError::Schema(format!(
                    "expected number after '-', found {t:?}"
                ))),
            },
            t => Err(DbError::Schema(format!("expected literal, found {t:?}"))),
        }
    }
}

/// One select-list item.
enum SelectItem {
    Star,
    Col(usize),
    Agg(AggSpec),
}

fn agg_func(name: &str) -> Option<AggFunc> {
    Some(match name {
        "count" => AggFunc::Count,
        "sum" => AggFunc::Sum,
        "min" => AggFunc::Min,
        "max" => AggFunc::Max,
        "avg" => AggFunc::Avg,
        _ => return None,
    })
}

// ----------------------------------------------------------------------
// Index access selection
// ----------------------------------------------------------------------

/// Widest key range the planner will expand into individual index probes.
/// The key index is a hash map, so a range read costs one probe per key;
/// past this span a sequential scan wins.
const INDEX_PROBE_CAP: i64 = 256;

/// If `pred` restricts the key column (stored column `key_col`) to an
/// equality or a tight range, returns the concrete keys to probe.
///
/// Only conjuncts reachable through `AND` count: a key constraint nested
/// under `OR`/`NOT` does not restrict the result set on its own. The full
/// predicate is always re-applied as a residual filter, so the probe set
/// only needs to be a *superset* of the qualifying keys — contradictory
/// bounds simply yield an empty probe set.
fn key_probes(pred: &Expr, key_col: usize) -> Option<Vec<i64>> {
    fn gather(
        e: &Expr,
        key_col: usize,
        eq: &mut Option<i64>,
        lo: &mut Option<i64>,
        hi: &mut Option<i64>,
    ) {
        match e {
            Expr::And(a, b) => {
                gather(a, key_col, eq, lo, hi);
                gather(b, key_col, eq, lo, hi);
            }
            Expr::Cmp(op, a, b) => {
                let (op, n) = match (&**a, &**b) {
                    (Expr::Col(c), Expr::Lit(Value::Int64(n))) if *c == key_col => (*op, *n),
                    (Expr::Lit(Value::Int64(n)), Expr::Col(c)) if *c == key_col => {
                        // Flip `lit OP col` into `col OP' lit`.
                        let flipped = match op {
                            CmpOp::Lt => CmpOp::Gt,
                            CmpOp::Le => CmpOp::Ge,
                            CmpOp::Gt => CmpOp::Lt,
                            CmpOp::Ge => CmpOp::Le,
                            other => *other,
                        };
                        (flipped, *n)
                    }
                    _ => return,
                };
                match op {
                    CmpOp::Eq => *eq = Some(n),
                    CmpOp::Ge => *lo = Some(lo.map_or(n, |l: i64| l.max(n))),
                    CmpOp::Gt => {
                        if let Some(n) = n.checked_add(1) {
                            *lo = Some(lo.map_or(n, |l: i64| l.max(n)));
                        }
                    }
                    CmpOp::Le => *hi = Some(hi.map_or(n, |h: i64| h.min(n))),
                    CmpOp::Lt => {
                        if let Some(n) = n.checked_sub(1) {
                            *hi = Some(hi.map_or(n, |h: i64| h.min(n)));
                        }
                    }
                    CmpOp::Ne => {}
                }
            }
            _ => {}
        }
    }
    let (mut eq, mut lo, mut hi) = (None, None, None);
    gather(pred, key_col, &mut eq, &mut lo, &mut hi);
    if let Some(k) = eq {
        return Some(vec![k]);
    }
    let (lo, hi) = (lo?, hi?);
    if hi < lo {
        return Some(Vec::new());
    }
    if hi.checked_sub(lo)? >= INDEX_PROBE_CAP {
        return None;
    }
    Some((lo..=hi).collect())
}

/// Builds the plan source: an index probe set when the predicate pins the
/// key column (§5.3's tuple-id index), a sequential scan otherwise.
fn plan_source(
    engine: &Engine,
    def: &harbor_engine::TableDef,
    desc: &TupleDesc,
    predicate: Option<&Expr>,
    mode: ReadMode,
) -> DbResult<Box<dyn Operator>> {
    let key_col = harbor_common::schema::NUM_VERSION_COLS;
    let keyed = desc.len() > key_col && desc.field_type(key_col) == FieldType::Int64;
    if keyed {
        if let Some(probes) = predicate.and_then(|p| key_probes(p, key_col)) {
            let mut rows = Vec::new();
            for key in probes {
                rows.extend(
                    index_lookup(engine, def.id, key, mode)?
                        .into_iter()
                        .map(|(_, t)| t),
                );
            }
            return Ok(Box::new(Values::new(desc.clone(), rows)));
        }
    }
    Ok(Box::new(SeqScan::new(engine.pool().clone(), def.id, mode)?))
}

// ----------------------------------------------------------------------
// Statement execution
// ----------------------------------------------------------------------

/// Runs a read-only `SELECT`, returning its rows. `AS OF <n>` picks the
/// snapshot; otherwise the site's latest applied time is used.
pub fn query(engine: &Engine, sql: &str) -> DbResult<Vec<Tuple>> {
    let toks = lex(sql)?;
    let mut p = Parser {
        toks,
        at: 0,
        desc: None,
    };
    p.expect_kw("select")?;
    // Scan the select list tokens first without a schema: we need the table
    // name to bind columns, so parse in two passes — remember position.
    let select_start = p.at;
    // Skip forward to FROM.
    let mut depth = 0;
    loop {
        match p.peek() {
            Tok::Sym("(") => depth += 1,
            Tok::Sym(")") => depth -= 1,
            Tok::Ident(s) if s == "from" && depth == 0 => break,
            Tok::End => return Err(DbError::Schema("missing FROM".into())),
            _ => {}
        }
        p.next();
    }
    p.expect_kw("from")?;
    let table_name = p.ident()?;
    let def = engine
        .table_def(&table_name)
        .ok_or_else(|| DbError::Schema(format!("no table {table_name:?}")))?;
    let desc = def.stored_desc();
    let tail_start = p.at;
    // Re-parse the select list with the schema bound.
    p.at = select_start;
    p.desc = Some(&desc);
    let mut items = Vec::new();
    loop {
        if p.eat_sym("*") {
            items.push(SelectItem::Star);
        } else if let Tok::Ident(name) = p.peek().clone() {
            if let Some(func) = agg_func(&name) {
                // Aggregate call?
                let save = p.at;
                p.next();
                if p.eat_sym("(") {
                    let inner = if func == AggFunc::Count && p.eat_sym("*") {
                        Expr::lit(1i64)
                    } else {
                        p.expr()?
                    };
                    p.expect_sym(")")?;
                    items.push(SelectItem::Agg(AggSpec::new(func, inner, &name)));
                } else {
                    p.at = save;
                    let col = p.column(&name)?;
                    p.next();
                    items.push(SelectItem::Col(col));
                }
            } else {
                let col = p.column(&name)?;
                p.next();
                items.push(SelectItem::Col(col));
            }
        } else {
            return Err(DbError::Schema(format!(
                "bad select item at {:?}",
                p.peek()
            )));
        }
        if !p.eat_sym(",") {
            break;
        }
    }
    // Jump to the tail (after FROM table).
    p.at = tail_start;
    let mut predicate = None;
    let mut group_by: Vec<Expr> = Vec::new();
    let mut as_of = None;
    let mut limit = None;
    loop {
        if p.eat_kw("where") {
            predicate = Some(p.expr()?);
        } else if p.eat_kw("group") {
            p.expect_kw("by")?;
            loop {
                group_by.push(p.expr()?);
                if !p.eat_sym(",") {
                    break;
                }
            }
        } else if p.eat_kw("as") {
            p.expect_kw("of")?;
            match p.next() {
                Tok::Int(n) if n >= 0 => as_of = Some(harbor_common::Timestamp(n as u64)),
                t => return Err(DbError::Schema(format!("bad AS OF time {t:?}"))),
            }
        } else if p.eat_kw("limit") {
            match p.next() {
                Tok::Int(n) if n >= 0 => limit = Some(n as usize),
                t => return Err(DbError::Schema(format!("bad LIMIT {t:?}"))),
            }
        } else if matches!(p.peek(), Tok::End) {
            break;
        } else {
            return Err(DbError::Schema(format!("unexpected {:?}", p.peek())));
        }
    }
    // Build the plan.
    let at = as_of.unwrap_or_else(|| engine.local_now().prev());
    let mut plan = plan_source(
        engine,
        &def,
        &desc,
        predicate.as_ref(),
        ReadMode::Historical(at),
    )?;
    if let Some(pred) = predicate {
        plan = Box::new(Filter::new(plan, pred));
    }
    let aggs: Vec<AggSpec> = items
        .iter()
        .filter_map(|i| match i {
            SelectItem::Agg(a) => Some(a.clone()),
            _ => None,
        })
        .collect();
    if !aggs.is_empty() {
        // Grouped aggregation; plain columns in the select list must appear
        // in GROUP BY (checked loosely: they become group keys if none
        // were given explicitly).
        let group_exprs = if group_by.is_empty() {
            items
                .iter()
                .filter_map(|i| match i {
                    SelectItem::Col(c) => Some(Expr::col(*c)),
                    _ => None,
                })
                .collect()
        } else {
            group_by
        };
        plan = Box::new(HashAggregate::new(plan, group_exprs, aggs));
    } else if !items.iter().any(|i| matches!(i, SelectItem::Star)) {
        let cols: Vec<usize> = items
            .iter()
            .filter_map(|i| match i {
                SelectItem::Col(c) => Some(*c),
                _ => None,
            })
            .collect();
        plan = Box::new(Project::new(plan, cols));
    }
    if let Some(n) = limit {
        plan = Box::new(Limit::new(plan, n));
    }
    crate::op::collect(plan.as_mut())
}

/// Executes an `INSERT` / `DELETE` / `UPDATE` under `tid`; returns affected
/// row count. The caller owns commit/abort.
pub fn execute(engine: &Engine, tid: TransactionId, sql: &str) -> DbResult<usize> {
    let toks = lex(sql)?;
    let mut p = Parser {
        toks,
        at: 0,
        desc: None,
    };
    if p.eat_kw("insert") {
        p.expect_kw("into")?;
        let table = p.ident()?;
        let def = engine
            .table_def(&table)
            .ok_or_else(|| DbError::Schema(format!("no table {table:?}")))?;
        p.expect_kw("values")?;
        let mut n = 0;
        loop {
            p.expect_sym("(")?;
            let desc = def.stored_desc();
            let mut values = Vec::new();
            loop {
                let v = p.literal()?;
                let stored_col = values.len() + harbor_common::schema::NUM_VERSION_COLS;
                values.push(coerce(v, &desc, stored_col));
                if !p.eat_sym(",") {
                    break;
                }
            }
            p.expect_sym(")")?;
            engine.insert(tid, def.id, values)?;
            n += 1;
            if !p.eat_sym(",") {
                break;
            }
        }
        return Ok(n);
    }
    if p.eat_kw("delete") {
        p.expect_kw("from")?;
        let table = p.ident()?;
        let def = engine
            .table_def(&table)
            .ok_or_else(|| DbError::Schema(format!("no table {table:?}")))?;
        let desc = def.stored_desc();
        p.desc = Some(&desc);
        let pred = if p.eat_kw("where") {
            p.expr()?
        } else {
            Expr::lit(1i64) // delete everything
        };
        return run_delete(engine, tid, def.id, &pred);
    }
    if p.eat_kw("update") {
        let table = p.ident()?;
        let def = engine
            .table_def(&table)
            .ok_or_else(|| DbError::Schema(format!("no table {table:?}")))?;
        let desc = def.stored_desc();
        p.desc = Some(&desc);
        p.expect_kw("set")?;
        let mut sets: Vec<(usize, Value)> = Vec::new();
        loop {
            let name = p.ident()?;
            let col = p.column(&name)?;
            if col < harbor_common::schema::NUM_VERSION_COLS {
                return Err(DbError::Schema(
                    "cannot assign to a reserved timestamp column".into(),
                ));
            }
            p.expect_sym("=")?;
            let v = p.literal()?;
            sets.push((
                col - harbor_common::schema::NUM_VERSION_COLS,
                coerce_to(v, desc.field_type(col)),
            ));
            if !p.eat_sym(",") {
                break;
            }
        }
        let pred = if p.eat_kw("where") {
            p.expr()?
        } else {
            Expr::lit(1i64)
        };
        return run_update(engine, tid, def.id, &pred, |user| {
            let mut out = user.to_vec();
            for (i, v) in &sets {
                out[*i] = v.clone();
            }
            out
        });
    }
    Err(DbError::Schema(
        "expected SELECT, INSERT, DELETE or UPDATE".into(),
    ))
}

/// Coerces a parsed literal to the column's declared type (integers parse
/// as i64; narrow to i32 where the schema says so).
fn coerce(v: Value, desc: &TupleDesc, stored_col: usize) -> Value {
    if stored_col < desc.len() {
        coerce_to(v, desc.field_type(stored_col))
    } else {
        v
    }
}

fn coerce_to(v: Value, ty: harbor_common::FieldType) -> Value {
    match (v, ty) {
        (Value::Int64(n), harbor_common::FieldType::Int32) => Value::Int32(n as i32),
        (Value::Int64(n), harbor_common::FieldType::Time) => {
            Value::Time(harbor_common::Timestamp(n as u64))
        }
        (v, _) => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harbor_common::{FieldType, SiteId, StorageConfig, Timestamp};
    use harbor_engine::{EngineOptions, StepLogging};
    use std::sync::Arc;

    fn setup(name: &str) -> (Arc<Engine>, std::path::PathBuf) {
        let dir = std::env::temp_dir()
            .join("harbor-sql-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let e = Engine::open(
            &dir,
            EngineOptions::harbor(SiteId(0), StorageConfig::for_tests()),
        )
        .unwrap();
        e.create_table(
            "sales",
            vec![
                ("id".into(), FieldType::Int64),
                ("region".into(), FieldType::Int32),
                ("amount".into(), FieldType::Int32),
            ],
        )
        .unwrap();
        (e, dir)
    }

    fn tid(n: u64) -> TransactionId {
        TransactionId::from_parts(SiteId(0), n)
    }

    fn load(e: &Engine) {
        let t = tid(1);
        e.begin(t).unwrap();
        execute(
            e,
            t,
            "INSERT INTO sales VALUES (1, 0, 10), (2, 0, 20), (3, 1, 30), (4, 1, 40)",
        )
        .unwrap();
        e.commit(t, Timestamp(5), StepLogging::OFF).unwrap();
    }

    #[test]
    fn select_star_where_limit() {
        let (e, dir) = setup("select");
        load(&e);
        let rows = query(&e, "SELECT * FROM sales WHERE amount >= 20").unwrap();
        assert_eq!(rows.len(), 3);
        let rows = query(&e, "SELECT * FROM sales WHERE amount >= 20 LIMIT 2").unwrap();
        assert_eq!(rows.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn projection_resolves_names() {
        let (e, dir) = setup("project");
        load(&e);
        let rows = query(&e, "SELECT id, amount FROM sales WHERE region = 1").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn grouped_aggregates() {
        let (e, dir) = setup("agg");
        load(&e);
        let mut rows = query(
            &e,
            "SELECT region, SUM(amount), COUNT(*) FROM sales GROUP BY region",
        )
        .unwrap();
        rows.sort_by_key(|t| t.get(0).as_i64().unwrap());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get(1).as_i64().unwrap(), 30);
        assert_eq!(rows[1].get(1).as_i64().unwrap(), 70);
        assert_eq!(rows[1].get(2).as_i64().unwrap(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn as_of_time_travel() {
        let (e, dir) = setup("asof");
        load(&e);
        let t = tid(2);
        e.begin(t).unwrap();
        execute(&e, t, "DELETE FROM sales WHERE id = 1").unwrap();
        e.commit(t, Timestamp(9), StepLogging::OFF).unwrap();
        assert_eq!(query(&e, "SELECT * FROM sales").unwrap().len(), 3);
        assert_eq!(query(&e, "SELECT * FROM sales AS OF 5").unwrap().len(), 4);
        // Timestamp pseudo-columns are addressable.
        let rows = query(&e, "SELECT id FROM sales WHERE insertion_time <= 5 AS OF 9").unwrap();
        assert_eq!(rows.len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn update_and_delete() {
        let (e, dir) = setup("dml");
        load(&e);
        let t = tid(2);
        e.begin(t).unwrap();
        let n = execute(&e, t, "UPDATE sales SET amount = 99 WHERE region = 0").unwrap();
        assert_eq!(n, 2);
        e.commit(t, Timestamp(7), StepLogging::OFF).unwrap();
        let rows = query(&e, "SELECT amount FROM sales WHERE region = 0").unwrap();
        assert!(rows.iter().all(|r| r.get(0).as_i64().unwrap() == 99));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_errors_are_reported() {
        let (e, dir) = setup("errors");
        load(&e);
        assert!(query(&e, "SELECT FROM sales").is_err());
        assert!(query(&e, "SELECT * FROM nope").is_err());
        assert!(query(&e, "SELECT bogus FROM sales").is_err());
        assert!(query(&e, "SELECT * sales").is_err());
        let t = tid(9);
        e.begin(t).unwrap();
        assert!(execute(&e, t, "UPDATE sales SET insertion_time = 1").is_err());
        assert!(execute(&e, t, "DROP TABLE sales").is_err());
        e.abort(t, StepLogging::OFF).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_probes_extraction() {
        let k = 0usize;
        // Equality, either orientation.
        let p = Expr::col(k).eq(Expr::lit(7i64));
        assert_eq!(key_probes(&p, k), Some(vec![7]));
        let p = Expr::lit(7i64).eq(Expr::col(k));
        assert_eq!(key_probes(&p, k), Some(vec![7]));
        // Tight range, including flipped comparisons and conjunction with
        // unrelated terms.
        let p = Expr::col(k)
            .ge(Expr::lit(3i64))
            .and(Expr::lit(5i64).ge(Expr::col(k)))
            .and(Expr::col(1).gt(Expr::lit(0i64)));
        assert_eq!(key_probes(&p, k), Some(vec![3, 4, 5]));
        // Exclusive bounds narrow the range.
        let p = Expr::col(k)
            .gt(Expr::lit(3i64))
            .and(Expr::col(k).lt(Expr::lit(6i64)));
        assert_eq!(key_probes(&p, k), Some(vec![4, 5]));
        // Contradictory bounds: empty probe set, not a scan.
        let p = Expr::col(k)
            .ge(Expr::lit(9i64))
            .and(Expr::col(k).le(Expr::lit(2i64)));
        assert_eq!(key_probes(&p, k), Some(vec![]));
        // Too wide, half-open, OR-nested, or wrong column: no index access.
        let p = Expr::col(k)
            .ge(Expr::lit(0i64))
            .and(Expr::col(k).le(Expr::lit(INDEX_PROBE_CAP)));
        assert_eq!(key_probes(&p, k), None);
        assert_eq!(key_probes(&Expr::col(k).ge(Expr::lit(3i64)), k), None);
        let p = Expr::col(k)
            .eq(Expr::lit(1i64))
            .or(Expr::col(1).eq(Expr::lit(2i64)));
        assert_eq!(key_probes(&p, k), None);
        assert_eq!(key_probes(&Expr::col(2).eq(Expr::lit(1i64)), k), None);
    }

    #[test]
    fn point_read_uses_index() {
        let (e, dir) = setup("pointidx");
        load(&e);
        let before = e.pool().metrics().snapshot();
        let rows = query(&e, "SELECT * FROM sales WHERE id = 3").unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0]
                .get(harbor_common::schema::NUM_VERSION_COLS + 2)
                .as_i64()
                .unwrap(),
            30
        );
        let after = e.pool().metrics().snapshot();
        assert!(
            after.index_hits > before.index_hits,
            "equality on the key must route through the index"
        );
        // Range probes: same rows as the scan path, absent keys count misses.
        let rows = query(&e, "SELECT id FROM sales WHERE id >= 2 AND id <= 9").unwrap();
        assert_eq!(rows.len(), 3);
        let after2 = e.pool().metrics().snapshot();
        assert!(after2.index_misses > after.index_misses);
        // Residual predicate still applies on top of the probe.
        let rows = query(&e, "SELECT * FROM sales WHERE id = 3 AND amount > 99").unwrap();
        assert!(rows.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn index_and_scan_agree_after_dml() {
        let (e, dir) = setup("idxagree");
        load(&e);
        let t = tid(2);
        e.begin(t).unwrap();
        execute(&e, t, "UPDATE sales SET amount = 77 WHERE id = 2").unwrap();
        execute(&e, t, "DELETE FROM sales WHERE id = 4").unwrap();
        e.commit(t, Timestamp(8), StepLogging::OFF).unwrap();
        for key in [1, 2, 3, 4, 100] {
            let idx = query(&e, &format!("SELECT * FROM sales WHERE id = {key}")).unwrap();
            // Force the scan path by hiding the key term under OR with false.
            let scan = query(
                &e,
                &format!("SELECT * FROM sales WHERE id = {key} OR 1 = 2"),
            )
            .unwrap();
            assert_eq!(idx.len(), scan.len(), "key {key}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn arithmetic_and_strings() {
        let (e, dir) = setup("arith");
        load(&e);
        let rows = query(
            &e,
            "SELECT SUM(amount * 2 + 1) FROM sales WHERE NOT (region <> 0)",
        )
        .unwrap();
        assert_eq!(rows[0].get(0).as_i64().unwrap(), 62);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
