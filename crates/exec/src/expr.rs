//! A small expression language for predicates and projections.
//!
//! Query plans are built programmatically (the thesis implementation has no
//! SQL frontend either: "query plans must be manually constructed", §6.1.5);
//! expressions give those plans their WHERE clauses, including the timestamp
//! range predicates of the recovery queries.

use harbor_common::{DbResult, Timestamp, Tuple, Value};
use std::cmp::Ordering;
use std::fmt;

/// Comparison operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    fn test(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

/// Arithmetic operators (integer semantics, wrapping on overflow).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

/// An expression tree over one tuple.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// Column reference by index into the input tuple.
    Col(usize),
    /// Literal value.
    Lit(Value),
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
}

impl Expr {
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    pub fn time(t: Timestamp) -> Expr {
        Expr::Lit(Value::Time(t))
    }

    pub fn eq(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(other))
    }

    pub fn ne(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ne, Box::new(self), Box::new(other))
    }

    pub fn lt(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Lt, Box::new(self), Box::new(other))
    }

    pub fn le(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Le, Box::new(self), Box::new(other))
    }

    pub fn gt(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Gt, Box::new(self), Box::new(other))
    }

    pub fn ge(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ge, Box::new(self), Box::new(other))
    }

    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Add, Box::new(self), Box::new(other))
    }

    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Mul, Box::new(self), Box::new(other))
    }

    /// Evaluates against `tuple`.
    pub fn eval(&self, tuple: &Tuple) -> DbResult<Value> {
        match self {
            Expr::Col(i) => Ok(tuple.get(*i).clone()),
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Cmp(op, a, b) => {
                let a = a.eval(tuple)?;
                let b = b.eval(tuple)?;
                Ok(Value::Int32(op.test(a.total_cmp(&b)) as i32))
            }
            Expr::Arith(op, a, b) => {
                let a = a.eval(tuple)?.as_i64()?;
                let b = b.eval(tuple)?.as_i64()?;
                let v = match op {
                    ArithOp::Add => a.wrapping_add(b),
                    ArithOp::Sub => a.wrapping_sub(b),
                    ArithOp::Mul => a.wrapping_mul(b),
                    ArithOp::Div => {
                        if b == 0 {
                            return Err(harbor_common::DbError::Schema("division by zero".into()));
                        }
                        a.wrapping_div(b)
                    }
                    ArithOp::Mod => {
                        if b == 0 {
                            return Err(harbor_common::DbError::Schema("modulo by zero".into()));
                        }
                        a.wrapping_rem(b)
                    }
                };
                Ok(Value::Int64(v))
            }
            Expr::And(a, b) => Ok(Value::Int32(
                (a.eval_bool(tuple)? && b.eval_bool(tuple)?) as i32,
            )),
            Expr::Or(a, b) => Ok(Value::Int32(
                (a.eval_bool(tuple)? || b.eval_bool(tuple)?) as i32,
            )),
            Expr::Not(a) => Ok(Value::Int32(!a.eval_bool(tuple)? as i32)),
        }
    }

    /// Evaluates as a predicate.
    pub fn eval_bool(&self, tuple: &Tuple) -> DbResult<bool> {
        Ok(self.eval(tuple)?.as_i64()? != 0)
    }
}

impl harbor_common::codec::Wire for Expr {
    fn encode(&self, enc: &mut harbor_common::codec::Encoder) {
        match self {
            Expr::Col(i) => {
                enc.put_u8(0);
                enc.put_u32(*i as u32);
            }
            Expr::Lit(v) => {
                enc.put_u8(1);
                v.encode(enc);
            }
            Expr::Cmp(op, a, b) => {
                enc.put_u8(2);
                enc.put_u8(*op as u8);
                a.encode(enc);
                b.encode(enc);
            }
            Expr::Arith(op, a, b) => {
                enc.put_u8(3);
                enc.put_u8(*op as u8);
                a.encode(enc);
                b.encode(enc);
            }
            Expr::And(a, b) => {
                enc.put_u8(4);
                a.encode(enc);
                b.encode(enc);
            }
            Expr::Or(a, b) => {
                enc.put_u8(5);
                a.encode(enc);
                b.encode(enc);
            }
            Expr::Not(a) => {
                enc.put_u8(6);
                a.encode(enc);
            }
        }
    }

    fn decode(dec: &mut harbor_common::codec::Decoder<'_>) -> DbResult<Self> {
        use harbor_common::DbError;
        fn cmp_op(t: u8) -> DbResult<CmpOp> {
            Ok(match t {
                0 => CmpOp::Eq,
                1 => CmpOp::Ne,
                2 => CmpOp::Lt,
                3 => CmpOp::Le,
                4 => CmpOp::Gt,
                5 => CmpOp::Ge,
                _ => return Err(DbError::corrupt("bad cmp op")),
            })
        }
        fn arith_op(t: u8) -> DbResult<ArithOp> {
            Ok(match t {
                0 => ArithOp::Add,
                1 => ArithOp::Sub,
                2 => ArithOp::Mul,
                3 => ArithOp::Div,
                4 => ArithOp::Mod,
                _ => return Err(DbError::corrupt("bad arith op")),
            })
        }
        Ok(match dec.get_u8()? {
            0 => Expr::Col(dec.get_u32()? as usize),
            1 => Expr::Lit(Value::decode(dec)?),
            2 => {
                let op = cmp_op(dec.get_u8()?)?;
                Expr::Cmp(
                    op,
                    Box::new(Expr::decode(dec)?),
                    Box::new(Expr::decode(dec)?),
                )
            }
            3 => {
                let op = arith_op(dec.get_u8()?)?;
                Expr::Arith(
                    op,
                    Box::new(Expr::decode(dec)?),
                    Box::new(Expr::decode(dec)?),
                )
            }
            4 => Expr::And(Box::new(Expr::decode(dec)?), Box::new(Expr::decode(dec)?)),
            5 => Expr::Or(Box::new(Expr::decode(dec)?), Box::new(Expr::decode(dec)?)),
            6 => Expr::Not(Box::new(Expr::decode(dec)?)),
            t => return Err(DbError::corrupt(format!("bad expr tag {t}"))),
        })
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(i) => write!(f, "${i}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Cmp(op, a, b) => write!(f, "({a} {op:?} {b})"),
            Expr::Arith(op, a, b) => write!(f, "({a} {op:?} {b})"),
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(a) => write!(f, "(NOT {a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tup() -> Tuple {
        Tuple::new(vec![
            Value::Time(Timestamp(5)),
            Value::Time(Timestamp::ZERO),
            Value::Int64(42),
            Value::Int32(7),
        ])
    }

    #[test]
    fn comparisons() {
        let t = tup();
        assert!(Expr::col(2).eq(Expr::lit(42i64)).eval_bool(&t).unwrap());
        assert!(Expr::col(3).lt(Expr::lit(8)).eval_bool(&t).unwrap());
        assert!(!Expr::col(3).gt(Expr::lit(8)).eval_bool(&t).unwrap());
        assert!(Expr::col(0)
            .le(Expr::time(Timestamp(5)))
            .eval_bool(&t)
            .unwrap());
    }

    #[test]
    fn boolean_connectives() {
        let t = tup();
        let e = Expr::col(2)
            .eq(Expr::lit(42i64))
            .and(Expr::col(3).eq(Expr::lit(7)));
        assert!(e.eval_bool(&t).unwrap());
        let e = Expr::col(2)
            .eq(Expr::lit(0i64))
            .or(Expr::col(3).eq(Expr::lit(7)));
        assert!(e.eval_bool(&t).unwrap());
        assert!(!Expr::col(3).eq(Expr::lit(7)).not().eval_bool(&t).unwrap());
    }

    #[test]
    fn arithmetic() {
        let t = tup();
        let e = Expr::col(2).add(Expr::lit(8i64));
        assert_eq!(e.eval(&t).unwrap(), Value::Int64(50));
        let e = Expr::col(3).mul(Expr::lit(6));
        assert_eq!(e.eval(&t).unwrap(), Value::Int64(42));
        assert!(Expr::Arith(
            ArithOp::Div,
            Box::new(Expr::lit(1i64)),
            Box::new(Expr::lit(0i64))
        )
        .eval(&t)
        .is_err());
    }

    #[test]
    fn mixed_width_comparison_works() {
        let t = tup();
        // Int32 column compared with Int64 literal.
        assert!(Expr::col(3).eq(Expr::lit(7i64)).eval_bool(&t).unwrap());
    }
}
