//! Query execution for the HARBOR reproduction: the row operators of thesis
//! §6.1.5, the expression language, the three read modes (current /
//! historical / see-deleted), and DML executors.
//!
//! As in the thesis implementation, there is no SQL frontend: "query plans
//! must be manually constructed" via the builders here. The `harbor` crate
//! composes these pieces into the recovery queries of Chapter 5.

pub mod aggregate;
pub mod dml;
pub mod expr;
pub mod join;
pub mod op;
pub mod scan;
pub mod sql;

pub use aggregate::{AggFunc, AggSpec, HashAggregate};
pub use dml::{run_delete, run_insert, run_update, run_update_by_key};
pub use expr::{ArithOp, CmpOp, Expr};
pub use join::NestedLoopsJoin;
pub use op::{collect, Filter, Limit, Operator, Project, Values};
pub use scan::{
    admit_chunk, index_lookup, scan_page_chunked, scan_rids, Admission, ParallelSeqScan, ReadMode,
    SeqScan,
};
pub use sql::{execute as execute_sql, query as query_sql};
