//! Nested-loops join (thesis §6.1.5).

use crate::expr::Expr;
use crate::op::Operator;
use harbor_common::{DbResult, Tuple, TupleDesc};

/// Tuple-at-a-time nested loops join: for each outer tuple, rewinds the
/// inner input and emits concatenations satisfying the join predicate. The
/// predicate sees the concatenated tuple (outer columns first).
pub struct NestedLoopsJoin {
    outer: Box<dyn Operator>,
    inner: Box<dyn Operator>,
    pred: Expr,
    desc: TupleDesc,
    current_outer: Option<Tuple>,
}

impl NestedLoopsJoin {
    pub fn new(outer: Box<dyn Operator>, inner: Box<dyn Operator>, pred: Expr) -> Self {
        let desc = outer.tuple_desc().concat(&inner.tuple_desc());
        NestedLoopsJoin {
            outer,
            inner,
            pred,
            desc,
            current_outer: None,
        }
    }
}

impl Operator for NestedLoopsJoin {
    fn open(&mut self) -> DbResult<()> {
        self.outer.open()?;
        self.inner.open()?;
        self.current_outer = None;
        Ok(())
    }

    fn next(&mut self) -> DbResult<Option<Tuple>> {
        loop {
            if self.current_outer.is_none() {
                match self.outer.next()? {
                    Some(t) => {
                        self.current_outer = Some(t);
                        self.inner.rewind()?;
                    }
                    None => return Ok(None),
                }
            }
            let outer = self.current_outer.clone().expect("set above");
            match self.inner.next()? {
                Some(inner) => {
                    let mut vals = outer.values().to_vec();
                    vals.extend(inner.into_values());
                    let joined = Tuple::new(vals);
                    if self.pred.eval_bool(&joined)? {
                        return Ok(Some(joined));
                    }
                }
                None => self.current_outer = None,
            }
        }
    }

    fn rewind(&mut self) -> DbResult<()> {
        self.outer.rewind()?;
        self.inner.rewind()?;
        self.current_outer = None;
        Ok(())
    }

    fn close(&mut self) {
        self.outer.close();
        self.inner.close();
    }

    fn tuple_desc(&self) -> TupleDesc {
        self.desc.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{collect, Values};
    use harbor_common::{FieldType, Value};

    fn table(name: &str, rows: Vec<(i64, i64)>) -> Values {
        let desc = TupleDesc::new(vec![
            (&format!("{name}_k") as &str, FieldType::Int64),
            (&format!("{name}_v") as &str, FieldType::Int64),
        ]);
        Values::new(
            desc,
            rows.into_iter()
                .map(|(k, v)| Tuple::new(vec![Value::Int64(k), Value::Int64(v)]))
                .collect(),
        )
    }

    #[test]
    fn equijoin_matches_pairs() {
        let left = table("l", vec![(1, 10), (2, 20), (3, 30)]);
        let right = table("r", vec![(2, 200), (3, 300), (3, 301), (4, 400)]);
        // Join on l_k == r_k: columns 0 and 2 of the concatenation.
        let mut join = NestedLoopsJoin::new(
            Box::new(left),
            Box::new(right),
            Expr::col(0).eq(Expr::col(2)),
        );
        let mut rows = collect(&mut join).unwrap();
        rows.sort_by_key(|t| (t.get(0).as_i64().unwrap(), t.get(3).as_i64().unwrap()));
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].get(1), &Value::Int64(20));
        assert_eq!(rows[0].get(3), &Value::Int64(200));
        assert_eq!(rows[2].get(3), &Value::Int64(301));
        assert_eq!(join.tuple_desc().len(), 4);
    }

    #[test]
    fn empty_inputs_produce_no_rows() {
        let left = table("l", vec![]);
        let right = table("r", vec![(1, 1)]);
        let mut join = NestedLoopsJoin::new(
            Box::new(left),
            Box::new(right),
            Expr::col(0).eq(Expr::col(2)),
        );
        assert!(collect(&mut join).unwrap().is_empty());
    }
}
