//! Table scans with the three read modes of the thesis.
//!
//! * [`ReadMode::Current`] — sees the latest committed data; takes
//!   transactional page read locks (strict 2PL side of §3.1's concurrency
//!   model).
//! * [`ReadMode::Historical`] — sees the database as of a past time `T`;
//!   **takes no locks at all** (§3.3), which is what lets recovery Phase 2
//!   read replicas without quiescing the system.
//! * [`ReadMode::SeeDeleted`] — the recovery special mode (§3.4, §5.1):
//!   delete filtering is off and both timestamps are exposed as ordinary
//!   fields; available unlocked (Phases 1/2) or with a transaction id whose
//!   locks have already been taken at table granularity (Phase 3).
//!
//! Scans prune whole segments via the [`ScanBounds`] annotations before
//! touching any page (§4.2).
//!
//! Scanning is **batched and late-materializing**: the fast path reads the
//! insertion/deletion timestamps at their fixed offsets straight from the
//! page bytes and applies [`ReadMode::admit`] *before* decoding, so rows the
//! visibility check rejects are never materialized. Admitted rows decode
//! directly into the caller's batch buffer ([`Operator::next_batch`]); the
//! tuple-at-a-time [`Operator::next`] remains as a shim.

use crate::op::Operator;
use harbor_common::codec::Decoder;
use harbor_common::time::visible_at;
use harbor_common::tuple::raw_version_timestamps;
use harbor_common::{
    DbResult, Metrics, PageId, RecordId, TableId, Timestamp, TransactionId, Tuple, TupleDesc,
};
use harbor_storage::{BufferPool, ScanBounds};
use std::collections::VecDeque;
use std::sync::Arc;

/// Visibility/locking mode for reads.
#[derive(Clone, Copy, Debug)]
pub enum ReadMode {
    /// Latest committed data, with transactional read locks.
    Current(TransactionId),
    /// Snapshot as of the given time; lock-free.
    Historical(Timestamp),
    /// All tuples (including deleted and uncommitted), timestamps exposed;
    /// lock-free.
    SeeDeleted,
    /// As [`SeeDeleted`](ReadMode::SeeDeleted), but attributed to a
    /// transaction for lock accounting (recovery Phase 3 runs with table
    /// read locks already held).
    SeeDeletedLocked(TransactionId),
    /// Historical + see-deleted: the recovery Phase 2 queries
    /// (`SEE DELETED HISTORICAL WITH TIME hwm`): deleted tuples appear, but
    /// tuples inserted after the HWM do not, and deletions after the HWM
    /// read as "not deleted" (§5.3).
    SeeDeletedHistorical(Timestamp),
}

impl ReadMode {
    /// Transaction to charge page locks to, if any.
    pub fn lock_tid(&self) -> Option<TransactionId> {
        match self {
            ReadMode::Current(t) | ReadMode::SeeDeletedLocked(t) => Some(*t),
            _ => None,
        }
    }

    /// Visibility decision for a raw (insertion, deletion) pair. Returns
    /// the possibly-rewritten deletion time (historical modes mask
    /// deletions after their time). Public so the zero-copy wire-shipping
    /// path and the equivalence tests can apply the exact same rule to raw
    /// page bytes.
    pub fn admit(&self, ins: Timestamp, del: Timestamp) -> Option<Timestamp> {
        match self {
            ReadMode::Current(_) => {
                (!ins.is_uncommitted() && del == Timestamp::ZERO).then_some(del)
            }
            ReadMode::Historical(t) => visible_at(ins, del, *t).then_some(del),
            ReadMode::SeeDeleted | ReadMode::SeeDeletedLocked(_) => Some(del),
            ReadMode::SeeDeletedHistorical(t) => {
                if ins.is_uncommitted() || ins > *t {
                    return None; // inserted after the HWM: not visible
                }
                // Deletions after the HWM appear undone (§5.3).
                Some(if del > *t { Timestamp::ZERO } else { del })
            }
        }
    }
}

/// Scans one table's pruned segments, applying the mode's visibility rule.
/// The page latch is never held across `next()`/`next_batch()` calls.
pub struct SeqScan {
    pool: Arc<BufferPool>,
    table: TableId,
    mode: ReadMode,
    bounds: ScanBounds,
    desc: TupleDesc,
    pages: Vec<PageId>,
    page_idx: usize,
    /// Rows buffered for the tuple-at-a-time `next()` shim, drained
    /// front-to-back without cloning.
    buffer: VecDeque<Tuple>,
}

impl SeqScan {
    pub fn new(pool: Arc<BufferPool>, table: TableId, mode: ReadMode) -> DbResult<Self> {
        Self::with_bounds(pool, table, mode, ScanBounds::all())
    }

    /// Scan with segment pruning bounds (the recovery queries set these).
    pub fn with_bounds(
        pool: Arc<BufferPool>,
        table: TableId,
        mode: ReadMode,
        bounds: ScanBounds,
    ) -> DbResult<Self> {
        let heap = pool.table(table)?;
        let desc = heap.desc().clone();
        Ok(SeqScan {
            pool,
            table,
            mode,
            bounds,
            desc,
            pages: Vec::new(),
            page_idx: 0,
            buffer: VecDeque::new(),
        })
    }

    fn load_pages(&mut self) -> DbResult<()> {
        let heap = self.pool.table(self.table)?;
        self.pages.clear();
        for (seg, _) in heap.prune(&self.bounds) {
            self.pages.extend(heap.segment_page_ids(seg));
        }
        self.page_idx = 0;
        self.buffer.clear();
        Ok(())
    }

    /// Scans forward, appending admitted tuples to `out`, until at least
    /// `min_rows` have been appended or the pages run out. Returns `false`
    /// when the scan is exhausted.
    ///
    /// Fast path (any stored table: the version pair leads every row): the
    /// visibility check runs on the raw timestamps at their fixed slot
    /// offsets, and only admitted rows are decoded — straight into `out`,
    /// with no per-page vector and no clones.
    fn fill_into(&mut self, min_rows: usize, out: &mut Vec<Tuple>) -> DbResult<bool> {
        let start = out.len();
        let fast = self.desc.has_version_columns();
        let mode = self.mode;
        let desc = &self.desc;
        let mut admitted = 0u64;
        let mut skipped = 0u64;
        while self.page_idx < self.pages.len() {
            if out.len() - start >= min_rows {
                break;
            }
            let pid = self.pages[self.page_idx];
            self.page_idx += 1;
            self.pool.with_page(mode.lock_tid(), pid, |page| {
                for slot in page.occupied_slots() {
                    let bytes = page.read(slot)?;
                    let (ins, del) = if fast {
                        raw_version_timestamps(bytes)?
                    } else {
                        // Degenerate schema without the leading version
                        // pair: fall back to decode-first.
                        let t = Tuple::read_fixed(desc, &mut Decoder::new(bytes))?;
                        (t.insertion_ts()?, t.deletion_ts()?)
                    };
                    match mode.admit(ins, del) {
                        None => skipped += 1,
                        Some(masked_del) => {
                            let mut tup = Tuple::read_fixed(desc, &mut Decoder::new(bytes))?;
                            if masked_del != del {
                                tup.set_deletion_ts(masked_del);
                            }
                            out.push(tup);
                            admitted += 1;
                        }
                    }
                }
                Ok(())
            })?;
        }
        let metrics = self.pool.metrics();
        metrics.add_scan_rows_admitted(admitted);
        metrics.add_scan_rows_skipped_predecode(skipped);
        Ok(self.page_idx < self.pages.len())
    }
}

impl Operator for SeqScan {
    fn open(&mut self) -> DbResult<()> {
        self.load_pages()
    }

    fn next(&mut self) -> DbResult<Option<Tuple>> {
        loop {
            if let Some(t) = self.buffer.pop_front() {
                return Ok(Some(t));
            }
            let mut batch = Vec::new();
            let more = self.fill_into(1, &mut batch)?;
            if batch.is_empty() && !more {
                return Ok(None);
            }
            self.buffer.extend(batch);
        }
    }

    fn next_batch(&mut self, max: usize, out: &mut Vec<Tuple>) -> DbResult<bool> {
        // Drain anything an earlier next() call left buffered.
        let mut budget = max;
        while budget > 0 {
            match self.buffer.pop_front() {
                Some(t) => {
                    out.push(t);
                    budget -= 1;
                }
                None => break,
            }
        }
        if budget == 0 {
            return Ok(!self.buffer.is_empty() || self.page_idx < self.pages.len());
        }
        self.fill_into(budget, out)
    }

    fn rewind(&mut self) -> DbResult<()> {
        self.load_pages()
    }

    fn close(&mut self) {}

    fn tuple_desc(&self) -> TupleDesc {
        self.desc.clone()
    }
}

/// Materializing scan that also yields physical record ids — the form DML
/// executors and the local halves of the recovery queries need.
pub fn scan_rids(
    pool: &Arc<BufferPool>,
    table: TableId,
    mode: ReadMode,
    bounds: ScanBounds,
    mut pred: impl FnMut(&Tuple) -> DbResult<bool>,
) -> DbResult<Vec<(RecordId, Tuple)>> {
    let heap = pool.table(table)?;
    let desc = heap.desc().clone();
    let fast = desc.has_version_columns();
    let mut out = Vec::new();
    // Per-page scratch, reused across pages; the predicate runs outside the
    // page latch (it may reach back into the engine).
    let mut page_buf: Vec<(RecordId, Tuple)> = Vec::new();
    let mut admitted = 0u64;
    let mut skipped = 0u64;
    for (seg, _) in heap.prune(&bounds) {
        for pid in heap.segment_page_ids(seg) {
            pool.with_page(mode.lock_tid(), pid, |page| {
                for slot in page.occupied_slots() {
                    let bytes = page.read(slot)?;
                    let (ins, del) = if fast {
                        raw_version_timestamps(bytes)?
                    } else {
                        let t = Tuple::read_fixed(&desc, &mut Decoder::new(bytes))?;
                        (t.insertion_ts()?, t.deletion_ts()?)
                    };
                    match mode.admit(ins, del) {
                        None => skipped += 1,
                        Some(masked) => {
                            let mut tup = Tuple::read_fixed(&desc, &mut Decoder::new(bytes))?;
                            if masked != del {
                                tup.set_deletion_ts(masked);
                            }
                            page_buf.push((RecordId::new(pid, slot), tup));
                            admitted += 1;
                        }
                    }
                }
                Ok(())
            })?;
            for (rid, tup) in page_buf.drain(..) {
                if pred(&tup)? {
                    out.push((rid, tup));
                }
            }
        }
    }
    let metrics: &Metrics = pool.metrics();
    metrics.add_scan_rows_admitted(admitted);
    metrics.add_scan_rows_skipped_predecode(skipped);
    Ok(out)
}

/// Primary-key lookup through the engine's index with mode visibility.
pub fn index_lookup(
    engine: &harbor_engine::Engine,
    table: TableId,
    key: i64,
    mode: ReadMode,
) -> DbResult<Vec<(RecordId, Tuple)>> {
    let idx = engine.index(table)?;
    let rids = idx.lookup(engine.pool(), key)?;
    let mut out = Vec::new();
    for rid in rids {
        let tup = match engine.read_tuple(rid) {
            Ok(t) => t,
            Err(_) => continue, // removed concurrently
        };
        let ins = tup.insertion_ts()?;
        let del = tup.deletion_ts()?;
        if let Some(tid) = mode.lock_tid() {
            engine
                .pool()
                .lock_page(tid, rid.page, harbor_storage::LockMode::Shared)?;
        }
        if let Some(masked) = mode.admit(ins, del) {
            let mut tup = tup;
            if masked != del {
                tup.set_deletion_ts(masked);
            }
            out.push((rid, tup));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::collect;
    use harbor_common::{FieldType, SiteId, StorageConfig, Value};
    use harbor_engine::{Engine, EngineOptions, StepLogging};
    use std::path::PathBuf;

    fn setup(name: &str) -> (Arc<Engine>, TableId, PathBuf) {
        let dir = std::env::temp_dir()
            .join("harbor-scan-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let e = Engine::open(
            &dir,
            EngineOptions::harbor(SiteId(0), StorageConfig::for_tests()),
        )
        .unwrap();
        let def = e
            .create_table(
                "t",
                vec![
                    ("id".into(), FieldType::Int64),
                    ("v".into(), FieldType::Int32),
                ],
            )
            .unwrap();
        (e, def.id, dir)
    }

    fn tid(n: u64) -> TransactionId {
        TransactionId::from_parts(SiteId(0), n)
    }

    /// Builds the Figure 3-1-like history: insert 1,2 at t1; insert 3 at
    /// t2; delete 2 at t3; insert 4 at t4; update 4 at t6.
    fn build_history(e: &Engine, table: TableId) {
        let t = tid(1);
        e.begin(t).unwrap();
        e.insert(t, table, vec![Value::Int64(1), Value::Int32(0)])
            .unwrap();
        let r2 = e
            .insert(t, table, vec![Value::Int64(2), Value::Int32(0)])
            .unwrap();
        e.commit(t, Timestamp(1), StepLogging::OFF).unwrap();
        let t = tid(2);
        e.begin(t).unwrap();
        e.insert(t, table, vec![Value::Int64(3), Value::Int32(0)])
            .unwrap();
        e.commit(t, Timestamp(2), StepLogging::OFF).unwrap();
        let t = tid(3);
        e.begin(t).unwrap();
        e.delete(t, r2).unwrap();
        e.commit(t, Timestamp(3), StepLogging::OFF).unwrap();
        let t = tid(4);
        e.begin(t).unwrap();
        let r4 = e
            .insert(t, table, vec![Value::Int64(4), Value::Int32(20)])
            .unwrap();
        e.commit(t, Timestamp(4), StepLogging::OFF).unwrap();
        let t = tid(6);
        e.begin(t).unwrap();
        e.update(t, r4, vec![Value::Int64(4), Value::Int32(21)])
            .unwrap();
        e.commit(t, Timestamp(6), StepLogging::OFF).unwrap();
    }

    fn ids(rows: &[Tuple]) -> Vec<i64> {
        let mut v: Vec<i64> = rows.iter().map(|t| t.get(2).as_i64().unwrap()).collect();
        v.sort();
        v
    }

    #[test]
    fn historical_scans_match_figure_3_1() {
        let (e, table, dir) = setup("hist");
        build_history(&e, table);
        let at = |t: u64| -> Vec<i64> {
            let mut scan =
                SeqScan::new(e.pool().clone(), table, ReadMode::Historical(Timestamp(t))).unwrap();
            ids(&collect(&mut scan).unwrap())
        };
        assert_eq!(at(1), vec![1, 2]);
        assert_eq!(at(2), vec![1, 2, 3]);
        assert_eq!(at(3), vec![1, 3]);
        assert_eq!(at(5), vec![1, 3, 4]);
        assert_eq!(at(6), vec![1, 3, 4]); // updated version visible
                                          // No locks were taken by any historical scan.
        assert_eq!(e.locks().held_count(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn current_scan_hides_deleted_and_uncommitted() {
        let (e, table, dir) = setup("current");
        build_history(&e, table);
        // An uncommitted insert from a live transaction.
        let t = tid(9);
        e.begin(t).unwrap();
        e.insert(t, table, vec![Value::Int64(99), Value::Int32(0)])
            .unwrap();
        let reader = tid(10);
        e.begin(reader).unwrap();
        // Scan in Current mode would block on the X-locked page; scan
        // historical to verify invisibility rules instead, then commit the
        // writer and scan current.
        e.commit(t, Timestamp(7), StepLogging::OFF).unwrap();
        let mut scan = SeqScan::new(e.pool().clone(), table, ReadMode::Current(reader)).unwrap();
        let rows = collect(&mut scan).unwrap();
        assert_eq!(ids(&rows), vec![1, 3, 4, 99]);
        e.abort(reader, StepLogging::OFF).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn see_deleted_exposes_everything() {
        let (e, table, dir) = setup("seedel");
        build_history(&e, table);
        let mut scan = SeqScan::new(e.pool().clone(), table, ReadMode::SeeDeleted).unwrap();
        let rows = collect(&mut scan).unwrap();
        // 1, 2(deleted), 3, 4-old(deleted), 4-new = 5 rows.
        assert_eq!(rows.len(), 5);
        let deleted: Vec<i64> = rows
            .iter()
            .filter(|t| t.deletion_ts().unwrap() != Timestamp::ZERO)
            .map(|t| t.get(2).as_i64().unwrap())
            .collect();
        assert_eq!(deleted.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn see_deleted_historical_masks_future_deletions() {
        let (e, table, dir) = setup("sdh");
        build_history(&e, table);
        // As of HWM=5: tuple 4-old (deleted at 6) must appear UNdeleted;
        // 4-new (inserted at 6) must not appear.
        let mut scan = SeqScan::new(
            e.pool().clone(),
            table,
            ReadMode::SeeDeletedHistorical(Timestamp(5)),
        )
        .unwrap();
        let rows = collect(&mut scan).unwrap();
        assert_eq!(rows.len(), 4); // 1, 2(deleted@3), 3, 4-old
        let four: Vec<&Tuple> = rows
            .iter()
            .filter(|t| t.get(2).as_i64().unwrap() == 4)
            .collect();
        assert_eq!(four.len(), 1);
        assert_eq!(four[0].deletion_ts().unwrap(), Timestamp::ZERO);
        // Tuple 2 was deleted at 3 <= HWM: deletion remains visible.
        let two: Vec<&Tuple> = rows
            .iter()
            .filter(|t| t.get(2).as_i64().unwrap() == 2)
            .collect();
        assert_eq!(two[0].deletion_ts().unwrap(), Timestamp(3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_rids_returns_physical_addresses() {
        let (e, table, dir) = setup("rids");
        build_history(&e, table);
        let hits = scan_rids(
            e.pool(),
            table,
            ReadMode::SeeDeleted,
            ScanBounds::all(),
            |t| Ok(t.get(2).as_i64()? == 4),
        )
        .unwrap();
        assert_eq!(hits.len(), 2, "both versions of tuple 4");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn index_lookup_respects_visibility() {
        let (e, table, dir) = setup("idx");
        build_history(&e, table);
        let current = index_lookup(&e, table, 4, ReadMode::Historical(Timestamp(7))).unwrap();
        assert_eq!(current.len(), 1);
        assert_eq!(current[0].1.get(3), &Value::Int32(21));
        let all = index_lookup(&e, table, 4, ReadMode::SeeDeleted).unwrap();
        assert_eq!(all.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
