//! Table scans with the three read modes of the thesis.
//!
//! * [`ReadMode::Current`] — sees the latest committed data; takes
//!   transactional page read locks (strict 2PL side of §3.1's concurrency
//!   model).
//! * [`ReadMode::Historical`] — sees the database as of a past time `T`;
//!   **takes no locks at all** (§3.3), which is what lets recovery Phase 2
//!   read replicas without quiescing the system.
//! * [`ReadMode::SeeDeleted`] — the recovery special mode (§3.4, §5.1):
//!   delete filtering is off and both timestamps are exposed as ordinary
//!   fields; available unlocked (Phases 1/2) or with a transaction id whose
//!   locks have already been taken at table granularity (Phase 3).
//!
//! Scans prune whole segments via the [`ScanBounds`] annotations before
//! touching any page (§4.2).
//!
//! Scanning is **batched and late-materializing**: the fast path reads the
//! insertion/deletion timestamps at their fixed offsets straight from the
//! page bytes and applies [`ReadMode::admit`] *before* decoding, so rows the
//! visibility check rejects are never materialized. Admitted rows decode
//! directly into the caller's batch buffer ([`Operator::next_batch`]); the
//! tuple-at-a-time [`Operator::next`] remains as a shim.

use crate::op::Operator;
use harbor_common::codec::Decoder;
use harbor_common::config::DEFAULT_SCAN_BATCH;
use harbor_common::time::visible_at;
use harbor_common::tuple::{raw_version_timestamps, FixedLayout};
use harbor_common::{
    DbError, DbResult, Metrics, PageId, RecordId, TableId, Timestamp, TransactionId, Tuple,
    TupleDesc,
};
use harbor_storage::{BufferPool, ScanBounds, SegmentedHeapFile, ZoneEntry};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Arc;

/// Visibility/locking mode for reads.
#[derive(Clone, Copy, Debug)]
pub enum ReadMode {
    /// Latest committed data, with transactional read locks.
    Current(TransactionId),
    /// Snapshot as of the given time; lock-free.
    Historical(Timestamp),
    /// All tuples (including deleted and uncommitted), timestamps exposed;
    /// lock-free.
    SeeDeleted,
    /// As [`SeeDeleted`](ReadMode::SeeDeleted), but attributed to a
    /// transaction for lock accounting (recovery Phase 3 runs with table
    /// read locks already held).
    SeeDeletedLocked(TransactionId),
    /// Historical + see-deleted: the recovery Phase 2 queries
    /// (`SEE DELETED HISTORICAL WITH TIME hwm`): deleted tuples appear, but
    /// tuples inserted after the HWM do not, and deletions after the HWM
    /// read as "not deleted" (§5.3).
    SeeDeletedHistorical(Timestamp),
}

impl ReadMode {
    /// Transaction to charge page locks to, if any.
    pub fn lock_tid(&self) -> Option<TransactionId> {
        match self {
            ReadMode::Current(t) | ReadMode::SeeDeletedLocked(t) => Some(*t),
            _ => None,
        }
    }

    /// Visibility decision for a raw (insertion, deletion) pair. Returns
    /// the possibly-rewritten deletion time (historical modes mask
    /// deletions after their time). Public so the zero-copy wire-shipping
    /// path and the equivalence tests can apply the exact same rule to raw
    /// page bytes.
    pub fn admit(&self, ins: Timestamp, del: Timestamp) -> Option<Timestamp> {
        match self {
            ReadMode::Current(_) => {
                (!ins.is_uncommitted() && del == Timestamp::ZERO).then_some(del)
            }
            ReadMode::Historical(t) => visible_at(ins, del, *t).then_some(del),
            ReadMode::SeeDeleted | ReadMode::SeeDeletedLocked(_) => Some(del),
            ReadMode::SeeDeletedHistorical(t) => {
                if ins.is_uncommitted() || ins > *t {
                    return None; // inserted after the HWM: not visible
                }
                // Deletions after the HWM appear undone (§5.3).
                Some(if del > *t { Timestamp::ZERO } else { del })
            }
        }
    }
}

/// Admission strategy for scans: the original scalar per-row
/// [`ReadMode::admit`] branch, or the chunked compare-mask kernel with
/// zone-map fast paths. Chunked is the default; Scalar remains for
/// comparison benches and the equivalence proptests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Admission {
    Scalar,
    #[default]
    Chunked,
}

/// Chunked admission kernel: decides visibility for up to 64 slots at once.
///
/// `occ` is the page's occupancy word for the chunk (bit `i` = slot
/// `chunk*64 + i` is live); `ins`/`del` are the raw timestamp columns
/// gathered from the fixed slot offsets (lanes of unoccupied slots may hold
/// garbage — `occ` masks them out). Returns `(admit, zero_del)`: bit `i` of
/// `admit` means slot `i` is visible, bit `i` of `zero_del` means its
/// deletion timestamp must be rewritten to ZERO (the §5.3 "deletions after
/// the HWM appear undone" mask; only [`ReadMode::SeeDeletedHistorical`]
/// sets it). The per-lane compares are branch-free so the compiler can
/// autovectorize each mode's loop; equivalence with the scalar
/// [`ReadMode::admit`] is pinned by proptests in `scan_equivalence.rs`.
pub fn admit_chunk(mode: &ReadMode, occ: u64, ins: &[u64; 64], del: &[u64; 64]) -> (u64, u64) {
    const UNC: u64 = u64::MAX;
    let mut admit = 0u64;
    let mut zero = 0u64;
    match *mode {
        ReadMode::Current(_) => {
            for i in 0..64 {
                let ok = ((ins[i] != UNC) & (del[i] == 0)) as u64;
                admit |= ok << i;
            }
        }
        ReadMode::Historical(t) => {
            let t = t.0;
            for i in 0..64 {
                let ok = ((ins[i] != UNC) & (ins[i] <= t) & ((del[i] == 0) | (del[i] > t))) as u64;
                admit |= ok << i;
            }
        }
        ReadMode::SeeDeleted | ReadMode::SeeDeletedLocked(_) => admit = u64::MAX,
        ReadMode::SeeDeletedHistorical(t) => {
            let t = t.0;
            for i in 0..64 {
                let ok = ((ins[i] != UNC) & (ins[i] <= t)) as u64;
                admit |= ok << i;
                let z = (del[i] > t) as u64;
                zero |= z << i;
            }
        }
    }
    (admit & occ, zero & occ)
}

/// Whole-page visibility classification from a zone-map summary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ZoneClass {
    /// Every occupied slot is visible with no timestamp rewriting: decode
    /// straight from the occupancy words, no per-row admission.
    AllVisible,
    /// No occupied slot is visible: skip the page entirely.
    NoneVisible,
    /// Per-row admission required.
    Mixed,
}

/// Little-endian timestamp word at `off` (the slice is always 8 bytes —
/// offsets come from the page's own slot geometry).
#[inline]
fn ts_word(data: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&data[off..off + 8]);
    u64::from_le_bytes(b)
}

fn zone_class(mode: &ReadMode, z: &ZoneEntry) -> ZoneClass {
    if z.rows == 0 {
        return ZoneClass::NoneVisible;
    }
    match *mode {
        ReadMode::Historical(t) => {
            if z.min_del > Timestamp::ZERO && z.max_del <= t {
                // Every row carries a deletion at or before t.
                ZoneClass::NoneVisible
            } else if !z.any_uncommitted && z.ins_max <= t && z.min_nonzero_del > t {
                ZoneClass::AllVisible
            } else {
                ZoneClass::Mixed
            }
        }
        ReadMode::Current(_) => {
            if z.min_del > Timestamp::ZERO {
                ZoneClass::NoneVisible
            } else if !z.any_uncommitted && z.max_del == Timestamp::ZERO {
                ZoneClass::AllVisible
            } else {
                ZoneClass::Mixed
            }
        }
        // See-deleted modes admit every occupied slot anyway (handled
        // before zone lookup); the historical variant rewrites deletion
        // timestamps, so no whole-page shortcut applies.
        _ => ZoneClass::Mixed,
    }
}

/// Scans one page with the chunked kernel, appending admitted tuples to
/// `out`. Returns `(admitted, skipped)` row counts; the caller owns
/// metrics. Zone-map fast paths apply to lock-free [`ReadMode::Historical`]
/// scans: a fully-dead page is skipped without faulting it in, a
/// fully-visible page decodes straight off the occupancy words, and a page
/// without a summary gets one computed lazily under the read latch (safe:
/// mutators invalidate under the frame *write* latch, so the store is
/// latch-serialized). The page latch is released before this returns — no
/// guard ever crosses a channel send in the parallel scan.
pub fn scan_page_chunked(
    pool: &BufferPool,
    heap: &SegmentedHeapFile,
    pid: PageId,
    mode: ReadMode,
    desc: &TupleDesc,
    out: &mut Vec<Tuple>,
) -> DbResult<(u64, u64)> {
    let use_zone = matches!(mode, ReadMode::Historical(_));
    if use_zone {
        if let Some(z) = heap.zone_entry(pid.page_no) {
            if zone_class(&mode, &z) == ZoneClass::NoneVisible {
                return Ok((0, z.rows as u64));
            }
        }
    }
    let mut admitted = 0u64;
    let mut skipped = 0u64;
    let layout = FixedLayout::new(desc);
    pool.with_page(mode.lock_tid(), pid, |page| {
        let class = match mode {
            ReadMode::SeeDeleted | ReadMode::SeeDeletedLocked(_) => ZoneClass::AllVisible,
            ReadMode::Historical(_) => {
                let z = heap.zone_entry(pid.page_no).unwrap_or_else(|| {
                    let z = ZoneEntry::compute(page);
                    heap.store_zone(pid.page_no, z);
                    z
                });
                zone_class(&mode, &z)
            }
            _ => ZoneClass::Mixed,
        };
        let tsize = page.tuple_size();
        let data = page.slot_data();
        let chunks = page.slot_count().div_ceil(64);
        match class {
            ZoneClass::NoneVisible => {
                skipped += page.used() as u64;
            }
            ZoneClass::AllVisible => {
                out.reserve(page.used());
                for chunk in 0..chunks {
                    let mut occ = page.occupancy_word(chunk);
                    // Decode contiguous runs of occupied slots so the hot
                    // loop advances a byte cursor instead of re-deriving
                    // slot offsets from bit positions.
                    while occ != 0 {
                        let start = occ.trailing_zeros() as usize;
                        let run = (occ >> start).trailing_ones() as usize;
                        occ &= !(((1u128 << run) - 1) as u64) << start;
                        let first = (chunk * 64 + start) * tsize;
                        let mut rest = &data[first..first + run * tsize];
                        for _ in 0..run {
                            out.push(layout.decode(rest)?);
                            rest = &rest[tsize..];
                        }
                        admitted += run as u64;
                    }
                }
            }
            ZoneClass::Mixed => {
                let mut ins = [0u64; 64];
                let mut del = [0u64; 64];
                for chunk in 0..chunks {
                    let occ = page.occupancy_word(chunk);
                    if occ == 0 {
                        continue;
                    }
                    let base = chunk * 64;
                    let lanes = 64.min(page.slot_count() - base);
                    for i in 0..lanes {
                        let off = (base + i) * tsize;
                        ins[i] = ts_word(data, off);
                        del[i] = ts_word(data, off + 8);
                    }
                    let (admit, zero) = admit_chunk(&mode, occ, &ins, &del);
                    skipped += (occ & !admit).count_ones() as u64;
                    let mut m = admit;
                    while m != 0 {
                        let i = m.trailing_zeros() as usize;
                        m &= m - 1;
                        let slot = base + i;
                        let bytes = &data[slot * tsize..(slot + 1) * tsize];
                        let mut tup = layout.decode(bytes)?;
                        if zero >> i & 1 == 1 {
                            tup.set_deletion_ts(Timestamp::ZERO);
                        }
                        out.push(tup);
                        admitted += 1;
                    }
                }
            }
        }
        Ok(())
    })?;
    Ok((admitted, skipped))
}

/// Scans one table's pruned segments, applying the mode's visibility rule.
/// The page latch is never held across `next()`/`next_batch()` calls.
pub struct SeqScan {
    pool: Arc<BufferPool>,
    table: TableId,
    mode: ReadMode,
    bounds: ScanBounds,
    desc: TupleDesc,
    admission: Admission,
    pages: Vec<PageId>,
    page_idx: usize,
    /// Rows buffered for the tuple-at-a-time `next()` shim, drained
    /// front-to-back without cloning.
    buffer: VecDeque<Tuple>,
}

impl SeqScan {
    pub fn new(pool: Arc<BufferPool>, table: TableId, mode: ReadMode) -> DbResult<Self> {
        Self::with_bounds(pool, table, mode, ScanBounds::all())
    }

    /// Scan with segment pruning bounds (the recovery queries set these).
    pub fn with_bounds(
        pool: Arc<BufferPool>,
        table: TableId,
        mode: ReadMode,
        bounds: ScanBounds,
    ) -> DbResult<Self> {
        let heap = pool.table(table)?;
        let desc = heap.desc().clone();
        Ok(SeqScan {
            pool,
            table,
            mode,
            bounds,
            desc,
            admission: Admission::default(),
            pages: Vec::new(),
            page_idx: 0,
            buffer: VecDeque::new(),
        })
    }

    /// Overrides the admission strategy (benches and equivalence tests).
    pub fn with_admission(mut self, admission: Admission) -> Self {
        self.admission = admission;
        self
    }

    fn load_pages(&mut self) -> DbResult<()> {
        let heap = self.pool.table(self.table)?;
        self.pages.clear();
        for (seg, _) in heap.prune(&self.bounds) {
            self.pages.extend(heap.segment_page_ids(seg));
        }
        self.page_idx = 0;
        self.buffer.clear();
        Ok(())
    }

    /// Scans forward, appending admitted tuples to `out`, until at least
    /// `min_rows` have been appended or the pages run out. Returns `false`
    /// when the scan is exhausted.
    ///
    /// Fast path (any stored table: the version pair leads every row): the
    /// visibility check runs on the raw timestamps at their fixed slot
    /// offsets, and only admitted rows are decoded — straight into `out`,
    /// with no per-page vector and no clones.
    fn fill_into(&mut self, min_rows: usize, out: &mut Vec<Tuple>) -> DbResult<bool> {
        if self.admission == Admission::Chunked && self.desc.has_version_columns() {
            return self.fill_into_chunked(min_rows, out);
        }
        let start = out.len();
        let fast = self.desc.has_version_columns();
        let mode = self.mode;
        let desc = &self.desc;
        let mut admitted = 0u64;
        let mut skipped = 0u64;
        while self.page_idx < self.pages.len() {
            if out.len() - start >= min_rows {
                break;
            }
            let pid = self.pages[self.page_idx];
            self.page_idx += 1;
            self.pool.with_page(mode.lock_tid(), pid, |page| {
                for slot in page.occupied_slots() {
                    let bytes = page.read(slot)?;
                    let (ins, del) = if fast {
                        raw_version_timestamps(bytes)?
                    } else {
                        // Degenerate schema without the leading version
                        // pair: fall back to decode-first.
                        let t = Tuple::read_fixed(desc, &mut Decoder::new(bytes))?;
                        (t.insertion_ts()?, t.deletion_ts()?)
                    };
                    match mode.admit(ins, del) {
                        None => skipped += 1,
                        Some(masked_del) => {
                            let mut tup = Tuple::read_fixed(desc, &mut Decoder::new(bytes))?;
                            if masked_del != del {
                                tup.set_deletion_ts(masked_del);
                            }
                            out.push(tup);
                            admitted += 1;
                        }
                    }
                }
                Ok(())
            })?;
        }
        let metrics = self.pool.metrics();
        metrics.add_scan_rows_admitted(admitted);
        metrics.add_scan_rows_skipped_predecode(skipped);
        Ok(self.page_idx < self.pages.len())
    }

    /// Chunked-kernel variant of [`SeqScan::fill_into`]: per-page zone-map
    /// classification plus the 64-lane compare-mask admission.
    fn fill_into_chunked(&mut self, min_rows: usize, out: &mut Vec<Tuple>) -> DbResult<bool> {
        let start = out.len();
        let heap = self.pool.table(self.table)?;
        let mut admitted = 0u64;
        let mut skipped = 0u64;
        while self.page_idx < self.pages.len() {
            if out.len() - start >= min_rows {
                break;
            }
            let pid = self.pages[self.page_idx];
            self.page_idx += 1;
            let (a, s) = scan_page_chunked(&self.pool, &heap, pid, self.mode, &self.desc, out)?;
            admitted += a;
            skipped += s;
        }
        let metrics = self.pool.metrics();
        metrics.add_scan_rows_admitted(admitted);
        metrics.add_scan_rows_skipped_predecode(skipped);
        Ok(self.page_idx < self.pages.len())
    }
}

impl Operator for SeqScan {
    fn open(&mut self) -> DbResult<()> {
        self.load_pages()
    }

    fn next(&mut self) -> DbResult<Option<Tuple>> {
        loop {
            if let Some(t) = self.buffer.pop_front() {
                return Ok(Some(t));
            }
            let mut batch = Vec::new();
            let more = self.fill_into(1, &mut batch)?;
            if batch.is_empty() && !more {
                return Ok(None);
            }
            self.buffer.extend(batch);
        }
    }

    fn next_batch(&mut self, max: usize, out: &mut Vec<Tuple>) -> DbResult<bool> {
        // Drain anything an earlier next() call left buffered.
        let mut budget = max;
        while budget > 0 {
            match self.buffer.pop_front() {
                Some(t) => {
                    out.push(t);
                    budget -= 1;
                }
                None => break,
            }
        }
        if budget == 0 {
            return Ok(!self.buffer.is_empty() || self.page_idx < self.pages.len());
        }
        self.fill_into(budget, out)
    }

    fn rewind(&mut self) -> DbResult<()> {
        self.load_pages()
    }

    fn close(&mut self) {}

    fn tuple_desc(&self) -> TupleDesc {
        self.desc.clone()
    }
}

/// Partitioned scan fan-out: splits the pruned page range into contiguous
/// partitions, scans each on its own worker thread with the chunked kernel,
/// and merges batches through bounded channels **in partition order** — the
/// output sequence is byte-identical to a single-threaded [`SeqScan`] over
/// the same pages (contiguous partitions drained in order reproduce page
/// order; slot order within a page is fixed). Workers draw no RNG and read
/// no wall clock, and each page belongs to exactly one partition, so
/// per-page disk-fault ordinals fire identically regardless of worker
/// interleaving — chaos traces replay unchanged.
///
/// Lock-free modes only benefit from fan-out; a mode that takes
/// transactional locks ([`ReadMode::lock_tid`]) degrades to one worker so
/// all its lock acquisitions happen on a single thread.
pub struct ParallelSeqScan {
    pool: Arc<BufferPool>,
    table: TableId,
    mode: ReadMode,
    bounds: ScanBounds,
    desc: TupleDesc,
    workers: usize,
    state: Option<ParState>,
}

struct ParState {
    /// One receiver per partition, drained strictly in order.
    rxs: Vec<mpsc::Receiver<DbResult<Vec<Tuple>>>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    cur: usize,
    pending: VecDeque<Tuple>,
}

impl ParallelSeqScan {
    pub fn new(
        pool: Arc<BufferPool>,
        table: TableId,
        mode: ReadMode,
        workers: usize,
    ) -> DbResult<Self> {
        Self::with_bounds(pool, table, mode, ScanBounds::all(), workers)
    }

    pub fn with_bounds(
        pool: Arc<BufferPool>,
        table: TableId,
        mode: ReadMode,
        bounds: ScanBounds,
        workers: usize,
    ) -> DbResult<Self> {
        let heap = pool.table(table)?;
        let desc = heap.desc().clone();
        Ok(ParallelSeqScan {
            pool,
            table,
            mode,
            bounds,
            desc,
            workers: workers.max(1),
            state: None,
        })
    }

    fn shutdown(&mut self) {
        if let Some(st) = self.state.take() {
            // Dropping the receivers unblocks any worker parked on a full
            // channel; then the joins are prompt.
            drop(st.rxs);
            for h in st.handles {
                let _ = h.join();
            }
        }
    }
}

impl Operator for ParallelSeqScan {
    fn open(&mut self) -> DbResult<()> {
        self.shutdown();
        let heap = self.pool.table(self.table)?;
        let mut pages = Vec::new();
        for (seg, _) in heap.prune(&self.bounds) {
            pages.extend(heap.segment_page_ids(seg));
        }
        let workers = if self.mode.lock_tid().is_some() {
            1
        } else {
            self.workers.min(pages.len().max(1))
        };
        let per = pages.len().div_ceil(workers);
        let mut rxs = Vec::new();
        let mut handles = Vec::new();
        for part in pages.chunks(per.max(1)) {
            let (tx, rx) = mpsc::sync_channel::<DbResult<Vec<Tuple>>>(4);
            let part = part.to_vec();
            let pool = self.pool.clone();
            let heap = heap.clone();
            let mode = self.mode;
            let desc = self.desc.clone();
            handles.push(std::thread::spawn(move || {
                let mut batch: Vec<Tuple> = Vec::new();
                let mut admitted = 0u64;
                let mut skipped = 0u64;
                for pid in part {
                    match scan_page_chunked(&pool, &heap, pid, mode, &desc, &mut batch) {
                        Ok((a, s)) => {
                            admitted += a;
                            skipped += s;
                            if batch.len() >= DEFAULT_SCAN_BATCH
                                && tx.send(Ok(std::mem::take(&mut batch))).is_err()
                            {
                                return; // merger went away
                            }
                        }
                        Err(e) => {
                            let _ = tx.send(Err(e));
                            return;
                        }
                    }
                }
                if !batch.is_empty() {
                    let _ = tx.send(Ok(batch));
                }
                let metrics = pool.metrics();
                metrics.add_scan_rows_admitted(admitted);
                metrics.add_scan_rows_skipped_predecode(skipped);
            }));
            rxs.push(rx);
        }
        self.state = Some(ParState {
            rxs,
            handles,
            cur: 0,
            pending: VecDeque::new(),
        });
        Ok(())
    }

    fn next(&mut self) -> DbResult<Option<Tuple>> {
        let mut batch = Vec::new();
        self.next_batch(1, &mut batch)?;
        Ok(batch.into_iter().next())
    }

    fn next_batch(&mut self, max: usize, out: &mut Vec<Tuple>) -> DbResult<bool> {
        let st = self
            .state
            .as_mut()
            .ok_or_else(|| DbError::Internal("ParallelSeqScan used before open()".into()))?;
        let mut budget = max;
        loop {
            while budget > 0 {
                match st.pending.pop_front() {
                    Some(t) => {
                        out.push(t);
                        budget -= 1;
                    }
                    None => break,
                }
            }
            if budget == 0 {
                return Ok(!st.pending.is_empty() || st.cur < st.rxs.len());
            }
            if st.cur >= st.rxs.len() {
                return Ok(false);
            }
            match st.rxs[st.cur].recv() {
                Ok(Ok(batch)) => st.pending.extend(batch),
                Ok(Err(e)) => return Err(e),
                Err(_) => st.cur += 1, // this partition is exhausted
            }
        }
    }

    fn rewind(&mut self) -> DbResult<()> {
        self.open()
    }

    fn close(&mut self) {
        self.shutdown();
    }

    fn tuple_desc(&self) -> TupleDesc {
        self.desc.clone()
    }
}

impl Drop for ParallelSeqScan {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Materializing scan that also yields physical record ids — the form DML
/// executors and the local halves of the recovery queries need.
pub fn scan_rids(
    pool: &Arc<BufferPool>,
    table: TableId,
    mode: ReadMode,
    bounds: ScanBounds,
    mut pred: impl FnMut(&Tuple) -> DbResult<bool>,
) -> DbResult<Vec<(RecordId, Tuple)>> {
    let heap = pool.table(table)?;
    let desc = heap.desc().clone();
    let fast = desc.has_version_columns();
    let mut out = Vec::new();
    // Per-page scratch, reused across pages; the predicate runs outside the
    // page latch (it may reach back into the engine).
    let mut page_buf: Vec<(RecordId, Tuple)> = Vec::new();
    let mut admitted = 0u64;
    let mut skipped = 0u64;
    for (seg, _) in heap.prune(&bounds) {
        for pid in heap.segment_page_ids(seg) {
            pool.with_page(mode.lock_tid(), pid, |page| {
                for slot in page.occupied_slots() {
                    let bytes = page.read(slot)?;
                    let (ins, del) = if fast {
                        raw_version_timestamps(bytes)?
                    } else {
                        let t = Tuple::read_fixed(&desc, &mut Decoder::new(bytes))?;
                        (t.insertion_ts()?, t.deletion_ts()?)
                    };
                    match mode.admit(ins, del) {
                        None => skipped += 1,
                        Some(masked) => {
                            let mut tup = Tuple::read_fixed(&desc, &mut Decoder::new(bytes))?;
                            if masked != del {
                                tup.set_deletion_ts(masked);
                            }
                            page_buf.push((RecordId::new(pid, slot), tup));
                            admitted += 1;
                        }
                    }
                }
                Ok(())
            })?;
            for (rid, tup) in page_buf.drain(..) {
                if pred(&tup)? {
                    out.push((rid, tup));
                }
            }
        }
    }
    let metrics: &Metrics = pool.metrics();
    metrics.add_scan_rows_admitted(admitted);
    metrics.add_scan_rows_skipped_predecode(skipped);
    Ok(out)
}

/// Primary-key lookup through the engine's index with mode visibility.
pub fn index_lookup(
    engine: &harbor_engine::Engine,
    table: TableId,
    key: i64,
    mode: ReadMode,
) -> DbResult<Vec<(RecordId, Tuple)>> {
    let idx = engine.index(table)?;
    let rids = idx.lookup(engine.pool(), key)?;
    let mut out = Vec::new();
    for rid in rids {
        let tup = match engine.read_tuple(rid) {
            Ok(t) => t,
            Err(_) => continue, // removed concurrently
        };
        let ins = tup.insertion_ts()?;
        let del = tup.deletion_ts()?;
        if let Some(tid) = mode.lock_tid() {
            engine
                .pool()
                .lock_page(tid, rid.page, harbor_storage::LockMode::Shared)?;
        }
        if let Some(masked) = mode.admit(ins, del) {
            let mut tup = tup;
            if masked != del {
                tup.set_deletion_ts(masked);
            }
            out.push((rid, tup));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::collect;
    use harbor_common::{FieldType, SiteId, StorageConfig, Value};
    use harbor_engine::{Engine, EngineOptions, StepLogging};
    use std::path::PathBuf;

    fn setup(name: &str) -> (Arc<Engine>, TableId, PathBuf) {
        let dir = std::env::temp_dir()
            .join("harbor-scan-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let e = Engine::open(
            &dir,
            EngineOptions::harbor(SiteId(0), StorageConfig::for_tests()),
        )
        .unwrap();
        let def = e
            .create_table(
                "t",
                vec![
                    ("id".into(), FieldType::Int64),
                    ("v".into(), FieldType::Int32),
                ],
            )
            .unwrap();
        (e, def.id, dir)
    }

    fn tid(n: u64) -> TransactionId {
        TransactionId::from_parts(SiteId(0), n)
    }

    /// Builds the Figure 3-1-like history: insert 1,2 at t1; insert 3 at
    /// t2; delete 2 at t3; insert 4 at t4; update 4 at t6.
    fn build_history(e: &Engine, table: TableId) {
        let t = tid(1);
        e.begin(t).unwrap();
        e.insert(t, table, vec![Value::Int64(1), Value::Int32(0)])
            .unwrap();
        let r2 = e
            .insert(t, table, vec![Value::Int64(2), Value::Int32(0)])
            .unwrap();
        e.commit(t, Timestamp(1), StepLogging::OFF).unwrap();
        let t = tid(2);
        e.begin(t).unwrap();
        e.insert(t, table, vec![Value::Int64(3), Value::Int32(0)])
            .unwrap();
        e.commit(t, Timestamp(2), StepLogging::OFF).unwrap();
        let t = tid(3);
        e.begin(t).unwrap();
        e.delete(t, r2).unwrap();
        e.commit(t, Timestamp(3), StepLogging::OFF).unwrap();
        let t = tid(4);
        e.begin(t).unwrap();
        let r4 = e
            .insert(t, table, vec![Value::Int64(4), Value::Int32(20)])
            .unwrap();
        e.commit(t, Timestamp(4), StepLogging::OFF).unwrap();
        let t = tid(6);
        e.begin(t).unwrap();
        e.update(t, r4, vec![Value::Int64(4), Value::Int32(21)])
            .unwrap();
        e.commit(t, Timestamp(6), StepLogging::OFF).unwrap();
    }

    fn ids(rows: &[Tuple]) -> Vec<i64> {
        let mut v: Vec<i64> = rows.iter().map(|t| t.get(2).as_i64().unwrap()).collect();
        v.sort();
        v
    }

    #[test]
    fn historical_scans_match_figure_3_1() {
        let (e, table, dir) = setup("hist");
        build_history(&e, table);
        let at = |t: u64| -> Vec<i64> {
            let mut scan =
                SeqScan::new(e.pool().clone(), table, ReadMode::Historical(Timestamp(t))).unwrap();
            ids(&collect(&mut scan).unwrap())
        };
        assert_eq!(at(1), vec![1, 2]);
        assert_eq!(at(2), vec![1, 2, 3]);
        assert_eq!(at(3), vec![1, 3]);
        assert_eq!(at(5), vec![1, 3, 4]);
        assert_eq!(at(6), vec![1, 3, 4]); // updated version visible
                                          // No locks were taken by any historical scan.
        assert_eq!(e.locks().held_count(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn current_scan_hides_deleted_and_uncommitted() {
        let (e, table, dir) = setup("current");
        build_history(&e, table);
        // An uncommitted insert from a live transaction.
        let t = tid(9);
        e.begin(t).unwrap();
        e.insert(t, table, vec![Value::Int64(99), Value::Int32(0)])
            .unwrap();
        let reader = tid(10);
        e.begin(reader).unwrap();
        // Scan in Current mode would block on the X-locked page; scan
        // historical to verify invisibility rules instead, then commit the
        // writer and scan current.
        e.commit(t, Timestamp(7), StepLogging::OFF).unwrap();
        let mut scan = SeqScan::new(e.pool().clone(), table, ReadMode::Current(reader)).unwrap();
        let rows = collect(&mut scan).unwrap();
        assert_eq!(ids(&rows), vec![1, 3, 4, 99]);
        e.abort(reader, StepLogging::OFF).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn see_deleted_exposes_everything() {
        let (e, table, dir) = setup("seedel");
        build_history(&e, table);
        let mut scan = SeqScan::new(e.pool().clone(), table, ReadMode::SeeDeleted).unwrap();
        let rows = collect(&mut scan).unwrap();
        // 1, 2(deleted), 3, 4-old(deleted), 4-new = 5 rows.
        assert_eq!(rows.len(), 5);
        let deleted: Vec<i64> = rows
            .iter()
            .filter(|t| t.deletion_ts().unwrap() != Timestamp::ZERO)
            .map(|t| t.get(2).as_i64().unwrap())
            .collect();
        assert_eq!(deleted.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn see_deleted_historical_masks_future_deletions() {
        let (e, table, dir) = setup("sdh");
        build_history(&e, table);
        // As of HWM=5: tuple 4-old (deleted at 6) must appear UNdeleted;
        // 4-new (inserted at 6) must not appear.
        let mut scan = SeqScan::new(
            e.pool().clone(),
            table,
            ReadMode::SeeDeletedHistorical(Timestamp(5)),
        )
        .unwrap();
        let rows = collect(&mut scan).unwrap();
        assert_eq!(rows.len(), 4); // 1, 2(deleted@3), 3, 4-old
        let four: Vec<&Tuple> = rows
            .iter()
            .filter(|t| t.get(2).as_i64().unwrap() == 4)
            .collect();
        assert_eq!(four.len(), 1);
        assert_eq!(four[0].deletion_ts().unwrap(), Timestamp::ZERO);
        // Tuple 2 was deleted at 3 <= HWM: deletion remains visible.
        let two: Vec<&Tuple> = rows
            .iter()
            .filter(|t| t.get(2).as_i64().unwrap() == 2)
            .collect();
        assert_eq!(two[0].deletion_ts().unwrap(), Timestamp(3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_rids_returns_physical_addresses() {
        let (e, table, dir) = setup("rids");
        build_history(&e, table);
        let hits = scan_rids(
            e.pool(),
            table,
            ReadMode::SeeDeleted,
            ScanBounds::all(),
            |t| Ok(t.get(2).as_i64()? == 4),
        )
        .unwrap();
        assert_eq!(hits.len(), 2, "both versions of tuple 4");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn index_lookup_respects_visibility() {
        let (e, table, dir) = setup("idx");
        build_history(&e, table);
        let current = index_lookup(&e, table, 4, ReadMode::Historical(Timestamp(7))).unwrap();
        assert_eq!(current.len(), 1);
        assert_eq!(current[0].1.get(3), &Value::Int32(21));
        let all = index_lookup(&e, table, 4, ReadMode::SeeDeleted).unwrap();
        assert_eq!(all.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
