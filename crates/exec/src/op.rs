//! The operator interface (thesis §6.1.5) and the simple relational
//! operators: filter, projection, limit, and an in-memory values source.

use crate::expr::Expr;
use harbor_common::{DbResult, Tuple, TupleDesc};

/// The standard iterator interface every operator exports (§6.1.5).
pub trait Operator: Send {
    fn open(&mut self) -> DbResult<()>;
    fn next(&mut self) -> DbResult<Option<Tuple>>;
    fn rewind(&mut self) -> DbResult<()>;
    fn close(&mut self);
    /// Relational schema of the operator's output tuples.
    fn tuple_desc(&self) -> TupleDesc;

    /// Appends roughly `max` more tuples to `out`, returning `false` once
    /// the stream is exhausted (a final partial batch may still have been
    /// appended). `max` is a batching *hint*: sources with a native batch
    /// path (e.g. `SeqScan`) work at page granularity and may overshoot by
    /// up to a page. The default implementation shims over `next()`, so
    /// every operator is batch-drivable.
    fn next_batch(&mut self, max: usize, out: &mut Vec<Tuple>) -> DbResult<bool> {
        for _ in 0..max {
            match self.next()? {
                Some(t) => out.push(t),
                None => return Ok(false),
            }
        }
        Ok(true)
    }
}

/// Drains an operator into a vector (open → next_batch* → close). Runs the
/// batched path so sources that implement it skip tuple-at-a-time overhead.
pub fn collect(op: &mut dyn Operator) -> DbResult<Vec<Tuple>> {
    op.open()?;
    let mut out = Vec::new();
    while op.next_batch(harbor_common::config::DEFAULT_SCAN_BATCH, &mut out)? {}
    op.close();
    Ok(out)
}

/// A source over a materialized vector of tuples (test fixture and the
/// receiving end of network scans).
pub struct Values {
    desc: TupleDesc,
    rows: Vec<Tuple>,
    at: usize,
}

impl Values {
    pub fn new(desc: TupleDesc, rows: Vec<Tuple>) -> Self {
        Values { desc, rows, at: 0 }
    }
}

impl Operator for Values {
    fn open(&mut self) -> DbResult<()> {
        self.at = 0;
        Ok(())
    }

    fn next(&mut self) -> DbResult<Option<Tuple>> {
        if self.at < self.rows.len() {
            self.at += 1;
            Ok(Some(self.rows[self.at - 1].clone()))
        } else {
            Ok(None)
        }
    }

    fn rewind(&mut self) -> DbResult<()> {
        self.at = 0;
        Ok(())
    }

    fn close(&mut self) {}

    fn tuple_desc(&self) -> TupleDesc {
        self.desc.clone()
    }
}

/// Predicate filter.
pub struct Filter {
    input: Box<dyn Operator>,
    pred: Expr,
}

impl Filter {
    pub fn new(input: Box<dyn Operator>, pred: Expr) -> Self {
        Filter { input, pred }
    }
}

impl Operator for Filter {
    fn open(&mut self) -> DbResult<()> {
        self.input.open()
    }

    fn next(&mut self) -> DbResult<Option<Tuple>> {
        while let Some(t) = self.input.next()? {
            if self.pred.eval_bool(&t)? {
                return Ok(Some(t));
            }
        }
        Ok(None)
    }

    fn rewind(&mut self) -> DbResult<()> {
        self.input.rewind()
    }

    fn close(&mut self) {
        self.input.close()
    }

    fn tuple_desc(&self) -> TupleDesc {
        self.input.tuple_desc()
    }
}

/// Column projection (by input column indices).
pub struct Project {
    input: Box<dyn Operator>,
    cols: Vec<usize>,
    desc: TupleDesc,
}

impl Project {
    pub fn new(input: Box<dyn Operator>, cols: Vec<usize>) -> Self {
        let desc = input.tuple_desc().project(&cols);
        Project { input, cols, desc }
    }
}

impl Operator for Project {
    fn open(&mut self) -> DbResult<()> {
        self.input.open()
    }

    fn next(&mut self) -> DbResult<Option<Tuple>> {
        Ok(self
            .input
            .next()?
            .map(|t| Tuple::new(self.cols.iter().map(|&i| t.get(i).clone()).collect())))
    }

    fn rewind(&mut self) -> DbResult<()> {
        self.input.rewind()
    }

    fn close(&mut self) {
        self.input.close()
    }

    fn tuple_desc(&self) -> TupleDesc {
        self.desc.clone()
    }
}

/// LIMIT n.
pub struct Limit {
    input: Box<dyn Operator>,
    limit: usize,
    seen: usize,
}

impl Limit {
    pub fn new(input: Box<dyn Operator>, limit: usize) -> Self {
        Limit {
            input,
            limit,
            seen: 0,
        }
    }
}

impl Operator for Limit {
    fn open(&mut self) -> DbResult<()> {
        self.seen = 0;
        self.input.open()
    }

    fn next(&mut self) -> DbResult<Option<Tuple>> {
        if self.seen >= self.limit {
            return Ok(None);
        }
        match self.input.next()? {
            Some(t) => {
                self.seen += 1;
                Ok(Some(t))
            }
            None => Ok(None),
        }
    }

    fn rewind(&mut self) -> DbResult<()> {
        self.seen = 0;
        self.input.rewind()
    }

    fn close(&mut self) {
        self.input.close()
    }

    fn tuple_desc(&self) -> TupleDesc {
        self.input.tuple_desc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harbor_common::{FieldType, Value};

    fn desc() -> TupleDesc {
        TupleDesc::new(vec![("a", FieldType::Int64), ("b", FieldType::Int32)])
    }

    fn rows() -> Vec<Tuple> {
        (0..10)
            .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int32((i * 10) as i32)]))
            .collect()
    }

    #[test]
    fn filter_project_limit_pipeline() {
        let src = Values::new(desc(), rows());
        let filtered = Filter::new(Box::new(src), Expr::col(0).ge(Expr::lit(5i64)));
        let projected = Project::new(Box::new(filtered), vec![1]);
        let mut limited = Limit::new(Box::new(projected), 3);
        let out = collect(&mut limited).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].get(0), &Value::Int32(50));
        assert_eq!(limited.tuple_desc().len(), 1);
        assert_eq!(limited.tuple_desc().field_name(0), "b");
    }

    #[test]
    fn rewind_restarts_the_stream() {
        let mut src = Values::new(desc(), rows());
        src.open().unwrap();
        assert!(src.next().unwrap().is_some());
        src.rewind().unwrap();
        let mut n = 0;
        while src.next().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 10);
    }
}
