//! WAL restart-path integration: fuzzy checkpoints bound the analysis
//! scan, recovery survives repeated crashes, and long logs replay exactly.

use harbor_common::ids::{PageId, RecordId, SiteId, TableId, TransactionId};
use harbor_common::{DbResult, DiskProfile, Metrics, Timestamp};
use harbor_wal::aries::{self, RecoveryStorage};
use harbor_wal::record::{LogPayload, LogRecord, RedoOp, TsField, TxnOutcome};
use harbor_wal::{GroupCommit, LogManager, Lsn};
use std::collections::HashMap;
use std::path::PathBuf;

#[derive(Default)]
struct MemStore {
    tuples: HashMap<RecordId, Vec<u8>>,
    ins_ts: HashMap<RecordId, Timestamp>,
    lsns: HashMap<PageId, Lsn>,
}

impl RecoveryStorage for MemStore {
    fn page_lsn(&mut self, pid: PageId) -> DbResult<Lsn> {
        Ok(*self.lsns.get(&pid).unwrap_or(&Lsn::ZERO))
    }

    fn apply(&mut self, op: &RedoOp, lsn: Lsn) -> DbResult<()> {
        match op {
            RedoOp::InsertTuple { rid, data } => {
                self.tuples.insert(*rid, data.clone());
                self.ins_ts.insert(*rid, Timestamp::UNCOMMITTED);
            }
            RedoOp::RemoveTuple { rid, .. } => {
                self.tuples.remove(rid);
                self.ins_ts.remove(rid);
            }
            RedoOp::SetTimestamp {
                rid,
                field: TsField::Insertion,
                new,
                ..
            } => {
                self.ins_ts.insert(*rid, *new);
            }
            RedoOp::SetTimestamp { .. } => {}
        }
        self.lsns.insert(op.page(), lsn);
        Ok(())
    }
}

fn temp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("harbor-wal-restart");
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(format!("{name}-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&p);
    let _ = std::fs::remove_file(dir.join(format!("{name}-{}.log.master", std::process::id())));
    p
}

fn open(path: &PathBuf) -> LogManager {
    LogManager::open(
        path,
        GroupCommit::enabled(),
        DiskProfile::fast(),
        Metrics::new(),
    )
    .unwrap()
}

fn tid(n: u64) -> TransactionId {
    TransactionId::from_parts(SiteId(0), n)
}

fn rid(n: u16) -> RecordId {
    RecordId::new(PageId::new(TableId(1), (n / 8) as u32), n % 8)
}

/// Appends one fully committed insert transaction.
fn committed_insert(log: &LogManager, n: u64) {
    let t = tid(n);
    let l = log.append(&LogRecord::new(t, Lsn::NONE, LogPayload::Begin));
    let l = log.append(&LogRecord::new(
        t,
        l,
        LogPayload::Update(RedoOp::InsertTuple {
            rid: rid(n as u16),
            data: vec![n as u8],
        }),
    ));
    let l = log.append(&LogRecord::new(
        t,
        l,
        LogPayload::Update(RedoOp::SetTimestamp {
            rid: rid(n as u16),
            field: TsField::Insertion,
            old: Timestamp::UNCOMMITTED,
            new: Timestamp(n),
        }),
    ));
    let l = log.append(&LogRecord::new(
        t,
        l,
        LogPayload::Commit {
            commit_time: Timestamp(n),
        },
    ));
    log.append(&LogRecord::new(
        t,
        l,
        LogPayload::End {
            outcome: TxnOutcome::Committed,
        },
    ));
}

#[test]
fn checkpoint_bounds_the_analysis_scan() {
    let path = temp("ckpt-bound");
    let log = open(&path);
    for n in 1..=50 {
        committed_insert(&log, n);
    }
    // Fuzzy checkpoint with empty ATT/DPT: everything before it is settled.
    let ckpt = log.append(&LogRecord::new(
        tid(0),
        Lsn::NONE,
        LogPayload::Checkpoint {
            att: vec![],
            dpt: vec![],
        },
    ));
    log.force(ckpt).unwrap();
    log.write_master(ckpt).unwrap();
    for n in 51..=55 {
        committed_insert(&log, n);
    }
    log.flush_all().unwrap();
    let a = aries::analysis(&log).unwrap();
    // 5 txns x 5 records + the checkpoint record itself.
    assert_eq!(
        a.scanned, 26,
        "analysis must start at the master checkpoint"
    );
    assert!(a.att.is_empty());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn long_log_replays_every_committed_insert() {
    let path = temp("long");
    let log = open(&path);
    let n = 500u64;
    for i in 1..=n {
        committed_insert(&log, i);
    }
    // One loser at the end.
    let loser = tid(9_999);
    let l = log.append(&LogRecord::new(loser, Lsn::NONE, LogPayload::Begin));
    log.append(&LogRecord::new(
        loser,
        l,
        LogPayload::Update(RedoOp::InsertTuple {
            rid: rid(600),
            data: vec![0xee],
        }),
    ));
    log.flush_all().unwrap();
    let mut store = MemStore::default();
    let report = aries::recover(&log, &mut store).unwrap();
    assert_eq!(store.tuples.len(), n as usize);
    assert_eq!(report.undone, 1);
    for i in 1..=n {
        assert_eq!(store.ins_ts[&rid(i as u16)], Timestamp(i));
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn triple_crash_during_recovery_is_idempotent() {
    let path = temp("triple");
    {
        let log = open(&path);
        committed_insert(&log, 1);
        // Two losers with interleaved updates.
        for (t, slot) in [(100u64, 10u16), (101, 11)] {
            let t = tid(t);
            let l = log.append(&LogRecord::new(t, Lsn::NONE, LogPayload::Begin));
            log.append(&LogRecord::new(
                t,
                l,
                LogPayload::Update(RedoOp::InsertTuple {
                    rid: rid(slot),
                    data: vec![slot as u8],
                }),
            ));
        }
        log.flush_all().unwrap();
    }
    // Recover three times, "crashing" (reopening) in between; the final
    // state is identical each time.
    let mut reference = None;
    for _ in 0..3 {
        let log = open(&path);
        let mut store = MemStore::default();
        aries::recover(&log, &mut store).unwrap();
        log.flush_all().unwrap();
        let mut keys: Vec<RecordId> = store.tuples.keys().copied().collect();
        keys.sort();
        match &reference {
            None => reference = Some(keys),
            Some(r) => assert_eq!(&keys, r),
        }
    }
    assert_eq!(reference.unwrap(), vec![rid(1)]);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn group_commit_delay_accumulates_bigger_batches() {
    let path = temp("delay");
    let metrics = Metrics::new();
    let log = std::sync::Arc::new(
        LogManager::open(
            &path,
            GroupCommit::Enabled {
                delay: Some(std::time::Duration::from_millis(10)),
            },
            DiskProfile::fast(),
            metrics.clone(),
        )
        .unwrap(),
    );
    let threads: Vec<_> = (0..16)
        .map(|i| {
            let log = log.clone();
            std::thread::spawn(move || {
                let t = tid(i);
                let l = log.append(&LogRecord::new(
                    t,
                    Lsn::NONE,
                    LogPayload::Commit {
                        commit_time: Timestamp(i + 1),
                    },
                ));
                log.force(l).unwrap();
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(metrics.forced_writes(), 16);
    assert!(
        metrics.physical_syncs() <= 4,
        "10 ms delay should batch 16 commits into a few syncs, got {}",
        metrics.physical_syncs()
    );
    std::fs::remove_file(&path).unwrap();
}
