//! ARIES restart recovery (Mohan et al. 1992) — the log-based baseline.
//!
//! The three classic passes over the log:
//!
//! 1. **Analysis** from the last fuzzy checkpoint: rebuild the active
//!    transaction table (ATT) and dirty page table (DPT).
//! 2. **Redo** from the minimum recLSN, repeating history: every update/CLR
//!    whose page may be stale is reapplied (guarded by the page LSN).
//! 3. **Undo**: losers are rolled back in descending LSN order, writing
//!    compensation log records so that a crash during recovery is itself
//!    recoverable. Prepared (in-doubt) transactions are *not* undone; they
//!    are returned to the caller, which must consult the coordinator
//!    (thesis §4.3.2: the PREPARE record "informs the recovering site that
//!    it may need to ask another site for the final consensus").
//!
//! The pass implementations are generic over [`RecoveryStorage`] so this
//! crate stays independent of the heap-file layer; `harbor-storage`
//! implements the trait for its buffer pool.

use crate::log::LogManager;
use crate::record::{CkptTxnState, LogPayload, LogRecord, RedoOp, TxnOutcome};
use crate::Lsn;
use harbor_common::{DbResult, PageId, TransactionId};
use std::collections::HashMap;

/// Page-level operations the redo/undo passes need from the storage layer.
pub trait RecoveryStorage {
    /// The LSN stamped on the page, or [`Lsn::ZERO`] if the page has never
    /// been written. Missing pages (never flushed) also report `Lsn::ZERO`
    /// so redo recreates them.
    fn page_lsn(&mut self, pid: PageId) -> DbResult<Lsn>;

    /// Applies `op` to its page and stamps `lsn` as the new page LSN.
    fn apply(&mut self, op: &RedoOp, lsn: Lsn) -> DbResult<()>;
}

/// Transaction status reconstructed by the analysis pass.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxnStatus {
    /// No commit/prepare record seen — a loser, to be undone.
    Active,
    /// Prepared but unresolved — in doubt; resolution needs the coordinator.
    InDoubt,
    /// Commit record seen but no End — recovery completes it.
    Committed,
    /// Abort record seen but no End — undo finishes the rollback.
    Aborting,
}

/// Output of the analysis pass.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Active transaction table: last LSN and status per unfinished txn.
    pub att: HashMap<TransactionId, (TxnStatus, Lsn)>,
    /// Dirty page table: first LSN that may not be reflected on disk.
    pub dpt: HashMap<PageId, Lsn>,
    /// Records examined.
    pub scanned: usize,
}

/// Summary of a full restart recovery.
#[derive(Debug, Default)]
pub struct AriesReport {
    pub analyzed: usize,
    pub redone: usize,
    pub undone: usize,
    /// Prepared transactions awaiting the coordinator's verdict.
    pub in_doubt: Vec<TransactionId>,
    /// Transactions whose commit was completed (End written).
    pub completed_commits: Vec<TransactionId>,
}

/// Runs the analysis pass starting from the master-record checkpoint.
pub fn analysis(log: &LogManager) -> DbResult<Analysis> {
    let start = log.read_master()?.unwrap_or(Lsn::ZERO);
    let mut out = Analysis::default();
    for (lsn, rec) in log.scan(start)? {
        out.scanned += 1;
        match &rec.payload {
            LogPayload::Checkpoint { att, dpt } => {
                for (tid, state, last_lsn) in att {
                    let status = match state {
                        CkptTxnState::Active => TxnStatus::Active,
                        CkptTxnState::Prepared => TxnStatus::InDoubt,
                        CkptTxnState::Committing => TxnStatus::Committed,
                        CkptTxnState::Aborting => TxnStatus::Aborting,
                    };
                    out.att.entry(*tid).or_insert((status, *last_lsn));
                }
                for (pid, rec_lsn) in dpt {
                    out.dpt.entry(*pid).or_insert(*rec_lsn);
                }
            }
            LogPayload::Begin => {
                out.att.insert(rec.tid, (TxnStatus::Active, lsn));
            }
            LogPayload::Update(op) | LogPayload::Clr { redo: op, .. } => {
                let entry = out.att.entry(rec.tid).or_insert((TxnStatus::Active, lsn));
                entry.1 = lsn;
                out.dpt.entry(op.page()).or_insert(lsn);
            }
            LogPayload::Prepare { .. } | LogPayload::PrepareToCommit { .. } => {
                let entry = out.att.entry(rec.tid).or_insert((TxnStatus::InDoubt, lsn));
                entry.0 = TxnStatus::InDoubt;
                entry.1 = lsn;
            }
            LogPayload::Commit { .. } => {
                let entry = out
                    .att
                    .entry(rec.tid)
                    .or_insert((TxnStatus::Committed, lsn));
                entry.0 = TxnStatus::Committed;
                entry.1 = lsn;
            }
            LogPayload::Abort => {
                let entry = out.att.entry(rec.tid).or_insert((TxnStatus::Aborting, lsn));
                entry.0 = TxnStatus::Aborting;
                entry.1 = lsn;
            }
            LogPayload::End { .. } => {
                out.att.remove(&rec.tid);
            }
        }
    }
    Ok(out)
}

/// Runs the redo pass ("repeating history").
pub fn redo(
    log: &LogManager,
    analysis: &Analysis,
    storage: &mut impl RecoveryStorage,
) -> DbResult<usize> {
    let Some(&start) = analysis.dpt.values().min() else {
        return Ok(0);
    };
    let mut redone = 0;
    for (lsn, rec) in log.scan(start)? {
        let op = match &rec.payload {
            LogPayload::Update(op) | LogPayload::Clr { redo: op, .. } => op,
            _ => continue,
        };
        let pid = op.page();
        // Page not dirty at crash, or dirtied only after this record.
        match analysis.dpt.get(&pid) {
            Some(&rec_lsn) if rec_lsn <= lsn => {}
            _ => continue,
        }
        // Pages store the LSN of the last record applied to them, so the
        // record at `lsn` is already reflected iff `page_lsn >= lsn`.
        if storage.page_lsn(pid)? >= lsn {
            continue;
        }
        storage.apply(op, lsn)?;
        redone += 1;
    }
    Ok(redone)
}

/// Runs the undo pass, rolling back losers and finishing aborts. Writes CLRs
/// and End records to `log`.
pub fn undo(
    log: &LogManager,
    analysis: &Analysis,
    storage: &mut impl RecoveryStorage,
) -> DbResult<usize> {
    // Next-LSN-to-undo per loser.
    let mut cursor: HashMap<TransactionId, Lsn> = HashMap::new();
    // Last LSN written for the txn (head of its chain), for CLR chaining.
    let mut chain_head: HashMap<TransactionId, Lsn> = HashMap::new();
    for (tid, (status, last_lsn)) in &analysis.att {
        if matches!(status, TxnStatus::Active | TxnStatus::Aborting) {
            cursor.insert(*tid, *last_lsn);
            chain_head.insert(*tid, *last_lsn);
        }
    }
    let mut undone = 0;
    // Undo in globally descending LSN order across all losers.
    while let Some((&tid, &lsn)) = cursor.iter().max_by_key(|(_, &l)| l) {
        if lsn.is_none() {
            cursor.remove(&tid);
            let end = LogRecord::new(
                tid,
                chain_head[&tid],
                LogPayload::End {
                    outcome: TxnOutcome::Aborted,
                },
            );
            log.append(&end);
            continue;
        }
        let (rec, _) = log.read_record(lsn)?;
        debug_assert_eq!(rec.tid, tid);
        match rec.payload {
            LogPayload::Update(op) => {
                let inverse = op.inverse();
                let clr = LogRecord::new(
                    tid,
                    chain_head[&tid],
                    LogPayload::Clr {
                        redo: inverse.clone(),
                        undo_next: rec.prev_lsn,
                    },
                );
                let clr_lsn = log.append(&clr);
                chain_head.insert(tid, clr_lsn);
                storage.apply(&inverse, clr_lsn)?;
                undone += 1;
                cursor.insert(tid, rec.prev_lsn);
            }
            LogPayload::Clr { undo_next, .. } => {
                cursor.insert(tid, undo_next);
            }
            _ => {
                cursor.insert(tid, rec.prev_lsn);
            }
        }
    }
    Ok(undone)
}

/// Full restart recovery: analysis, redo, undo, plus End records for
/// committed-but-unfinished transactions.
pub fn recover(log: &LogManager, storage: &mut impl RecoveryStorage) -> DbResult<AriesReport> {
    let a = analysis(log)?;
    let redone = redo(log, &a, storage)?;
    let undone = undo(log, &a, storage)?;
    let mut report = AriesReport {
        analyzed: a.scanned,
        redone,
        undone,
        ..Default::default()
    };
    for (tid, (status, last_lsn)) in &a.att {
        match status {
            TxnStatus::InDoubt => report.in_doubt.push(*tid),
            TxnStatus::Committed => {
                log.append(&LogRecord::new(
                    *tid,
                    *last_lsn,
                    LogPayload::End {
                        outcome: TxnOutcome::Committed,
                    },
                ));
                report.completed_commits.push(*tid);
            }
            _ => {}
        }
    }
    log.flush_all()?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::GroupCommit;
    use crate::record::TsField;
    use harbor_common::ids::{RecordId, SiteId, TableId};
    use harbor_common::{DiskProfile, Metrics, Timestamp};
    use std::path::PathBuf;

    /// A toy page store: slot -> bytes, with per-page LSNs.
    #[derive(Default)]
    struct MemStore {
        tuples: HashMap<RecordId, Vec<u8>>,
        ts: HashMap<RecordId, (Timestamp, Timestamp)>,
        lsns: HashMap<PageId, Lsn>,
    }

    impl RecoveryStorage for MemStore {
        fn page_lsn(&mut self, pid: PageId) -> DbResult<Lsn> {
            Ok(*self.lsns.get(&pid).unwrap_or(&Lsn::ZERO))
        }

        fn apply(&mut self, op: &RedoOp, lsn: Lsn) -> DbResult<()> {
            match op {
                RedoOp::InsertTuple { rid, data } => {
                    self.tuples.insert(*rid, data.clone());
                    self.ts
                        .insert(*rid, (Timestamp::UNCOMMITTED, Timestamp::ZERO));
                }
                RedoOp::RemoveTuple { rid, .. } => {
                    self.tuples.remove(rid);
                    self.ts.remove(rid);
                }
                RedoOp::SetTimestamp {
                    rid, field, new, ..
                } => {
                    let e = self.ts.entry(*rid).or_default();
                    match field {
                        TsField::Insertion => e.0 = *new,
                        TsField::Deletion => e.1 = *new,
                    }
                }
            }
            self.lsns.insert(op.page(), lsn);
            Ok(())
        }
    }

    fn tid(n: u64) -> TransactionId {
        TransactionId::from_parts(SiteId(0), n)
    }

    fn rid(slot: u16) -> RecordId {
        RecordId::new(PageId::new(TableId(1), 0), slot)
    }

    fn temp_log(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("harbor-aries-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{name}-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn open(path: &PathBuf) -> LogManager {
        LogManager::open(
            path,
            GroupCommit::enabled(),
            DiskProfile::fast(),
            Metrics::new(),
        )
        .unwrap()
    }

    /// Emits: txn1 inserts+commits (timestamps assigned), txn2 inserts but
    /// never commits. Returns the log.
    fn write_history(log: &LogManager) {
        // txn 1: full commit.
        let t1 = tid(1);
        let l = log.append(&LogRecord::new(t1, Lsn::NONE, LogPayload::Begin));
        let l = log.append(&LogRecord::new(
            t1,
            l,
            LogPayload::Update(RedoOp::InsertTuple {
                rid: rid(0),
                data: vec![1],
            }),
        ));
        let l = log.append(&LogRecord::new(
            t1,
            l,
            LogPayload::Prepare {
                coordinator: SiteId(9),
            },
        ));
        let l = log.append(&LogRecord::new(
            t1,
            l,
            LogPayload::Update(RedoOp::SetTimestamp {
                rid: rid(0),
                field: TsField::Insertion,
                old: Timestamp::UNCOMMITTED,
                new: Timestamp(5),
            }),
        ));
        let l = log.append(&LogRecord::new(
            t1,
            l,
            LogPayload::Commit {
                commit_time: Timestamp(5),
            },
        ));
        log.append(&LogRecord::new(
            t1,
            l,
            LogPayload::End {
                outcome: TxnOutcome::Committed,
            },
        ));
        // txn 2: loser.
        let t2 = tid(2);
        let l = log.append(&LogRecord::new(t2, Lsn::NONE, LogPayload::Begin));
        let l = log.append(&LogRecord::new(
            t2,
            l,
            LogPayload::Update(RedoOp::InsertTuple {
                rid: rid(1),
                data: vec![2],
            }),
        ));
        log.force(l).unwrap();
    }

    #[test]
    fn analysis_classifies_transactions() {
        let path = temp_log("analysis");
        let log = open(&path);
        write_history(&log);
        let a = analysis(&log).unwrap();
        assert!(!a.att.contains_key(&tid(1)), "ended txn dropped from ATT");
        assert_eq!(a.att[&tid(2)].0, TxnStatus::Active);
        assert!(a.dpt.contains_key(&PageId::new(TableId(1), 0)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn recover_repeats_history_then_rolls_back_losers() {
        let path = temp_log("recover");
        let log = open(&path);
        write_history(&log);
        // Crash with nothing on data disk: empty store.
        let mut store = MemStore::default();
        let report = recover(&log, &mut store).unwrap();
        assert!(report.redone >= 3);
        assert_eq!(report.undone, 1, "loser's insert rolled back");
        // Committed tuple present with its commit timestamp.
        assert_eq!(store.tuples.get(&rid(0)), Some(&vec![1]));
        assert_eq!(store.ts[&rid(0)].0, Timestamp(5));
        // Loser's tuple gone.
        assert!(!store.tuples.contains_key(&rid(1)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn recovery_is_idempotent_after_a_second_crash() {
        let path = temp_log("idempotent");
        let log = open(&path);
        write_history(&log);
        let mut store = MemStore::default();
        recover(&log, &mut store).unwrap();
        // Second restart over the extended log (with CLRs): same end state.
        let log2 = open(&path);
        let mut store2 = MemStore::default();
        recover(&log2, &mut store2).unwrap();
        assert_eq!(store2.tuples.get(&rid(0)), Some(&vec![1]));
        assert!(!store2.tuples.contains_key(&rid(1)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn prepared_transactions_stay_in_doubt() {
        let path = temp_log("indoubt");
        let log = open(&path);
        let t = tid(3);
        let l = log.append(&LogRecord::new(t, Lsn::NONE, LogPayload::Begin));
        let l = log.append(&LogRecord::new(
            t,
            l,
            LogPayload::Update(RedoOp::InsertTuple {
                rid: rid(0),
                data: vec![9],
            }),
        ));
        let l = log.append(&LogRecord::new(
            t,
            l,
            LogPayload::Prepare {
                coordinator: SiteId(0),
            },
        ));
        log.force(l).unwrap();
        let mut store = MemStore::default();
        let report = recover(&log, &mut store).unwrap();
        assert_eq!(report.in_doubt, vec![t]);
        assert_eq!(report.undone, 0, "in-doubt txn must not be rolled back");
        assert!(store.tuples.contains_key(&rid(0)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn redo_skips_pages_already_current() {
        let path = temp_log("skip");
        let log = open(&path);
        write_history(&log);
        let mut store = MemStore::default();
        recover(&log, &mut store).unwrap();
        // Re-run redo alone with the already-recovered store: page LSNs
        // are current, so nothing is reapplied.
        let a = analysis(&log).unwrap();
        let redone = redo(&log, &a, &mut store).unwrap();
        assert_eq!(redone, 0);
        std::fs::remove_file(&path).unwrap();
    }
}
