//! Write-ahead log and the ARIES baseline recovery algorithm.
//!
//! HARBOR's central claim is that a replicated warehouse does not need this
//! crate at runtime: optimized 2PC removes the workers' logs and optimized
//! 3PC removes the coordinator's too (thesis §4.3). The crate exists because
//! the evaluation compares HARBOR against the "gold standard" log-based
//! stack — traditional 2PC with forced writes plus ARIES restart recovery
//! (§2.1, §6.1.7) — so the baseline must be real, not mocked.
//!
//! Contents:
//! * [`record`] — undo/redo log records, including the timestamp-assignment
//!   records the versioned data model requires after PREPARE (§6.1.7);
//! * [`log`] — an append/force log manager with **group commit** (§6.2) and
//!   disk-profile-aware forced writes;
//! * [`aries`] — the three-pass analysis / redo / undo restart algorithm,
//!   generic over a [`aries::RecoveryStorage`] so it stays decoupled from the
//!   concrete heap-file implementation.

pub mod aries;
pub mod log;
pub mod record;

pub use log::{GroupCommit, LogManager};
pub use record::{LogPayload, LogRecord, RedoOp, TxnOutcome};

use std::fmt;

/// Log sequence number: the byte offset of a record in the log file.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Lsn(pub u64);

impl Lsn {
    /// LSN zero: "before every record"; pages start here.
    pub const ZERO: Lsn = Lsn(0);
    /// Sentinel for "no previous record" in per-transaction chains.
    pub const NONE: Lsn = Lsn(u64::MAX);

    pub fn is_none(self) -> bool {
        self == Self::NONE
    }
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            write!(f, "lsn<none>")
        } else {
            write!(f, "lsn{}", self.0)
        }
    }
}
