//! Log record types.
//!
//! Records carry enough information to redo and undo every physical change a
//! transaction makes. Because the data model is versioned (updates never
//! overwrite user fields, §4.1), the only page mutations are: writing a fresh
//! tuple (with an `UNCOMMITTED` insertion timestamp), physically removing a
//! tuple (rollback / recovery Phase 1), and overwriting one of the two
//! timestamp fields. Timestamp assignment happens at commit, *after* PREPARE,
//! so it produces its own log records (§6.1.7).

use crate::Lsn;
use harbor_common::codec::{Decoder, Encoder, Wire};
use harbor_common::{
    DbError, DbResult, PageId, RecordId, SiteId, TableId, Timestamp, TransactionId,
};

/// Which of the two reserved timestamp fields a [`RedoOp::SetTimestamp`]
/// touches.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TsField {
    Insertion,
    Deletion,
}

/// A physical, idempotent page operation. Redo applies it; each op carries
/// what undo needs alongside (physiological logging).
#[derive(Clone, PartialEq, Debug)]
pub enum RedoOp {
    /// Write `data` (a fixed-width encoded tuple) into `rid`'s slot.
    InsertTuple { rid: RecordId, data: Vec<u8> },
    /// Clear `rid`'s slot. `data` preserves the old contents for undo.
    RemoveTuple { rid: RecordId, data: Vec<u8> },
    /// Overwrite a timestamp field. `old` enables undo.
    SetTimestamp {
        rid: RecordId,
        field: TsField,
        old: Timestamp,
        new: Timestamp,
    },
}

impl RedoOp {
    /// The page this op touches (for the dirty page table).
    pub fn page(&self) -> PageId {
        match self {
            RedoOp::InsertTuple { rid, .. }
            | RedoOp::RemoveTuple { rid, .. }
            | RedoOp::SetTimestamp { rid, .. } => rid.page,
        }
    }

    /// The inverse operation, applied by the undo pass and rollbacks.
    pub fn inverse(&self) -> RedoOp {
        match self {
            RedoOp::InsertTuple { rid, data } => RedoOp::RemoveTuple {
                rid: *rid,
                data: data.clone(),
            },
            RedoOp::RemoveTuple { rid, data } => RedoOp::InsertTuple {
                rid: *rid,
                data: data.clone(),
            },
            RedoOp::SetTimestamp {
                rid,
                field,
                old,
                new,
            } => RedoOp::SetTimestamp {
                rid: *rid,
                field: *field,
                old: *new,
                new: *old,
            },
        }
    }
}

/// Final state of a finished transaction, recorded by `End`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxnOutcome {
    Committed,
    Aborted,
}

/// Transaction status snapshot stored in checkpoint records.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CkptTxnState {
    Active,
    Prepared,
    Committing,
    Aborting,
}

/// The body of a log record.
#[derive(Clone, PartialEq, Debug)]
pub enum LogPayload {
    /// Transaction start (implicit in ARIES; kept explicit for readability).
    Begin,
    /// A physical change, with undo information embedded in the op.
    Update(RedoOp),
    /// Compensation log record written while undoing. `undo_next` points at
    /// the next record of the transaction still to be undone.
    Clr {
        redo: RedoOp,
        undo_next: Lsn,
    },
    /// Worker vote record: the transaction is prepared (2PC first phase).
    Prepare {
        coordinator: SiteId,
    },
    /// Worker entered the prepared-to-commit state (canonical 3PC's middle
    /// phase; the optimized variant writes nothing here).
    PrepareToCommit {
        commit_time: Timestamp,
    },
    /// Commit point, carrying the commit timestamp assigned by the
    /// coordinator (the 2PC augmentation of §4.3.1).
    Commit {
        commit_time: Timestamp,
    },
    Abort,
    /// Transaction fully finished; its state can be forgotten.
    End {
        outcome: TxnOutcome,
    },
    /// Fuzzy checkpoint: active-transaction table and dirty page table.
    Checkpoint {
        att: Vec<(TransactionId, CkptTxnState, Lsn)>,
        dpt: Vec<(PageId, Lsn)>,
    },
}

/// A full log record: per-transaction backward chain plus payload.
#[derive(Clone, PartialEq, Debug)]
pub struct LogRecord {
    /// Transaction this record belongs to. Checkpoints use a reserved id.
    pub tid: TransactionId,
    /// Previous record of the same transaction ([`Lsn::NONE`] for the first).
    pub prev_lsn: Lsn,
    pub payload: LogPayload,
}

impl LogRecord {
    pub fn new(tid: TransactionId, prev_lsn: Lsn, payload: LogPayload) -> Self {
        LogRecord {
            tid,
            prev_lsn,
            payload,
        }
    }
}

fn encode_rid(enc: &mut Encoder, rid: RecordId) {
    enc.put_u32(rid.page.table.0);
    enc.put_u32(rid.page.page_no);
    enc.put_u16(rid.slot);
}

fn decode_rid(dec: &mut Decoder<'_>) -> DbResult<RecordId> {
    let table = TableId(dec.get_u32()?);
    let page_no = dec.get_u32()?;
    let slot = dec.get_u16()?;
    Ok(RecordId::new(PageId::new(table, page_no), slot))
}

impl Wire for RedoOp {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            RedoOp::InsertTuple { rid, data } => {
                enc.put_u8(0);
                encode_rid(enc, *rid);
                enc.put_bytes(data);
            }
            RedoOp::RemoveTuple { rid, data } => {
                enc.put_u8(1);
                encode_rid(enc, *rid);
                enc.put_bytes(data);
            }
            RedoOp::SetTimestamp {
                rid,
                field,
                old,
                new,
            } => {
                enc.put_u8(2);
                encode_rid(enc, *rid);
                enc.put_u8(matches!(field, TsField::Deletion) as u8);
                enc.put_u64(old.0);
                enc.put_u64(new.0);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> DbResult<Self> {
        Ok(match dec.get_u8()? {
            0 => RedoOp::InsertTuple {
                rid: decode_rid(dec)?,
                data: dec.get_bytes()?,
            },
            1 => RedoOp::RemoveTuple {
                rid: decode_rid(dec)?,
                data: dec.get_bytes()?,
            },
            2 => RedoOp::SetTimestamp {
                rid: decode_rid(dec)?,
                field: if dec.get_u8()? == 1 {
                    TsField::Deletion
                } else {
                    TsField::Insertion
                },
                old: Timestamp(dec.get_u64()?),
                new: Timestamp(dec.get_u64()?),
            },
            t => return Err(DbError::corrupt(format!("bad redo op tag {t}"))),
        })
    }
}

impl Wire for LogRecord {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.tid.0);
        enc.put_u64(self.prev_lsn.0);
        match &self.payload {
            LogPayload::Begin => enc.put_u8(0),
            LogPayload::Update(op) => {
                enc.put_u8(1);
                op.encode(enc);
            }
            LogPayload::Clr { redo, undo_next } => {
                enc.put_u8(2);
                redo.encode(enc);
                enc.put_u64(undo_next.0);
            }
            LogPayload::Prepare { coordinator } => {
                enc.put_u8(3);
                enc.put_u16(coordinator.0);
            }
            LogPayload::Commit { commit_time } => {
                enc.put_u8(4);
                enc.put_u64(commit_time.0);
            }
            LogPayload::Abort => enc.put_u8(5),
            LogPayload::End { outcome } => {
                enc.put_u8(6);
                enc.put_u8(matches!(outcome, TxnOutcome::Aborted) as u8);
            }
            LogPayload::PrepareToCommit { commit_time } => {
                enc.put_u8(8);
                enc.put_u64(commit_time.0);
            }
            LogPayload::Checkpoint { att, dpt } => {
                enc.put_u8(7);
                enc.put_u32(att.len() as u32);
                for (tid, state, last_lsn) in att {
                    enc.put_u64(tid.0);
                    enc.put_u8(match state {
                        CkptTxnState::Active => 0,
                        CkptTxnState::Prepared => 1,
                        CkptTxnState::Committing => 2,
                        CkptTxnState::Aborting => 3,
                    });
                    enc.put_u64(last_lsn.0);
                }
                enc.put_u32(dpt.len() as u32);
                for (pid, rec_lsn) in dpt {
                    enc.put_u32(pid.table.0);
                    enc.put_u32(pid.page_no);
                    enc.put_u64(rec_lsn.0);
                }
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> DbResult<Self> {
        let tid = TransactionId(dec.get_u64()?);
        let prev_lsn = Lsn(dec.get_u64()?);
        let payload = match dec.get_u8()? {
            0 => LogPayload::Begin,
            1 => LogPayload::Update(RedoOp::decode(dec)?),
            2 => LogPayload::Clr {
                redo: RedoOp::decode(dec)?,
                undo_next: Lsn(dec.get_u64()?),
            },
            3 => LogPayload::Prepare {
                coordinator: SiteId(dec.get_u16()?),
            },
            4 => LogPayload::Commit {
                commit_time: Timestamp(dec.get_u64()?),
            },
            5 => LogPayload::Abort,
            6 => LogPayload::End {
                outcome: if dec.get_u8()? == 1 {
                    TxnOutcome::Aborted
                } else {
                    TxnOutcome::Committed
                },
            },
            7 => {
                let n = dec.get_u32()? as usize;
                let mut att = Vec::with_capacity(n);
                for _ in 0..n {
                    let tid = TransactionId(dec.get_u64()?);
                    let state = match dec.get_u8()? {
                        0 => CkptTxnState::Active,
                        1 => CkptTxnState::Prepared,
                        2 => CkptTxnState::Committing,
                        3 => CkptTxnState::Aborting,
                        t => return Err(DbError::corrupt(format!("bad ckpt txn state {t}"))),
                    };
                    att.push((tid, state, Lsn(dec.get_u64()?)));
                }
                let m = dec.get_u32()? as usize;
                let mut dpt = Vec::with_capacity(m);
                for _ in 0..m {
                    let table = TableId(dec.get_u32()?);
                    let page_no = dec.get_u32()?;
                    dpt.push((PageId::new(table, page_no), Lsn(dec.get_u64()?)));
                }
                LogPayload::Checkpoint { att, dpt }
            }
            8 => LogPayload::PrepareToCommit {
                commit_time: Timestamp(dec.get_u64()?),
            },
            t => return Err(DbError::corrupt(format!("bad log payload tag {t}"))),
        };
        Ok(LogRecord {
            tid,
            prev_lsn,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harbor_common::ids::SiteId;

    fn rid() -> RecordId {
        RecordId::new(PageId::new(TableId(3), 7), 2)
    }

    fn tid() -> TransactionId {
        TransactionId::from_parts(SiteId(1), 99)
    }

    #[test]
    fn redo_op_round_trips() {
        for op in [
            RedoOp::InsertTuple {
                rid: rid(),
                data: vec![1, 2, 3],
            },
            RedoOp::RemoveTuple {
                rid: rid(),
                data: vec![],
            },
            RedoOp::SetTimestamp {
                rid: rid(),
                field: TsField::Deletion,
                old: Timestamp::ZERO,
                new: Timestamp(42),
            },
        ] {
            let bytes = op.to_vec();
            assert_eq!(RedoOp::from_slice(&bytes).unwrap(), op);
        }
    }

    #[test]
    fn inverse_of_inverse_is_identity() {
        let op = RedoOp::SetTimestamp {
            rid: rid(),
            field: TsField::Insertion,
            old: Timestamp::UNCOMMITTED,
            new: Timestamp(5),
        };
        assert_eq!(op.inverse().inverse(), op);
        let ins = RedoOp::InsertTuple {
            rid: rid(),
            data: vec![9],
        };
        assert_eq!(ins.inverse().inverse(), ins);
    }

    #[test]
    fn all_record_kinds_round_trip() {
        let records = vec![
            LogRecord::new(tid(), Lsn::NONE, LogPayload::Begin),
            LogRecord::new(
                tid(),
                Lsn(10),
                LogPayload::Update(RedoOp::InsertTuple {
                    rid: rid(),
                    data: vec![4, 5],
                }),
            ),
            LogRecord::new(
                tid(),
                Lsn(20),
                LogPayload::Clr {
                    redo: RedoOp::RemoveTuple {
                        rid: rid(),
                        data: vec![4, 5],
                    },
                    undo_next: Lsn::NONE,
                },
            ),
            LogRecord::new(
                tid(),
                Lsn(30),
                LogPayload::Prepare {
                    coordinator: SiteId(0),
                },
            ),
            LogRecord::new(
                tid(),
                Lsn(40),
                LogPayload::Commit {
                    commit_time: Timestamp(77),
                },
            ),
            LogRecord::new(
                tid(),
                Lsn(45),
                LogPayload::PrepareToCommit {
                    commit_time: Timestamp(78),
                },
            ),
            LogRecord::new(tid(), Lsn(50), LogPayload::Abort),
            LogRecord::new(
                tid(),
                Lsn(60),
                LogPayload::End {
                    outcome: TxnOutcome::Committed,
                },
            ),
            LogRecord::new(
                tid(),
                Lsn(70),
                LogPayload::Checkpoint {
                    att: vec![(tid(), CkptTxnState::Prepared, Lsn(5))],
                    dpt: vec![(PageId::new(TableId(1), 2), Lsn(3))],
                },
            ),
        ];
        for r in records {
            let bytes = r.to_vec();
            assert_eq!(LogRecord::from_slice(&bytes).unwrap(), r);
        }
    }
}
