//! The log manager: an append-only, force-on-demand on-disk log.
//!
//! Semantics follow the thesis exactly:
//!
//! * `append` buffers a record in memory and returns its LSN; nothing is
//!   durable yet (a crash loses the buffered tail, which is what makes
//!   forced writes at commit points necessary in the first place).
//! * `force(lsn)` synchronously makes every record up to and including `lsn`
//!   durable. With [`GroupCommit`] enabled, concurrent forces share a single
//!   physical sync ("batch together the log records for multiple
//!   transactions and write the records to disk using a single disk I/O",
//!   §4.3.2); disabled, each force performs its own serialized sync, which
//!   is the "2PC without group commit" configuration of Figure 6-2.
//! * Every logical force and every physical sync is counted in [`Metrics`]
//!   so the evaluation measures Table 4.2 rather than asserting it.
//!
//! On-disk frame: `[len: u32][fnv1a-checksum: u32][record bytes]`. The LSN of
//! a record is the byte offset of its frame; a torn or half-written tail
//! fails the checksum and is truncated at open, exactly the behaviour a
//! forced write protects against.

use crate::record::LogRecord;
use crate::Lsn;
use harbor_common::codec::{Encoder, Wire};
use harbor_common::{DbError, DbResult, DiskProfile, Metrics};
use parking_lot::{Condvar, Mutex};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Group commit configuration (§6.2: the evaluation uses group commit with
/// no delay timer; 1–5 ms timers only hurt).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GroupCommit {
    /// Concurrent forces batch into one physical sync, with an optional
    /// delay timer that holds the flusher back to accumulate more records.
    Enabled { delay: Option<Duration> },
    /// Every force performs its own physical sync (serialized).
    Disabled,
}

impl GroupCommit {
    pub fn enabled() -> Self {
        GroupCommit::Enabled { delay: None }
    }
}

const FRAME_HEADER: u64 = 8;

fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

struct Inner {
    file: File,
    /// Bytes appended but not yet written+synced. Starts at `buf_start`.
    buf: Vec<u8>,
    /// LSN of the first byte in `buf`.
    buf_start: u64,
    /// LSN one past the last appended byte.
    end_lsn: u64,
    /// LSN one past the last durable byte (always a frame boundary).
    durable_end: u64,
    /// A group-commit flusher is in flight.
    flushing: bool,
}

/// The write-ahead log for one site.
pub struct LogManager {
    path: PathBuf,
    inner: Mutex<Inner>,
    cond: Condvar,
    group_commit: GroupCommit,
    disk: DiskProfile,
    metrics: Metrics,
}

impl LogManager {
    /// Opens (or creates) the log at `path`, validating existing frames and
    /// truncating any torn tail left by a crash.
    pub fn open(
        path: impl AsRef<Path>,
        group_commit: GroupCommit,
        disk: DiskProfile,
        metrics: Metrics,
    ) -> DbResult<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let valid_end = scan_valid_end(&mut file)?;
        file.set_len(valid_end)?;
        file.seek(SeekFrom::Start(valid_end))?;
        Ok(LogManager {
            path,
            inner: Mutex::new(Inner {
                file,
                buf: Vec::new(),
                buf_start: valid_end,
                end_lsn: valid_end,
                durable_end: valid_end,
                flushing: false,
            }),
            cond: Condvar::new(),
            group_commit,
            disk,
            metrics,
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends a record to the in-memory tail and returns its LSN.
    pub fn append(&self, record: &LogRecord) -> Lsn {
        let mut body = Encoder::new();
        record.encode(&mut body);
        let body = body.into_bytes();
        let mut g = self.inner.lock();
        let lsn = Lsn(g.end_lsn);
        let mut frame = Vec::with_capacity(body.len() + FRAME_HEADER as usize);
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        g.end_lsn += frame.len() as u64;
        g.buf.extend_from_slice(&frame);
        drop(g);
        self.metrics.add_log_writes(1);
        lsn
    }

    /// Appends and immediately forces — the "force-write" (FW) of the
    /// protocol figures.
    pub fn append_forced(&self, record: &LogRecord) -> DbResult<Lsn> {
        let lsn = self.append(record);
        self.force(lsn)?;
        Ok(lsn)
    }

    /// Appends all `records` and forces once, to the LSN of the last one —
    /// the epoch group-commit write: one physical force covers the whole
    /// batch of per-txn decision records, and the `n - 1` syncs a serial
    /// commit loop would have issued are counted in `batched_syncs_saved`.
    /// Returns the LSN of the last record (`None` for an empty batch).
    pub fn append_all_forced(&self, records: &[LogRecord]) -> DbResult<Option<Lsn>> {
        let mut last = None;
        for r in records {
            last = Some(self.append(r));
        }
        match last {
            Some(lsn) => {
                self.force(lsn)?;
                self.metrics
                    .add_batched_syncs_saved(records.len() as u64 - 1);
                Ok(Some(lsn))
            }
            None => Ok(None),
        }
    }

    /// LSN one past the last durable byte.
    pub fn durable_end(&self) -> Lsn {
        Lsn(self.inner.lock().durable_end)
    }

    /// LSN one past the last appended byte.
    pub fn end(&self) -> Lsn {
        Lsn(self.inner.lock().end_lsn)
    }

    /// `true` if the record starting at `lsn` has reached stable storage.
    pub fn is_durable(&self, lsn: Lsn) -> bool {
        self.inner.lock().durable_end > lsn.0
    }

    /// Synchronously makes every record up to and including `lsn` durable.
    pub fn force(&self, lsn: Lsn) -> DbResult<()> {
        self.metrics.add_forced_writes(1);
        match self.group_commit {
            GroupCommit::Enabled { delay } => self.force_grouped(lsn, delay),
            GroupCommit::Disabled => self.force_solo(lsn),
        }
    }

    /// Flushes everything appended so far (used by WAL-before-page-write and
    /// by "periodically flush the log" in the recovery experiments, §6.4).
    pub fn flush_all(&self) -> DbResult<()> {
        let end = self.end();
        if end.0 == 0 {
            return Ok(());
        }
        self.force(Lsn(end.0 - 1))
    }

    fn force_grouped(&self, lsn: Lsn, delay: Option<Duration>) -> DbResult<()> {
        loop {
            let mut g = self.inner.lock();
            if g.durable_end > lsn.0 {
                return Ok(());
            }
            if g.flushing {
                // Another force is syncing; it will cover our records if it
                // took the buffer after our append — re-check when it ends.
                self.cond.wait(&mut g);
                continue;
            }
            g.flushing = true;
            drop(g);
            if let Some(d) = delay {
                // Group delay timer: hold back to accumulate more records.
                std::thread::sleep(d);
            }
            let res = self.do_flush();
            let mut g = self.inner.lock();
            g.flushing = false;
            drop(g);
            self.cond.notify_all();
            res?;
        }
    }

    fn force_solo(&self, lsn: Lsn) -> DbResult<()> {
        // Without group commit, "the synchronous log I/Os of different
        // transactions cannot be overlapped" (§6.3.1): a force whose
        // records were not yet durable when it was issued performs its own
        // serialized physical sync, even if a concurrent flush happened to
        // carry its bytes to the file in the meantime.
        {
            let g = self.inner.lock();
            if g.durable_end > lsn.0 {
                return Ok(()); // already durable before the call: no I/O
            }
        }
        loop {
            let mut g = self.inner.lock();
            if g.flushing {
                self.cond.wait(&mut g);
                continue;
            }
            g.flushing = true;
            drop(g);
            let res = self.do_flush();
            let mut g = self.inner.lock();
            g.flushing = false;
            drop(g);
            self.cond.notify_all();
            return res;
        }
    }

    /// Writes the current buffer to the file and syncs per the disk
    /// profile. The sync happens even when the buffer is empty: a solo
    /// (non-grouped) force models one dedicated disk operation.
    fn do_flush(&self) -> DbResult<()> {
        let (data, target_end, write_at) = {
            let mut g = self.inner.lock();
            let data = std::mem::take(&mut g.buf);
            let write_at = g.buf_start;
            g.buf_start = g.end_lsn;
            (data, g.end_lsn, write_at)
        };
        {
            // Write outside the inner lock would race appends to buf_start;
            // we already advanced buf_start, so concurrent appends go to the
            // new buffer and our slice is exclusively ours to write.
            let mut g = self.inner.lock();
            g.file.seek(SeekFrom::Start(write_at))?;
            g.file.write_all(&data)?;
            if self.disk.real_fsync {
                g.file.sync_data()?;
            }
            drop(g);
        }
        if let Some(lat) = self.disk.emulated_force_latency {
            std::thread::sleep(lat);
        }
        self.metrics.add_physical_syncs(1);
        let mut g = self.inner.lock();
        if g.durable_end < target_end {
            g.durable_end = target_end;
        }
        Ok(())
    }

    /// Reads the record at `lsn`, whether it is still buffered or on disk.
    /// Used by rollback and by the undo pass following `prev_lsn` chains.
    pub fn read_record(&self, lsn: Lsn) -> DbResult<(LogRecord, Lsn)> {
        let mut g = self.inner.lock();
        if lsn.0 >= g.buf_start {
            let off = (lsn.0 - g.buf_start) as usize;
            if off + FRAME_HEADER as usize > g.buf.len() {
                return Err(DbError::corrupt(format!("log read past end at {lsn}")));
            }
            let len = u32::from_le_bytes(g.buf[off..off + 4].try_into().unwrap()) as usize;
            let sum = u32::from_le_bytes(g.buf[off + 4..off + 8].try_into().unwrap());
            let start = off + FRAME_HEADER as usize;
            if start + len > g.buf.len() {
                return Err(DbError::corrupt("truncated buffered log record"));
            }
            let body = &g.buf[start..start + len];
            if fnv1a(body) != sum {
                return Err(DbError::corrupt("buffered log record checksum mismatch"));
            }
            let rec = LogRecord::from_slice(body)?;
            Ok((rec, Lsn(lsn.0 + FRAME_HEADER + len as u64)))
        } else {
            g.file.seek(SeekFrom::Start(lsn.0))?;
            let mut hdr = [0u8; 8];
            g.file.read_exact(&mut hdr)?;
            let len = u32::from_le_bytes(hdr[..4].try_into().unwrap()) as usize;
            let sum = u32::from_le_bytes(hdr[4..].try_into().unwrap());
            let mut body = vec![0u8; len];
            g.file.read_exact(&mut body)?;
            // Restore append position for subsequent flushes.
            let pos = g.buf_start;
            g.file.seek(SeekFrom::Start(pos))?;
            if fnv1a(&body) != sum {
                return Err(DbError::corrupt("on-disk log record checksum mismatch"));
            }
            let rec = LogRecord::from_slice(&body)?;
            Ok((rec, Lsn(lsn.0 + FRAME_HEADER + len as u64)))
        }
    }

    /// Iterates `(lsn, record)` pairs from `from` to the current end,
    /// including the buffered tail. Restart recovery scans only durable
    /// records because after a crash the buffer is empty by construction.
    pub fn scan(&self, from: Lsn) -> DbResult<Vec<(Lsn, LogRecord)>> {
        let end = self.end();
        let mut out = Vec::new();
        let mut at = from;
        while at < end {
            let (rec, next) = self.read_record(at)?;
            out.push((at, rec));
            at = next;
        }
        Ok(out)
    }

    /// Persists the LSN of the most recent checkpoint record to the master
    /// file next to the log (ARIES master record).
    pub fn write_master(&self, ckpt: Lsn) -> DbResult<()> {
        let master = self.master_path();
        let mut f = File::create(master)?;
        f.write_all(&ckpt.0.to_le_bytes())?;
        if self.disk.real_fsync {
            f.sync_data()?;
        }
        Ok(())
    }

    /// Reads the master record, if any checkpoint has been taken.
    pub fn read_master(&self) -> DbResult<Option<Lsn>> {
        let master = self.master_path();
        match std::fs::read(master) {
            Ok(bytes) if bytes.len() == 8 => {
                Ok(Some(Lsn(u64::from_le_bytes(bytes.try_into().unwrap()))))
            }
            Ok(_) => Err(DbError::corrupt("bad master record")),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn master_path(&self) -> PathBuf {
        let mut p = self.path.clone();
        let name = p
            .file_name()
            .map(|n| format!("{}.master", n.to_string_lossy()))
            .unwrap_or_else(|| "log.master".into());
        p.set_file_name(name);
        p
    }

    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }
}

/// Scans frames from the start of the file, returning the offset after the
/// last valid frame.
fn scan_valid_end(file: &mut File) -> DbResult<u64> {
    let len = file.metadata()?.len();
    let mut at: u64 = 0;
    file.seek(SeekFrom::Start(0))?;
    let mut hdr = [0u8; 8];
    loop {
        if at + FRAME_HEADER > len {
            return Ok(at);
        }
        file.seek(SeekFrom::Start(at))?;
        if file.read_exact(&mut hdr).is_err() {
            return Ok(at);
        }
        let body_len = u32::from_le_bytes(hdr[..4].try_into().unwrap()) as u64;
        let sum = u32::from_le_bytes(hdr[4..].try_into().unwrap());
        if at + FRAME_HEADER + body_len > len {
            return Ok(at);
        }
        let mut body = vec![0u8; body_len as usize];
        if file.read_exact(&mut body).is_err() {
            return Ok(at);
        }
        if fnv1a(&body) != sum || LogRecord::from_slice(&body).is_err() {
            return Ok(at);
        }
        at += FRAME_HEADER + body_len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{LogPayload, LogRecord};
    use harbor_common::ids::{SiteId, TransactionId};
    use harbor_common::Timestamp;

    fn tid(n: u64) -> TransactionId {
        TransactionId::from_parts(SiteId(0), n)
    }

    fn rec(n: u64) -> LogRecord {
        LogRecord::new(
            tid(n),
            Lsn::NONE,
            LogPayload::Commit {
                commit_time: Timestamp(n),
            },
        )
    }

    fn temp_log(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("harbor-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.log", std::process::id()))
    }

    fn open(path: &Path) -> LogManager {
        LogManager::open(
            path,
            GroupCommit::enabled(),
            DiskProfile::fast(),
            Metrics::new(),
        )
        .unwrap()
    }

    #[test]
    fn append_force_scan_round_trip() {
        let path = temp_log("round-trip");
        let _ = std::fs::remove_file(&path);
        let log = open(&path);
        let l0 = log.append(&rec(0));
        let l1 = log.append(&rec(1));
        assert!(!log.is_durable(l1));
        log.force(l1).unwrap();
        assert!(log.is_durable(l0) && log.is_durable(l1));
        let all = log.scan(Lsn::ZERO).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].1, rec(0));
        assert_eq!(all[1].1, rec(1));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unforced_tail_is_lost_on_crash() {
        let path = temp_log("crash-tail");
        let _ = std::fs::remove_file(&path);
        let log = open(&path);
        let l0 = log.append(&rec(0));
        log.force(l0).unwrap();
        let _l1 = log.append(&rec(1)); // never forced
        drop(log); // crash: buffered tail vanishes
        let log = open(&path);
        let all = log.scan(Lsn::ZERO).unwrap();
        assert_eq!(all.len(), 1, "only the forced record survives");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_at_open() {
        let path = temp_log("torn");
        let _ = std::fs::remove_file(&path);
        let log = open(&path);
        let l0 = log.append(&rec(0));
        log.force(l0).unwrap();
        drop(log);
        // Simulate a torn write: append garbage to the file.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xde, 0xad, 0xbe]).unwrap();
        }
        let log = open(&path);
        assert_eq!(log.scan(Lsn::ZERO).unwrap().len(), 1);
        // The log remains appendable after truncation.
        let l1 = log.append(&rec(7));
        log.force(l1).unwrap();
        assert_eq!(log.scan(Lsn::ZERO).unwrap().len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_record_reaches_buffered_and_durable_records() {
        let path = temp_log("read-mixed");
        let _ = std::fs::remove_file(&path);
        let log = open(&path);
        let l0 = log.append(&rec(0));
        log.force(l0).unwrap();
        let l1 = log.append(&rec(1)); // still buffered
        let (r0, _) = log.read_record(l0).unwrap();
        let (r1, _) = log.read_record(l1).unwrap();
        assert_eq!(r0, rec(0));
        assert_eq!(r1, rec(1));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn group_commit_batches_physical_syncs() {
        let path = temp_log("group");
        let _ = std::fs::remove_file(&path);
        let metrics = Metrics::new();
        let log = std::sync::Arc::new(
            LogManager::open(
                &path,
                GroupCommit::Enabled {
                    delay: Some(Duration::from_millis(5)),
                },
                DiskProfile::fast(),
                metrics.clone(),
            )
            .unwrap(),
        );
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let log = log.clone();
                std::thread::spawn(move || {
                    let l = log.append(&rec(i));
                    log.force(l).unwrap();
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(metrics.forced_writes(), 8);
        assert!(
            metrics.physical_syncs() < 8,
            "expected batching, got {} syncs",
            metrics.physical_syncs()
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_all_forced_syncs_once_per_batch() {
        let path = temp_log("epoch-batch");
        let _ = std::fs::remove_file(&path);
        let metrics = Metrics::new();
        let log = LogManager::open(
            &path,
            GroupCommit::Disabled,
            DiskProfile::fast(),
            metrics.clone(),
        )
        .unwrap();
        assert_eq!(log.append_all_forced(&[]).unwrap(), None);
        assert_eq!(metrics.physical_syncs(), 0);
        let batch: Vec<LogRecord> = (0..4).map(rec).collect();
        let last = log.append_all_forced(&batch).unwrap().unwrap();
        assert!(log.is_durable(last));
        assert_eq!(metrics.log_writes(), 4);
        assert_eq!(metrics.forced_writes(), 1);
        assert_eq!(metrics.physical_syncs(), 1);
        assert_eq!(metrics.batched_syncs_saved(), 3);
        assert_eq!(log.scan(Lsn::ZERO).unwrap().len(), 4);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn master_record_round_trips() {
        let path = temp_log("master");
        let _ = std::fs::remove_file(&path);
        let log = open(&path);
        assert_eq!(log.read_master().unwrap(), None);
        log.write_master(Lsn(1234)).unwrap();
        assert_eq!(log.read_master().unwrap(), Some(Lsn(1234)));
        std::fs::remove_file(&path).unwrap();
        let _ = std::fs::remove_file(path.with_file_name(format!(
            "{}.master",
            path.file_name().unwrap().to_string_lossy()
        )));
    }

    #[test]
    fn forced_write_counters_accumulate() {
        let path = temp_log("counters");
        let _ = std::fs::remove_file(&path);
        let metrics = Metrics::new();
        let log = LogManager::open(
            &path,
            GroupCommit::Disabled,
            DiskProfile::fast(),
            metrics.clone(),
        )
        .unwrap();
        let l = log.append_forced(&rec(0)).unwrap();
        assert!(log.is_durable(l));
        assert_eq!(metrics.log_writes(), 1);
        assert_eq!(metrics.forced_writes(), 1);
        assert_eq!(metrics.physical_syncs(), 1);
        std::fs::remove_file(&path).unwrap();
    }
}
