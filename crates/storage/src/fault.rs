//! Seeded disk-fault injection for [`crate::file::TableFile`].
//!
//! Mirrors the determinism discipline of `harbor_net::chaos`: every
//! injection decision is a pure function of `(seed, table, page, ordinal)`,
//! where the ordinal is a per-`(table, page, direction)` I/O counter. The
//! same seed over the same I/O sequence therefore replays a byte-identical
//! fault trace, which is what turns a failing chaos seed into a reproducer.
//!
//! Three fault kinds model the classic disk failure modes a checksummed
//! page format must catch:
//!
//! * **read error** — the read fails with an I/O error (bad sector, medium
//!   error). Transient at the call site: the next attempt draws a fresh
//!   ordinal.
//! * **torn write** — only a sector-aligned prefix of the page reaches the
//!   platter; the tail keeps its previous contents. Always detectable:
//!   the checksum trailer lives in the page's last bytes, so a torn page
//!   carries a stale (or zero) trailer over new contents.
//! * **bit flip** — one bit of the written page is inverted (bit rot,
//!   firmware bug). Detectable anywhere in the page, trailer included,
//!   because FNV-1a's absorption step is a bijection per byte.
//!
//! Probabilistic rates are per-mille, like `ChaosConfig`; exact
//! `(table, page, ordinal, kind)` coordinates can be targeted on top for
//! regression tests. A plan is created disarmed and enabled by the chaos
//! harness once the cluster is built, so file opens and directory loads
//! never fault.

use harbor_common::config::PAGE_SIZE;
use harbor_common::TableId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// The injectable disk-fault kinds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum DiskFaultKind {
    ReadError,
    TornWrite,
    BitFlip,
}

impl fmt::Display for DiskFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskFaultKind::ReadError => write!(f, "read-error"),
            DiskFaultKind::TornWrite => write!(f, "torn-write"),
            DiskFaultKind::BitFlip => write!(f, "bit-flip"),
        }
    }
}

/// An exact fault coordinate: the `ordinal`-th read (for
/// [`DiskFaultKind::ReadError`]) or write (torn write / bit flip) of
/// `page` in `table` fails. Ordinals count from zero per
/// `(table, page, direction)` while the plan is enabled.
#[derive(Clone, Copy, Debug)]
pub struct TargetedFault {
    pub table: TableId,
    pub page: u32,
    pub ordinal: u64,
    pub kind: DiskFaultKind,
}

/// Seed + rates + targeted coordinates for one site's disk.
#[derive(Clone, Debug)]
pub struct DiskFaultConfig {
    pub seed: u64,
    /// ‰ of page reads that fail with an injected I/O error.
    pub read_error_per_mille: u16,
    /// ‰ of page writes that persist only a sector-aligned prefix.
    pub torn_write_per_mille: u16,
    /// ‰ of page writes that land with one bit inverted.
    pub bit_flip_per_mille: u16,
    /// Spare page 0 — the directory header root — from the probabilistic
    /// rates. A damaged directory root only manifests at reopen and is
    /// full-rebuild territory, not page repair; unit tests exercise it via
    /// targeted faults instead. Defaults to `true`.
    pub spare_page_zero: bool,
    /// Exact faults injected regardless of the rates.
    pub targeted: Vec<TargetedFault>,
}

impl Default for DiskFaultConfig {
    fn default() -> Self {
        DiskFaultConfig {
            seed: 0,
            read_error_per_mille: 0,
            torn_write_per_mille: 0,
            bit_flip_per_mille: 0,
            spare_page_zero: true,
            targeted: Vec::new(),
        }
    }
}

impl DiskFaultConfig {
    /// The soak profile. The rates look high for per-mille, but a chaos
    /// workload is almost entirely pool-resident — a 100-odd-op run issues
    /// only a few dozen real page I/Os (checkpoints, restarts, recovery
    /// scans), so per-cent-scale rates are what it takes for every fault
    /// kind to actually fire without drowning the run in injected errors.
    pub fn soak(seed: u64) -> Self {
        DiskFaultConfig {
            seed,
            read_error_per_mille: 60,
            torn_write_per_mille: 90,
            bit_flip_per_mille: 90,
            spare_page_zero: true,
            targeted: Vec::new(),
        }
    }

    /// A plan that injects nothing probabilistically — targeted faults
    /// only.
    pub fn targeted_only(seed: u64, targeted: Vec<TargetedFault>) -> Self {
        DiskFaultConfig {
            seed,
            targeted,
            ..DiskFaultConfig::default()
        }
    }

    /// Derives the config for one cluster site: same knobs, the master
    /// seed mixed with the site id so sites draw independent fault
    /// streams while the whole cluster replays from one seed.
    pub fn for_site(&self, site: u16) -> Self {
        let mut cfg = self.clone();
        cfg.seed = splitmix64(self.seed ^ ((site as u64) << 1 | 1));
        cfg
    }
}

/// What to do to the buffer of an upcoming page write.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WriteFault {
    /// Persist only the first `keep` bytes; the on-disk tail survives.
    Torn { keep: usize },
    /// Invert bit `bit` (0-based over the whole page) of the written image.
    FlipBit { bit: usize },
}

/// One injected fault, for the canonical trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct DiskFaultRecord {
    table: u32,
    page: u32,
    ordinal: u64,
    kind: DiskFaultKind,
    /// Kept bytes for a torn write, flipped bit for a bit flip, 0 for a
    /// read error.
    detail: u64,
}

impl fmt::Display for DiskFaultRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} T{} p{} ordinal {} ({})",
            self.kind, self.table, self.page, self.ordinal, self.detail
        )
    }
}

/// One site's disk-fault plan: decides, per page I/O, whether and how to
/// corrupt it. Shared by every [`crate::file::TableFile`] of the site so
/// the trace and counters are site-wide.
pub struct DiskFaultPlan {
    cfg: DiskFaultConfig,
    enabled: AtomicBool,
    read_ordinals: Mutex<HashMap<(u32, u32), u64>>,
    write_ordinals: Mutex<HashMap<(u32, u32), u64>>,
    trace: Mutex<Vec<DiskFaultRecord>>,
    injected: AtomicU64,
}

impl fmt::Debug for DiskFaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DiskFaultPlan")
            .field("cfg", &self.cfg)
            .field("enabled", &self.is_enabled())
            .field("injected", &self.injected())
            .finish()
    }
}

/// SplitMix64 — the same generator the network chaos plane uses.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Pure draw for decision slot `k` of I/O `(table, page, ordinal)`.
fn draw(seed: u64, table: u32, page: u32, ordinal: u64, k: u64) -> u64 {
    let coord = ((table as u64) << 32 | page as u64).rotate_left(17)
        ^ ordinal.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (k << 56);
    splitmix64(seed ^ coord)
}

impl DiskFaultPlan {
    /// Builds a disarmed plan.
    pub fn new(cfg: DiskFaultConfig) -> Arc<Self> {
        Arc::new(DiskFaultPlan {
            cfg,
            enabled: AtomicBool::new(false),
            read_ordinals: Mutex::new(HashMap::new()),
            write_ordinals: Mutex::new(HashMap::new()),
            trace: Mutex::new(Vec::new()),
            injected: AtomicU64::new(0),
        })
    }

    /// Arms or disarms injection. Disabled I/Os consume no ordinals, so
    /// the decision stream is a function of the enabled I/O sequence only.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::SeqCst);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::SeqCst)
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    fn record(&self, rec: DiskFaultRecord) {
        self.injected.fetch_add(1, Ordering::SeqCst);
        self.trace.lock().push(rec);
    }

    fn targeted(
        &self,
        table: TableId,
        page: u32,
        ordinal: u64,
        write: bool,
    ) -> Option<DiskFaultKind> {
        self.cfg
            .targeted
            .iter()
            .find(|t| {
                t.table == table
                    && t.page == page
                    && t.ordinal == ordinal
                    && (t.kind != DiskFaultKind::ReadError) == write
            })
            .map(|t| t.kind)
    }

    /// Decides the fate of the upcoming read of `(table, page)`. `Some`
    /// means the read must fail with an injected I/O error.
    pub fn on_read(&self, table: TableId, page: u32) -> Option<DiskFaultKind> {
        if !self.is_enabled() {
            return None;
        }
        let ordinal = {
            let mut ords = self.read_ordinals.lock();
            let o = ords.entry((table.0, page)).or_insert(0);
            let cur = *o;
            *o += 1;
            cur
        };
        let hit = self.targeted(table, page, ordinal, false).is_some()
            || (!(self.cfg.spare_page_zero && page == 0)
                && self.cfg.read_error_per_mille > 0
                && draw(self.cfg.seed, table.0, page, ordinal, 0) % 1000
                    < self.cfg.read_error_per_mille as u64);
        if hit {
            self.record(DiskFaultRecord {
                table: table.0,
                page,
                ordinal,
                kind: DiskFaultKind::ReadError,
                detail: 0,
            });
            return Some(DiskFaultKind::ReadError);
        }
        None
    }

    /// Decides the fate of the upcoming write of `(table, page)`.
    pub fn on_write(&self, table: TableId, page: u32) -> Option<WriteFault> {
        if !self.is_enabled() {
            return None;
        }
        let ordinal = {
            let mut ords = self.write_ordinals.lock();
            let o = ords.entry((table.0, page)).or_insert(0);
            let cur = *o;
            *o += 1;
            cur
        };
        let spare = self.cfg.spare_page_zero && page == 0;
        let kind = match self.targeted(table, page, ordinal, true) {
            Some(k) => Some(k),
            None if spare => None,
            None => {
                let d = draw(self.cfg.seed, table.0, page, ordinal, 1) % 1000;
                if d < self.cfg.torn_write_per_mille as u64 {
                    Some(DiskFaultKind::TornWrite)
                } else if d < (self.cfg.torn_write_per_mille + self.cfg.bit_flip_per_mille) as u64 {
                    Some(DiskFaultKind::BitFlip)
                } else {
                    None
                }
            }
        };
        let fault = match kind? {
            // Keep a sector-aligned prefix: 0..=7 sectors of 512 bytes,
            // never the whole page (that would not be torn).
            DiskFaultKind::TornWrite => WriteFault::Torn {
                keep: 512 * (draw(self.cfg.seed, table.0, page, ordinal, 2) % 8) as usize,
            },
            DiskFaultKind::BitFlip => WriteFault::FlipBit {
                bit: (draw(self.cfg.seed, table.0, page, ordinal, 3) % (PAGE_SIZE as u64 * 8))
                    as usize,
            },
            DiskFaultKind::ReadError => unreachable!("read faults never target writes"),
        };
        self.record(DiskFaultRecord {
            table: table.0,
            page,
            ordinal,
            kind: match fault {
                WriteFault::Torn { .. } => DiskFaultKind::TornWrite,
                WriteFault::FlipBit { .. } => DiskFaultKind::BitFlip,
            },
            detail: match fault {
                WriteFault::Torn { keep } => keep as u64,
                WriteFault::FlipBit { bit } => bit as u64,
            },
        });
        Some(fault)
    }

    /// The canonical fault trace: every injected fault, sorted by
    /// coordinate so concurrent I/O interleavings don't affect the
    /// rendering. Two runs of the same seed over the same I/O sequence
    /// produce byte-identical traces.
    pub fn trace_canonical(&self) -> String {
        let mut recs = self.trace.lock().clone();
        recs.sort();
        let mut out = String::new();
        for r in recs {
            out.push_str(&format!("  {r}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_plan_injects_nothing() {
        let plan = DiskFaultPlan::new(DiskFaultConfig::soak(42));
        for p in 0..100 {
            assert!(plan.on_read(TableId(1), p).is_none());
            assert!(plan.on_write(TableId(1), p).is_none());
        }
        assert_eq!(plan.injected(), 0);
        assert!(plan.trace_canonical().is_empty());
    }

    #[test]
    fn same_seed_same_decisions() {
        let mk = || {
            let plan = DiskFaultPlan::new(DiskFaultConfig::soak(0xDEAD));
            plan.set_enabled(true);
            let mut decisions = Vec::new();
            for page in 1..50 {
                for _ in 0..4 {
                    decisions.push((
                        plan.on_read(TableId(2), page),
                        plan.on_write(TableId(2), page),
                    ));
                }
            }
            (decisions, plan.trace_canonical())
        };
        let (d1, t1) = mk();
        let (d2, t2) = mk();
        assert_eq!(d1, d2);
        assert_eq!(t1, t2);
        assert!(d1.iter().any(|(r, w)| r.is_some() || w.is_some()));
    }

    #[test]
    fn different_seeds_diverge() {
        let run = |seed| {
            let plan = DiskFaultPlan::new(DiskFaultConfig::soak(seed));
            plan.set_enabled(true);
            for page in 1..200 {
                plan.on_read(TableId(1), page);
                plan.on_write(TableId(1), page);
            }
            plan.trace_canonical()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn targeted_faults_fire_exactly_once() {
        let plan = DiskFaultPlan::new(DiskFaultConfig::targeted_only(
            7,
            vec![
                TargetedFault {
                    table: TableId(1),
                    page: 3,
                    ordinal: 1,
                    kind: DiskFaultKind::BitFlip,
                },
                TargetedFault {
                    table: TableId(1),
                    page: 3,
                    ordinal: 0,
                    kind: DiskFaultKind::ReadError,
                },
            ],
        ));
        plan.set_enabled(true);
        // Write ordinal 0 clean, ordinal 1 flipped, ordinal 2 clean.
        assert!(plan.on_write(TableId(1), 3).is_none());
        assert!(matches!(
            plan.on_write(TableId(1), 3),
            Some(WriteFault::FlipBit { .. })
        ));
        assert!(plan.on_write(TableId(1), 3).is_none());
        // Read ordinal 0 errors, ordinal 1 clean.
        assert_eq!(plan.on_read(TableId(1), 3), Some(DiskFaultKind::ReadError));
        assert!(plan.on_read(TableId(1), 3).is_none());
        // Other coordinates untouched.
        assert!(plan.on_write(TableId(2), 3).is_none());
        assert_eq!(plan.injected(), 2);
    }

    #[test]
    fn page_zero_is_spared_probabilistically() {
        let plan = DiskFaultPlan::new(DiskFaultConfig {
            read_error_per_mille: 1000,
            torn_write_per_mille: 500,
            bit_flip_per_mille: 500,
            ..DiskFaultConfig::soak(5)
        });
        plan.set_enabled(true);
        for _ in 0..64 {
            assert!(plan.on_read(TableId(1), 0).is_none());
            assert!(plan.on_write(TableId(1), 0).is_none());
            assert!(plan.on_read(TableId(1), 1).is_some());
            assert!(plan.on_write(TableId(1), 1).is_some());
        }
    }
}
