//! The 4 KB slotted heap page (thesis §6.1.1).
//!
//! Pages hold fixed-width tuples for one table. Layout:
//!
//! ```text
//! [page_lsn: u64][tuple_size: u16][slot_count: u16][used: u16][free_hint: u16]
//! [occupancy bitmap: ceil(slot_count / 8) bytes]
//! [slot 0][slot 1]…[slot slot_count-1]
//! ```
//!
//! * `page_lsn` supports the write-ahead-logging rule and ARIES redo (only
//!   meaningful when the site runs the log-based baseline; HARBOR leaves it
//!   at zero).
//! * `free_hint` is the index of the lowest possibly-free slot, maintained so
//!   inserts do not rescan the bitmap from zero — the thesis' "pointers to
//!   the first empty slot" optimization.
//! * Tuples within a slot are the fixed-width encoding of
//!   [`harbor_common::Tuple`]; the first 16 bytes of every tuple are the
//!   insertion and deletion timestamps, which [`Page::set_timestamp`] can
//!   overwrite in place (commit-time assignment, recovery updates).

use harbor_common::config::{PAGE_PAYLOAD, PAGE_SIZE};
use harbor_common::{DbError, DbResult, Timestamp};
use harbor_wal::record::TsField;
use harbor_wal::Lsn;

const OFF_LSN: usize = 0;
const OFF_TUPLE_SIZE: usize = 8;
const OFF_SLOT_COUNT: usize = 10;
const OFF_USED: usize = 12;
const OFF_FREE_HINT: usize = 14;
const HEADER: usize = 16;

/// Number of slots a page can hold for a given tuple width: solves
/// `HEADER + ceil(n/8) + n * size <= PAGE_PAYLOAD`. The page's last
/// [`harbor_common::config::PAGE_CRC_LEN`] bytes are the checksum trailer
/// stamped by the file layer on every write — slots never reach into it.
pub fn slots_per_page(tuple_size: usize) -> usize {
    assert!(tuple_size > 0, "zero-width tuples are not storable");
    let bits = (PAGE_PAYLOAD - HEADER) * 8;
    let n = bits / (tuple_size * 8 + 1);
    n.min(u16::MAX as usize)
}

/// An owned page buffer with typed accessors.
pub struct Page {
    buf: Box<[u8; PAGE_SIZE]>,
}

impl Page {
    /// A zeroed, uninitialized buffer (for reading raw bytes into).
    pub fn blank() -> Self {
        Page {
            buf: vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().unwrap(),
        }
    }

    /// Initializes an empty heap page for tuples of `tuple_size` bytes.
    pub fn init(tuple_size: usize) -> Self {
        let mut p = Page::blank();
        let slots = slots_per_page(tuple_size);
        p.buf[OFF_TUPLE_SIZE..OFF_TUPLE_SIZE + 2]
            .copy_from_slice(&(tuple_size as u16).to_le_bytes());
        p.buf[OFF_SLOT_COUNT..OFF_SLOT_COUNT + 2].copy_from_slice(&(slots as u16).to_le_bytes());
        p
    }

    /// Wraps raw bytes read from disk, validating the header.
    pub fn from_bytes(bytes: Box<[u8; PAGE_SIZE]>, expect_tuple_size: usize) -> DbResult<Self> {
        let p = Page { buf: bytes };
        let ts = p.tuple_size();
        if ts != expect_tuple_size {
            return Err(DbError::corrupt(format!(
                "page tuple size {ts} does not match schema width {expect_tuple_size}"
            )));
        }
        if p.slot_count() != slots_per_page(ts) {
            return Err(DbError::corrupt("page slot count inconsistent"));
        }
        Ok(p)
    }

    pub fn as_bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.buf
    }

    fn u16_at(&self, off: usize) -> u16 {
        u16::from_le_bytes(self.buf[off..off + 2].try_into().unwrap())
    }

    fn set_u16_at(&mut self, off: usize, v: u16) {
        self.buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    pub fn page_lsn(&self) -> Lsn {
        Lsn(u64::from_le_bytes(
            self.buf[OFF_LSN..OFF_LSN + 8].try_into().unwrap(),
        ))
    }

    pub fn set_page_lsn(&mut self, lsn: Lsn) {
        self.buf[OFF_LSN..OFF_LSN + 8].copy_from_slice(&lsn.0.to_le_bytes());
    }

    pub fn tuple_size(&self) -> usize {
        self.u16_at(OFF_TUPLE_SIZE) as usize
    }

    pub fn slot_count(&self) -> usize {
        self.u16_at(OFF_SLOT_COUNT) as usize
    }

    /// Number of occupied slots.
    pub fn used(&self) -> usize {
        self.u16_at(OFF_USED) as usize
    }

    pub fn free_slots(&self) -> usize {
        self.slot_count() - self.used()
    }

    pub fn is_full(&self) -> bool {
        self.used() == self.slot_count()
    }

    fn bitmap_len(&self) -> usize {
        self.slot_count().div_ceil(8)
    }

    fn slot_offset(&self, slot: usize) -> usize {
        HEADER + self.bitmap_len() + slot * self.tuple_size()
    }

    pub fn is_occupied(&self, slot: usize) -> bool {
        debug_assert!(slot < self.slot_count());
        let byte = self.buf[HEADER + slot / 8];
        byte & (1 << (slot % 8)) != 0
    }

    fn set_occupied(&mut self, slot: usize, occupied: bool) {
        let idx = HEADER + slot / 8;
        if occupied {
            self.buf[idx] |= 1 << (slot % 8);
        } else {
            self.buf[idx] &= !(1 << (slot % 8));
        }
    }

    /// Inserts tuple bytes into the lowest free slot, returning the slot.
    pub fn insert(&mut self, data: &[u8]) -> DbResult<u16> {
        if data.len() != self.tuple_size() {
            return Err(DbError::corrupt(format!(
                "tuple width {} does not match page tuple size {}",
                data.len(),
                self.tuple_size()
            )));
        }
        let start = self.u16_at(OFF_FREE_HINT) as usize;
        let count = self.slot_count();
        let mut found = None;
        for slot in start..count {
            if !self.is_occupied(slot) {
                found = Some(slot);
                break;
            }
        }
        let Some(slot) = found else {
            return Err(DbError::Full("page".into()));
        };
        self.insert_at(slot as u16, data)?;
        Ok(slot as u16)
    }

    /// Inserts into a specific slot (used by redo, which must be exact).
    pub fn insert_at(&mut self, slot: u16, data: &[u8]) -> DbResult<()> {
        let slot = slot as usize;
        if slot >= self.slot_count() {
            return Err(DbError::corrupt(format!("slot {slot} out of range")));
        }
        if data.len() != self.tuple_size() {
            return Err(DbError::corrupt("tuple width mismatch"));
        }
        if self.is_occupied(slot) {
            return Err(DbError::corrupt(format!("slot {slot} already occupied")));
        }
        let off = self.slot_offset(slot);
        let size = self.tuple_size();
        self.buf[off..off + size].copy_from_slice(data);
        self.set_occupied(slot, true);
        let used = self.used() + 1;
        self.set_u16_at(OFF_USED, used as u16);
        // Advance the free hint past contiguous occupied slots.
        let hint = self.u16_at(OFF_FREE_HINT) as usize;
        if slot == hint {
            let mut h = hint + 1;
            while h < self.slot_count() && self.is_occupied(h) {
                h += 1;
            }
            self.set_u16_at(OFF_FREE_HINT, h as u16);
        }
        Ok(())
    }

    /// Physically removes the tuple in `slot`, returning its bytes (undo
    /// information for the log-based mode; recovery Phase 1 discards it).
    pub fn remove(&mut self, slot: u16) -> DbResult<Vec<u8>> {
        let slot = slot as usize;
        if slot >= self.slot_count() || !self.is_occupied(slot) {
            return Err(DbError::corrupt(format!("remove of empty slot {slot}")));
        }
        let off = self.slot_offset(slot);
        let size = self.tuple_size();
        let data = self.buf[off..off + size].to_vec();
        self.set_occupied(slot, false);
        let used = self.used() - 1;
        self.set_u16_at(OFF_USED, used as u16);
        if (slot as u16) < self.u16_at(OFF_FREE_HINT) {
            self.set_u16_at(OFF_FREE_HINT, slot as u16);
        }
        Ok(data)
    }

    /// Raw bytes of the tuple in `slot`.
    pub fn read(&self, slot: u16) -> DbResult<&[u8]> {
        let slot = slot as usize;
        if slot >= self.slot_count() || !self.is_occupied(slot) {
            return Err(DbError::corrupt(format!("read of empty slot {slot}")));
        }
        let off = self.slot_offset(slot);
        Ok(&self.buf[off..off + self.tuple_size()])
    }

    /// Overwrites the tuple in `slot` (in-place recovery updates).
    pub fn write(&mut self, slot: u16, data: &[u8]) -> DbResult<()> {
        let slot = slot as usize;
        if slot >= self.slot_count() || !self.is_occupied(slot) {
            return Err(DbError::corrupt(format!("write to empty slot {slot}")));
        }
        if data.len() != self.tuple_size() {
            return Err(DbError::corrupt("tuple width mismatch"));
        }
        let off = self.slot_offset(slot);
        self.buf[off..off + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Reads one of the two reserved timestamp fields of the tuple in `slot`.
    pub fn timestamp(&self, slot: u16, field: TsField) -> DbResult<Timestamp> {
        let base = {
            let slot = slot as usize;
            if slot >= self.slot_count() || !self.is_occupied(slot) {
                return Err(DbError::corrupt(format!(
                    "timestamp read of empty slot {slot}"
                )));
            }
            self.slot_offset(slot)
        };
        let off = base
            + match field {
                TsField::Insertion => 0,
                TsField::Deletion => 8,
            };
        Ok(Timestamp(u64::from_le_bytes(
            self.buf[off..off + 8].try_into().unwrap(),
        )))
    }

    /// Overwrites one of the two reserved timestamp fields in place —
    /// commit-time assignment (§4.1) and recovery's deletion-time copies
    /// (§5.2–§5.4) both go through here.
    pub fn set_timestamp(&mut self, slot: u16, field: TsField, ts: Timestamp) -> DbResult<()> {
        let base = {
            let slot = slot as usize;
            if slot >= self.slot_count() || !self.is_occupied(slot) {
                return Err(DbError::corrupt(format!(
                    "timestamp write to empty slot {slot}"
                )));
            }
            self.slot_offset(slot)
        };
        let off = base
            + match field {
                TsField::Insertion => 0,
                TsField::Deletion => 8,
            };
        self.buf[off..off + 8].copy_from_slice(&ts.0.to_le_bytes());
        Ok(())
    }

    /// Iterator over occupied slot numbers.
    pub fn occupied_slots(&self) -> impl Iterator<Item = u16> + '_ {
        (0..self.slot_count() as u16).filter(move |&s| self.is_occupied(s as usize))
    }

    /// Occupancy bits for slots `chunk*64 .. chunk*64+64` as one little-endian
    /// word (bit `i` = slot `chunk*64 + i`), with bits at or past `slot_count`
    /// cleared. Feeds the chunked admission kernel: one load replaces 64
    /// per-slot bitmap probes.
    pub fn occupancy_word(&self, chunk: usize) -> u64 {
        let count = self.slot_count();
        let first = chunk * 64;
        if first >= count {
            return 0;
        }
        let byte = HEADER + first / 8;
        let avail = self.bitmap_len() - first / 8;
        let mut raw = [0u8; 8];
        let n = avail.min(8);
        raw[..n].copy_from_slice(&self.buf[byte..byte + n]);
        let mut word = u64::from_le_bytes(raw);
        let valid = count - first;
        if valid < 64 {
            word &= (1u64 << valid) - 1;
        }
        word
    }

    /// The contiguous slot region: slot `i`'s bytes are
    /// `slot_data()[i * tuple_size .. (i + 1) * tuple_size]`. Callers are
    /// responsible for consulting occupancy (via [`Page::occupancy_word`] or
    /// [`Page::is_occupied`]) before treating a slot's bytes as live.
    pub fn slot_data(&self) -> &[u8] {
        &self.buf[HEADER + self.bitmap_len()..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TS: usize = 24; // 16 bytes of timestamps + 8 byte payload

    fn tuple(ins: u64, del: u64, tail: u8) -> Vec<u8> {
        let mut v = Vec::with_capacity(TS);
        v.extend_from_slice(&ins.to_le_bytes());
        v.extend_from_slice(&del.to_le_bytes());
        v.extend_from_slice(&[tail; 8]);
        v
    }

    #[test]
    fn capacity_formula_fits_in_page() {
        for size in [8usize, 24, 64, 72, 200, 4000] {
            let n = slots_per_page(size);
            assert!(n >= 1 || size > PAGE_PAYLOAD - HEADER - 1);
            // Slots stay clear of the checksum trailer…
            assert!(
                HEADER + n.div_ceil(8) + n * size <= PAGE_PAYLOAD,
                "size={size}"
            );
            // …and one more slot must not fit.
            assert!(HEADER + (n + 1).div_ceil(8) + (n + 1) * size > PAGE_PAYLOAD);
        }
    }

    #[test]
    fn insert_read_remove_round_trip() {
        let mut p = Page::init(TS);
        let s0 = p.insert(&tuple(1, 0, 0xaa)).unwrap();
        let s1 = p.insert(&tuple(2, 0, 0xbb)).unwrap();
        assert_eq!((s0, s1), (0, 1));
        assert_eq!(p.used(), 2);
        assert_eq!(p.read(s1).unwrap()[16], 0xbb);
        let removed = p.remove(s0).unwrap();
        assert_eq!(removed[16], 0xaa);
        assert!(!p.is_occupied(0));
        // Freed slot is reused first (dense packing).
        let s2 = p.insert(&tuple(3, 0, 0xcc)).unwrap();
        assert_eq!(s2, 0);
    }

    #[test]
    fn fill_page_to_capacity() {
        let mut p = Page::init(TS);
        let cap = p.slot_count();
        for i in 0..cap {
            p.insert(&tuple(i as u64, 0, 1)).unwrap();
        }
        assert!(p.is_full());
        assert!(matches!(p.insert(&tuple(0, 0, 0)), Err(DbError::Full(_))));
        // Free one in the middle, insert again lands there.
        p.remove((cap / 2) as u16).unwrap();
        assert_eq!(p.insert(&tuple(9, 0, 2)).unwrap() as usize, cap / 2);
    }

    #[test]
    fn timestamps_update_in_place() {
        let mut p = Page::init(TS);
        let s = p.insert(&tuple(u64::MAX, 0, 7)).unwrap();
        assert_eq!(
            p.timestamp(s, TsField::Insertion).unwrap(),
            Timestamp::UNCOMMITTED
        );
        p.set_timestamp(s, TsField::Insertion, Timestamp(41))
            .unwrap();
        p.set_timestamp(s, TsField::Deletion, Timestamp(99))
            .unwrap();
        assert_eq!(p.timestamp(s, TsField::Insertion).unwrap(), Timestamp(41));
        assert_eq!(p.timestamp(s, TsField::Deletion).unwrap(), Timestamp(99));
        // The payload is untouched.
        assert_eq!(p.read(s).unwrap()[16], 7);
    }

    #[test]
    fn page_round_trips_through_bytes() {
        let mut p = Page::init(TS);
        p.insert(&tuple(5, 0, 3)).unwrap();
        p.set_page_lsn(Lsn(777));
        let bytes: Box<[u8; PAGE_SIZE]> = Box::new(*p.as_bytes());
        let q = Page::from_bytes(bytes, TS).unwrap();
        assert_eq!(q.used(), 1);
        assert_eq!(q.page_lsn(), Lsn(777));
        assert_eq!(q.read(0).unwrap(), p.read(0).unwrap());
    }

    #[test]
    fn from_bytes_rejects_schema_mismatch() {
        let p = Page::init(TS);
        let bytes: Box<[u8; PAGE_SIZE]> = Box::new(*p.as_bytes());
        assert!(Page::from_bytes(bytes, TS + 8).is_err());
    }

    #[test]
    fn insert_at_is_exact_and_rejects_collisions() {
        let mut p = Page::init(TS);
        p.insert_at(5, &tuple(1, 0, 1)).unwrap();
        assert!(p.is_occupied(5));
        assert!(p.insert_at(5, &tuple(1, 0, 1)).is_err());
        // Hint-based insert still fills slot 0 first.
        assert_eq!(p.insert(&tuple(2, 0, 2)).unwrap(), 0);
    }

    #[test]
    fn occupancy_word_and_slot_data_match_scalar_accessors() {
        let mut p = Page::init(TS);
        for s in [0usize, 1, 7, 63, 64, 70, 100] {
            p.insert_at(s as u16, &tuple(s as u64, 0, s as u8)).unwrap();
        }
        let chunks = p.slot_count().div_ceil(64);
        for chunk in 0..chunks {
            let w = p.occupancy_word(chunk);
            for bit in 0..64 {
                let slot = chunk * 64 + bit;
                let expect = slot < p.slot_count() && p.is_occupied(slot);
                assert_eq!(w >> bit & 1 == 1, expect, "chunk {chunk} bit {bit}");
            }
        }
        assert_eq!(p.occupancy_word(chunks), 0);
        assert_eq!(&p.slot_data()[63 * TS..64 * TS], p.read(63).unwrap());
    }

    #[test]
    fn occupied_slots_iterates_in_order() {
        let mut p = Page::init(TS);
        p.insert_at(3, &tuple(1, 0, 1)).unwrap();
        p.insert_at(1, &tuple(2, 0, 2)).unwrap();
        let slots: Vec<u16> = p.occupied_slots().collect();
        assert_eq!(slots, vec![1, 3]);
    }
}
