//! Physical storage for the HARBOR reproduction: slotted pages, segmented
//! heap files with timestamp annotations, a buffer pool with pluggable
//! paging policies, a multi-granularity lock manager, and checkpointing.
//!
//! Architecture (thesis Fig 6-1, storage slice):
//!
//! ```text
//!      operators / engine
//!            │
//!        BufferPool ──── LockManager
//!            │
//!   SegmentedHeapFile (Directory + TableFile)
//!            │
//!        file system
//! ```
//!
//! The crate is recovery-mechanism-agnostic: a site running the ARIES
//! baseline attaches a [`harbor_wal::LogManager`] to the pool (WAL rule on
//! write-back, page LSNs); a HARBOR site attaches nothing and relies on
//! checkpoints plus replica queries.

pub mod buffer;
pub mod checkpoint;
pub mod directory;
pub mod fault;
pub mod file;
pub mod lock;
pub mod page;
pub mod table;

pub use buffer::{BufferPool, BulkAppender, PagePolicy, PoolRecovery};
pub use checkpoint::Checkpointer;
pub use directory::{Directory, ScanBounds, SegmentMeta};
pub use fault::{DiskFaultConfig, DiskFaultKind, DiskFaultPlan, TargetedFault, WriteFault};
pub use file::{CheckpointRecord, TableFile};
pub use lock::{DeadlockPolicy, LockKey, LockManager, LockMode};
pub use page::{slots_per_page, Page};
pub use table::{SegmentedHeapFile, ZoneEntry};
